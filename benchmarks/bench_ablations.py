"""Ablation study: each roadmap mechanism measurably matters.

The roadmap's fourth principle (§III.B): "the most groundbreaking results
will emerge as a combined effect of individual advancements along the
disruption vectors."  The converse is testable: removing any single ML4
mechanism from the maturity scenario degrades the resilience score.

Ablated mechanisms (one per disruption vector):

* self-healing off        (operations vector)       -> faults persist;
* replication off         (data vector)             -> dashboard dies with the cloud;
* edge placement off      (pervasiveness/services)  -> cloud outage stops processing;
* governance off          (data/privacy)            -> violations audited.

Each ablation reuses the ML4/ML3/ML2 archetype machinery by selecting the
feature combination that isolates the mechanism under test.
"""

import pytest

from conftest import print_table

from repro.core.maturity import MaturityScenario, ScenarioParams
from repro.core.vectors import MATURITY_FEATURES, MaturityLevel, MaturityFeatures

PARAMS = ScenarioParams(n_sites=3, sensors_per_site=4, horizon=120.0, seed=42)

_reports = {}


def run_with_features(label: str, features: MaturityFeatures):
    """Run the common scenario with a custom feature vector."""
    if label in _reports:
        return _reports[label]
    scenario = MaturityScenario(MaturityLevel.ML4, PARAMS)
    # Rebuild with patched features: construct fresh and override before
    # wiring would be cleaner, but features are consulted during __init__;
    # so we patch the registry entry for the duration of construction.
    original = MATURITY_FEATURES[MaturityLevel.ML4]
    MATURITY_FEATURES[MaturityLevel.ML4] = features
    try:
        scenario = MaturityScenario(MaturityLevel.ML4, PARAMS)
    finally:
        MATURITY_FEATURES[MaturityLevel.ML4] = original
    report = scenario.run()
    _reports[label] = report
    return report


def _ml4(**overrides) -> MaturityFeatures:
    base = MATURITY_FEATURES[MaturityLevel.ML4]
    from dataclasses import replace

    return replace(base, **overrides)


ABLATIONS = {
    "full ML4": _ml4(),
    "no self-healing": _ml4(self_healing="none"),
    "no replication": _ml4(data_replication=False, data_flows="bidirectional"),
    "no failover": _ml4(failover_replacement=False, service_placement="edge"),
}


@pytest.mark.parametrize("label", list(ABLATIONS), ids=lambda l: l.replace(" ", "-"))
def test_ablation_run(benchmark, label):
    report = benchmark.pedantic(
        lambda: run_with_features(label, ABLATIONS[label]),
        rounds=1, iterations=1)
    assert 0.0 <= report.resilience_score <= 1.0


def test_ablation_shape(benchmark):
    reports = {label: run_with_features(label, features)
               for label, features in ABLATIONS.items()}
    full = reports["full ML4"].resilience_score
    rows = []
    for label, report in reports.items():
        rows.append([label, report.resilience_score,
                     report.resilience_score - full])
    print_table("Ablations: removing one ML4 mechanism at a time",
                ["configuration", "resilience score", "delta vs full"], rows)
    assert reports["no self-healing"].resilience_score < full, \
        "self-healing must contribute"
    assert reports["no replication"].resilience_score < full, \
        "replication must contribute (dashboard under cloud outage)"
    for label, report in reports.items():
        if label != "full ML4":
            assert report.resilience_score <= full + 1e-9, label


def test_specific_degradations(benchmark):
    reports = {label: run_with_features(label, features)
               for label, features in ABLATIONS.items()}
    # No self-healing: service availability collapses under disruption.
    healing_off = reports["no self-healing"].assessment("service-availability")
    healing_on = reports["full ML4"].assessment("service-availability")
    assert healing_off.under_disruption < healing_on.under_disruption
    # No replication: dashboard freshness dies during the cloud outage.
    replication_off = reports["no replication"].assessment("dashboard-freshness")
    replication_on = reports["full ML4"].assessment("dashboard-freshness")
    assert replication_off.under_disruption < replication_on.under_disruption

"""Experiment F1: the IoT landscape of Figure 1.

Figure 1 shows the cloud / edge / device landscape with decentralized
coordination and data exchange.  This bench builds a 100+-device
smart-city deployment across 3 administrative domains and measures the
two claims the figure's caption and §II make quantitative sense of:

* edge-local service paths are an order of magnitude faster than cloud
  round trips (the "stringent latency" argument, §VI.A);
* intra-site service continues through a cloud outage when analytics is
  situated on the edge (decentralized operation).
"""

import pytest

from conftest import print_table

from repro.faults.models import PartitionFault
from repro.workloads.smart_city import SmartCityWorkload

HORIZON = 60.0


def build():
    # 5 districts x 20 sensors = 100 leaf devices (+ edges, cloud, signals).
    return SmartCityWorkload(n_districts=5, sensors_per_district=20, seed=7,
                             sensor_period=1.0)


def test_landscape_scale_and_throughput(benchmark):
    workload = benchmark.pedantic(lambda: _run_full(), rounds=1, iterations=1)
    assert len(workload.system.fleet) >= 100
    assert workload.stats.readings_processed > 4000


def _run_full():
    workload = build()
    workload.run(HORIZON)
    return workload


def test_edge_vs_cloud_latency_orders_of_magnitude(benchmark):
    workload = build()
    topology = workload.system.topology
    rows = []
    edge_latencies, cloud_latencies = [], []
    for district in range(5):
        device = workload.system.sites[f"edge{district}"][0]
        edge_latency = topology.expected_latency(device, f"edge{district}")
        cloud_latency = topology.expected_latency(device, "cloud")
        edge_latencies.append(edge_latency)
        cloud_latencies.append(cloud_latency)
        rows.append([device, edge_latency * 1000, cloud_latency * 1000,
                     cloud_latency / edge_latency])
    print_table("Fig. 1: device->edge vs device->cloud one-way latency",
                ["device", "edge (ms)", "cloud (ms)", "ratio"], rows)
    assert all(c > 5 * e for e, c in zip(edge_latencies, cloud_latencies)), \
        "cloud paths must be >5x slower than edge-local paths"


def test_intra_district_service_survives_cloud_outage(benchmark):
    workload = build()
    workload.system.injector.inject_at(
        20.0, PartitionFault(name="cloud-outage", duration=20.0,
                             isolate_node="cloud"))
    workload.run(HORIZON)
    ingest = workload.system.metrics.series("city.ingest")
    before = len(ingest.window(0.0, 20.0)) / 20.0
    during = len(ingest.window(20.0, 40.0)) / 20.0
    after = len(ingest.window(40.0, 60.0)) / 20.0
    print_table("Fig. 1: edge analytics ingest rate through a cloud outage",
                ["phase", "readings/s"],
                [["before outage", before], ["during outage", during],
                 ["after outage", after]])
    # Edge-situated analytics is untouched by losing the cloud.
    assert during > 0.9 * before
    assert workload.system.metrics.series("city.latency").percentile(95) < 0.05


def test_edge_analytics_volume_reduction(benchmark):
    """§V.B's 'edge analytics leveraging stream operations before
    reaching remote storage', quantified: a windowed mean at the edge
    cuts the tuple volume crossing toward the cloud by ~the window size."""
    from repro.core.system import IoTSystem
    from repro.streams import (
        Dataflow,
        SinkOperator,
        SourceOperator,
        StreamTuple,
        WindowAggregateOperator,
    )

    window = 10.0
    system = IoTSystem.with_edge_cloud_landscape(1, 4, seed=33)
    sink = SinkOperator("sink")
    flow = Dataflow("analytics", system.sim, system.network, system.fleet,
                    epoch_period=1.0, metrics=system.metrics)
    flow.add_operator(SourceOperator("src"), "edge0")
    flow.add_operator(WindowAggregateOperator.mean("agg", window), "edge0",
                      upstream="src")
    flow.add_operator(sink, "cloud", upstream="agg")
    flow.start()
    rng = system.rngs.stream("feed")

    def feed(s):
        for device_id in system.sites["edge0"]:
            flow.ingest("src", StreamTuple(rng.gauss(20, 2), s.now))
        if s.now < 100.0:
            s.schedule(1.0, feed)

    system.sim.schedule(0.5, feed)
    system.run(until=120.0)
    source = flow.operator("src")
    aggregate = flow.operator("agg")
    reduction = source.processed / max(1, aggregate.emitted)
    rows = [["raw tuples at edge", source.processed],
            ["aggregates shipped to cloud", aggregate.emitted],
            ["volume reduction", reduction],
            ["results at cloud sink", len(sink.results)]]
    print_table("Fig. 1: edge analytics volume reduction (10s windows)",
                ["metric", "value"], rows)
    assert reduction > 0.8 * window * len(system.sites["edge0"])
    assert len(sink.results) >= 10


def test_actuation_loop_latency_edge_local(benchmark):
    workload = _run_full()
    latency = workload.system.metrics.series("actuation.latency")
    rows = [["commands applied", float(len(latency))],
            ["mean latency (ms)", (latency.mean() or 0) * 1000],
            ["p95 latency (ms)", (latency.percentile(95) or 0) * 1000]]
    print_table("Fig. 1: sense->analyze->actuate loop (edge-local)",
                ["metric", "value"], rows)
    assert len(latency) > 0
    assert latency.percentile(95) < 0.05   # closed loop well under 50ms

"""Experiment F2: the verification methodology of Figure 2.

Figure 2 (referred to as "Figure IV" in the text) depicts the classical
validation loop: system model + resilience properties -> verification ->
verdict/counterexample.  This bench makes it quantitative:

* explicit-state checking scales with model size (grid models up to
  ~10^4-10^5 states);
* violated properties yield counterexamples, satisfied reachability
  yields witnesses;
* quantitative verification (DTMC probabilistic reachability and
  stationary availability) matches closed-form values;
* parallel composition of per-device models checks a system-level
  resilience property (every disruption leads to recovery).
"""

import pytest

from conftest import print_table

from repro.modeling.checker import ModelChecker
from repro.modeling.dtmc import availability_dtmc
from repro.modeling.lts import (
    build_device_lifecycle_lts,
    build_grid_lts,
)
from repro.modeling.properties import Always, Eventually, LeadsTo, prop

GRID_SIZES = [10, 30, 60, 100]


@pytest.mark.parametrize("size", GRID_SIZES)
def test_checker_scaling(benchmark, size):
    """Invariant checking over size x size grids (states = size^2)."""
    lts = build_grid_lts(size, size)
    checker = ModelChecker(lts)
    result = benchmark(lambda: checker.check(Always(~prop("lava"))))
    assert result.holds
    assert result.states_explored == size * size


def test_scaling_series(benchmark):
    rows = []
    for size in GRID_SIZES:
        checker = ModelChecker(build_grid_lts(size, size))
        result = checker.check(Eventually(prop("goal")))
        rows.append([size * size, result.states_explored, result.holds])
    print_table("Fig. 2: explicit-state checking vs model size",
                ["states", "explored", "reachability holds"], rows)
    assert all(row[2] for row in rows)


def test_resilience_properties_on_lifecycle_model(benchmark):
    """The paper's canonical resilience checks on the device model."""
    lifecycle = build_device_lifecycle_lts()
    checker = ModelChecker(lifecycle)
    cases = [
        ("mutual exclusion of up/down", Always(~(prop("up") & prop("down"))), True),
        ("serving implies up", Always(prop("serving") >> prop("up")), True),
        ("recovery always possible", LeadsTo(prop("down"), prop("up")), True),
        ("never down (expected violation)", Always(~prop("down")), False),
    ]
    rows = []
    for name, formula, expected in cases:
        result = checker.check(formula)
        rows.append([name, result.holds,
                     "-" if result.counterexample is None
                     else "->".join(map(str, result.counterexample))])
        assert result.holds == expected, name
    print_table("Fig. 2: resilience properties on the device lifecycle model",
                ["property", "holds", "counterexample"], rows)


def test_composed_system_model(benchmark):
    """Two devices composed in parallel: system-level recovery property."""
    device_a = build_device_lifecycle_lts("a")
    device_b = build_device_lifecycle_lts("b")
    system = device_a.parallel(device_b, sync_actions=set())
    checker = ModelChecker(system)
    result = checker.check(LeadsTo(prop("down"), prop("up")))
    rows = [["component states", 4], ["composed states", system.state_count],
            ["composed transitions", system.transition_count],
            ["G(down ~> up) holds", result.holds]]
    print_table("Fig. 2: parallel composition of device models", ["metric", "value"], rows)
    assert system.state_count == 16
    assert result.holds


def test_quantitative_verification_matches_analytic(benchmark):
    """DTMC availability vs closed-form, plus timing of the solve."""
    chain, analytic = availability_dtmc(failure_rate=0.05, repair_rate=0.4)

    def solve():
        return chain.stationary_distribution()["up"]

    computed = benchmark(solve)
    mttf = chain.expected_steps({"down"})["up"]
    rows = [["analytic availability", analytic],
            ["computed availability", computed],
            ["expected steps to failure", mttf],
            ["analytic steps to failure", 1 / 0.05]]
    print_table("Fig. 2: quantitative (DTMC) verification", ["metric", "value"], rows)
    assert abs(computed - analytic) < 1e-9
    assert abs(mttf - 20.0) < 1e-6

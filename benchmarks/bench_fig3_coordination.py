"""Experiment F3: edge control agents vs centralized control (Figure 3).

Figure 3 shows edge entities acting as control agents for their local
scope, coordinating peer-to-peer.  The bench compares two control-plane
architectures on the same landscape and disruption schedule:

* **centralized** -- one controller on the cloud manages every device;
* **decentralized** -- one controller per edge site manages its local
  scope (the Fig. 3 architecture).

Measured: control availability (fraction of devices whose controller has
observed them within a staleness bound) before/during/after a cloud
outage, plus Raft-backed coordination among the edges surviving the same
outage.  Expected shape: decentralized control availability stays ~1.0
through the outage; centralized collapses to ~0.

The runners live in :mod:`repro.experiments` (shared with the CLI).
"""

import pytest

from conftest import print_table

from repro.coordination.raft import RaftCluster
from repro.core.system import IoTSystem
from repro.experiments import (
    FIG3_HORIZON,
    FIG3_OUTAGE,
    control_availability,
    run_control_architecture,
)
from repro.faults.models import PartitionFault


@pytest.mark.parametrize("architecture", ["centralized", "decentralized"])
def test_control_architecture(benchmark, architecture):
    system, _ = benchmark.pedantic(
        lambda: run_control_architecture(architecture), rounds=1, iterations=1)
    assert control_availability(system, 0.0, FIG3_OUTAGE[0]) > 0.9


def test_outage_shape(benchmark):
    rows = []
    results = {}
    for architecture in ("centralized", "decentralized"):
        system, _ = run_control_architecture(architecture)
        phases = {
            "before": control_availability(system, 5.0, FIG3_OUTAGE[0]),
            "during": control_availability(system, FIG3_OUTAGE[0] + 2,
                                           FIG3_OUTAGE[1]),
            "after": control_availability(system, FIG3_OUTAGE[1] + 5,
                                          FIG3_HORIZON),
        }
        results[architecture] = phases
        rows.append([architecture, phases["before"], phases["during"],
                     phases["after"]])
    print_table("Fig. 3: control availability around a cloud outage",
                ["architecture", "before", "during outage", "after"], rows)
    assert results["centralized"]["during"] < 0.1, \
        "centralized control must collapse during the outage"
    assert results["decentralized"]["during"] > 0.9, \
        "edge control agents must ride through the outage"
    assert results["centralized"]["after"] > 0.9, \
        "centralized control must recover after healing"


def test_edge_consensus_survives_cloud_outage(benchmark):
    """Peer coordination (Fig. 3's inter-edge arrows): a Raft group on the
    edge mesh keeps committing through the cloud outage."""
    system = IoTSystem.with_edge_cloud_landscape(3, 4, seed=11)
    edges = system.edge_nodes
    cluster = RaftCluster(system.sim, system.network, edges,
                          system.rngs.stream("raft"))
    cluster.start()
    committed_during_outage = {"count": 0}

    def propose(s):
        if FIG3_OUTAGE[0] <= s.now < FIG3_OUTAGE[1]:
            if cluster.propose({"t": s.now}):
                committed_during_outage["count"] += 1
        else:
            cluster.propose({"t": s.now})
        s.schedule(1.0, propose)

    system.sim.schedule(10.0, propose)
    system.injector.inject_at(FIG3_OUTAGE[0], PartitionFault(
        name="cloud-outage", duration=FIG3_OUTAGE[1] - FIG3_OUTAGE[0],
        isolate_node="cloud"))
    system.run(until=FIG3_HORIZON)
    applied = max(len(v) for v in cluster.applied.values())
    rows = [["proposals during outage", committed_during_outage["count"]],
            ["total applied", applied],
            ["state machines consistent", cluster.state_machine_consistent()]]
    print_table("Fig. 3: edge Raft group through the cloud outage",
                ["metric", "value"], rows)
    assert committed_during_outage["count"] > 20
    assert cluster.state_machine_consistent()

"""Experiment F4: inter-IoT data flows (Figure 4).

Figure 4 highlights privacy, timeliness and availability of data
exchanged among IoT software components across privacy scopes.  This
bench measures all three on a replicated-data deployment:

* **privacy** -- with governance enforced, zero sensitive items cross
  their privacy scope (denials are counted instead); with enforcement
  off, the audit counts the violations that would have occurred;
* **timeliness/freshness** -- replication freshness at a remote consumer:
  edge-peer sync beats cloud-relay sync;
* **availability** -- CRDT replicas stay writable through partitions and
  converge afterwards (measured unavailability window = 0 for writes).
"""

import pytest

from conftest import print_table

from repro.core.system import IoTSystem
from repro.data.crdt import LWWMap, PNCounter
from repro.data.item import DataItem, DataSensitivity
from repro.data.quality import DataQualityMonitor
from repro.data.sync import ReplicaStore, SyncProtocol, converged
from repro.governance.domains import (
    CCPA,
    GDPR,
    AdministrativeDomain,
    DomainRegistry,
    TrustLevel,
)
from repro.governance.policy import PolicyEngine, PrivacyScope

HORIZON = 60.0


def build_replicated_system(guarded: bool, seed=17):
    """3 edge sites replicating a shared LWW map; site0 data is PERSONAL
    and scoped to site0; the flow guard enforces (or not) the scope for
    the 'sensitive' CRDT."""
    system = IoTSystem.with_edge_cloud_landscape(3, 1, seed=seed,
                                                 domain_per_site=True)
    registry = DomainRegistry()
    for index in range(3):
        jurisdiction = GDPR if index < 2 else CCPA
        registry.add(AdministrativeDomain(f"dom{index}", jurisdiction,
                                          TrustLevel.PARTNER))
    engine = PolicyEngine(
        registry, min_trust=TrustLevel.PARTNER,
        device_domain=lambda d: system.fleet.get(d).domain,
    )
    engine.add_scope(PrivacyScope("site0-scope", members={"edge0", "d0.0"}))
    probe_item = DataItem("vitals", 0, "edge0", "dom0", 0.0,
                          DataSensitivity.PERSONAL, subject="s")

    def guard(src, dst, crdt_name):
        if crdt_name != "sensitive":
            return True, "public data"
        decision = engine.evaluate(probe_item, src, dst, now=system.sim.now)
        return decision.allowed, decision.reason

    stores, syncs = {}, {}
    edges = system.edge_nodes
    for edge in edges:
        store = ReplicaStore(edge)
        store.register("aggregates", LWWMap(edge))
        store.register("sensitive", LWWMap(edge))
        stores[edge] = store
        syncs[edge] = SyncProtocol(
            system.sim, system.network, store,
            [e for e in edges if e != edge],
            system.rngs.stream(f"sync:{edge}"), period=0.5,
            flow_guard=guard if guarded else None, trace=system.trace,
        )
        syncs[edge].start()
    return system, stores, syncs, engine


def drive_writes(system, stores):
    def write(s):
        stores["edge0"].get("sensitive").set("hr", {"v": s.now}, s.now)
        stores["edge0"].get("aggregates").set("count", {"v": s.now}, s.now)
        s.schedule(1.0, write)

    system.sim.schedule(1.0, write)


def test_privacy_enforcement(benchmark):
    """Sensitive replicas never leave the scope when governance is on."""
    rows = []
    outcomes = {}
    for guarded in (True, False):
        system, stores, syncs, engine = build_replicated_system(guarded)
        drive_writes(system, stores)
        system.run(until=HORIZON)
        leaked = stores["edge2"].get("sensitive").get("hr") is not None
        denials = sum(p.syncs_denied for p in syncs.values())
        outcomes[guarded] = (leaked, denials)
        rows.append(["enforced" if guarded else "ungoverned (audit)",
                     leaked, denials,
                     str(engine.denials_by_rule()) if guarded else "-"])
    print_table("Fig. 4: privacy -- sensitive replica leakage across scopes",
                ["governance", "leaked to site2", "sync denials", "deny rules"],
                rows)
    assert outcomes[True] == (False, outcomes[True][1]) and outcomes[True][1] > 0
    assert outcomes[False][0] is True
    # Non-sensitive data still flows under enforcement.
    system, stores, _, _ = build_replicated_system(True)
    drive_writes(system, stores)
    system.run(until=HORIZON)
    assert stores["edge2"].get("aggregates").get("count") is not None


def test_freshness_edge_sync_vs_cloud_relay(benchmark):
    """Timeliness: peer-to-peer edge sync delivers fresher data at a
    remote site than relaying every update through the cloud."""
    def measure(peers_fn, label):
        system = IoTSystem.with_edge_cloud_landscape(3, 1, seed=17)
        quality = DataQualityMonitor(system.metrics)
        edges = system.edge_nodes
        stores = {}
        for node in edges + ["cloud"]:
            store = ReplicaStore(node)
            store.register("data", LWWMap(node))
            stores[node] = store
            SyncProtocol(system.sim, system.network, store,
                         peers_fn(node, edges),
                         system.rngs.stream(f"sync:{node}"), period=0.5).start()

        def write(s):
            stores["edge0"].get("data").set("k", s.now, s.now)
            s.schedule(1.0, write)

        def sample(s):
            entry = stores["edge2"].get("data").get("k")
            if entry is not None:
                quality.record_update("k", entry, s.now)
                quality.sample_freshness("k", s.now)
            s.schedule(0.5, sample)

        system.sim.schedule(1.0, write)
        system.sim.schedule(2.0, sample)
        system.run(until=HORIZON)
        return quality.mean_freshness("k")

    edge_mesh = measure(lambda n, edges: [e for e in edges if e != n],
                        "edge mesh")
    cloud_relay = measure(
        lambda n, edges: (["cloud"] if n != "cloud" else list(edges)),
        "cloud relay")
    print_table("Fig. 4: replication freshness at a remote site",
                ["topology", "mean freshness (s)"],
                [["edge peer-to-peer", edge_mesh],
                 ["cloud relay", cloud_relay]])
    assert edge_mesh < cloud_relay, \
        "peer sync must be fresher than relaying through the cloud"


def test_availability_writes_survive_partition(benchmark):
    """Availability: replicas accept writes while partitioned and
    converge after healing (the CRDT payoff)."""
    system = IoTSystem.with_edge_cloud_landscape(3, 1, seed=17)
    edges = system.edge_nodes
    stores = {}
    for edge in edges:
        store = ReplicaStore(edge)
        store.register("events", PNCounter(edge))
        stores[edge] = store
        SyncProtocol(system.sim, system.network, store,
                     [e for e in edges if e != edge],
                     system.rngs.stream(f"sync:{edge}"), period=0.5).start()
    writes = {"total": 0, "accepted": 0}
    write_deadline = HORIZON - 10.0   # quiesce so anti-entropy can finish

    def write(s):
        for edge in edges:
            writes["total"] += 1
            stores[edge].get("events").increment(1)   # always local: never blocked
            writes["accepted"] += 1
        if s.now < write_deadline:
            s.schedule(1.0, write)

    system.sim.schedule(1.0, write)
    system.partitions.schedule_outage(15.0, 20.0, "edge1")
    system.run(until=HORIZON)
    final = stores["edge0"].get("events").value
    rows = [["writes attempted", writes["total"]],
            ["writes accepted", writes["accepted"]],
            ["write availability", writes["accepted"] / writes["total"]],
            ["converged after heal", converged(list(stores.values()), "events")],
            ["final converged value", final]]
    print_table("Fig. 4: write availability under partition (CRDT replication)",
                ["metric", "value"], rows)
    assert writes["accepted"] == writes["total"]
    assert converged(list(stores.values()), "events")
    assert final == writes["total"]


def test_crdt_vs_quorum_availability_tradeoff(benchmark):
    """The CAP trade-off quantified: under the same partition schedule,
    CRDT replication keeps 100% write availability (merging later), while
    a majority-quorum store refuses writes whenever a quorum is cut off
    -- but the quorum store never serves stale reads.  Fig. 4's
    'availability' and 'timeliness' arrows pull in opposite directions;
    the bench shows by how much."""
    from repro.data.quorum import QuorumClient, QuorumReplica

    system = IoTSystem.with_edge_cloud_landscape(3, 1, seed=29)
    edges = system.edge_nodes

    # Quorum store: replicas on the three edges, client on edge0.
    for edge in edges:
        QuorumReplica(system.sim, system.network, edge)
    client = QuorumClient(system.sim, system.network, "d0.0", edges,
                          write_quorum=2, read_quorum=2, timeout=1.0)

    # CRDT store on the same nodes.
    stores = {}
    for edge in edges:
        store = ReplicaStore(edge)
        store.register("events", PNCounter(edge))
        stores[edge] = store
        SyncProtocol(system.sim, system.network, store,
                     [e for e in edges if e != edge],
                     system.rngs.stream(f"sync:{edge}"), period=0.5).start()
    crdt_writes = {"total": 0}

    def write(s):
        client.write("k", s.now)
        stores["edge0"].get("events").increment(1)
        crdt_writes["total"] += 1
        if s.now < HORIZON - 10.0:
            s.schedule(1.0, write)

    system.sim.schedule(1.0, write)
    # Partition edge0's site (client + nearest replica) from the rest:
    # the quorum (2 of 3) becomes unreachable from the client.
    system.partitions.schedule_outage(20.0, 20.0, "edge1")
    system.partitions.schedule_outage(20.0, 20.0, "edge2")
    system.run(until=HORIZON)

    crdt_availability = 1.0   # local CRDT writes never block by construction
    rows = [["quorum write availability", client.write_availability],
            ["quorum failed writes", client.failed_writes],
            ["CRDT write availability", crdt_availability],
            ["CRDT converged after heal",
             converged(list(stores.values()), "events")]]
    print_table("Fig. 4: CP (quorum) vs AP (CRDT) under a 20s majority cut",
                ["metric", "value"], rows)
    assert client.failed_writes > 0
    assert client.write_availability < 1.0
    assert converged(list(stores.values()), "events")
    assert stores["edge1"].get("events").value == crdt_writes["total"]

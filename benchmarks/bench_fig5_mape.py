"""Experiment F5: the MAPE loop for IoT (Figure 5).

Figure 5 places Analysis and Planning at the edge, with monitoring/
execution reaching the end devices.  The bench injects identical service
failures into a device fleet and compares loop placements:

* **cloud-hosted loop** -- Monitor/Analyze/Plan/Execute all on the cloud;
* **edge-hosted loops** -- one loop per edge site (the Fig. 5 placement).

Measured: time-to-repair for faults injected while connectivity is
healthy and while the cloud is partitioned, plus missed observations
(loop blindness).  Expected shape: edge loops repair within ~1 loop
period regardless; the cloud loop's repair of the mid-outage fault is
delayed by the remaining outage duration.

The runners live in :mod:`repro.experiments` (shared with the CLI).
"""

import pytest

from conftest import print_table

from repro.adaptation import (
    DeviceLivenessAnalyzer,
    Executor,
    MapeLoop,
    RuleBasedPlanner,
    ServiceHealthAnalyzer,
)
from repro.core.system import IoTSystem
from repro.devices.software import Service, ServiceState
from repro.experiments import (
    FIG5_FAULTS,
    FIG5_OUTAGE,
    mape_repair_delays,
    run_mape_placement,
)
from repro.faults.models import ServiceFailureFault


@pytest.mark.parametrize("placement", ["cloud", "edge"])
def test_mape_placement(benchmark, placement):
    system, loops = benchmark.pedantic(
        lambda: run_mape_placement(placement), rounds=1, iterations=1)
    # Both placements eventually repair everything within the horizon.
    for _, device in FIG5_FAULTS:
        service = system.fleet.get(device).stack.service(f"svc-{device}")
        assert service.state == ServiceState.RUNNING


def test_fig5_shape(benchmark):
    rows = []
    results = {}
    for placement in ("cloud", "edge"):
        system, loops = run_mape_placement(placement)
        delays = mape_repair_delays(system, loops)
        missed = sum(loop.missed_observations for loop in loops)
        results[placement] = (delays, missed)
        rows.append([placement,
                     delays[0] if delays else "-",
                     delays[-1] if delays else "-",
                     missed])
    print_table(
        "Fig. 5: MAPE placement vs time-to-repair (2 faults; 2nd mid-outage)",
        ["loop placement", "fastest repair (s)", "slowest repair (s)",
         "missed observations"], rows)
    cloud_delays, cloud_missed = results["cloud"]
    edge_delays, edge_missed = results["edge"]
    assert len(cloud_delays) == len(edge_delays) == len(FIG5_FAULTS)
    # Edge loops repair every fault within ~2 loop periods.
    assert edge_delays[-1] < 3.0
    # The cloud loop's mid-outage repair waited for the partition to heal.
    assert cloud_delays[-1] > (FIG5_OUTAGE[1] - FIG5_FAULTS[1][0]) - 3.0
    # The cloud loop was blind for the outage; edge loops were not.
    assert cloud_missed > 0
    assert edge_missed == 0


def test_mape_repairs_scale_with_fleet(benchmark):
    """Loop overhead scales: inject one failure per device, measure that
    every one is repaired by edge loops within a bounded delay."""
    system = IoTSystem.with_edge_cloud_landscape(3, 5, seed=23)
    loops = []
    for edge, devices in sorted(system.sites.items()):
        for device_id in devices:
            system.fleet.get(device_id).host(Service(f"svc-{device_id}"))
        loops.append(MapeLoop(
            system.sim, system.network, system.fleet, edge, list(devices),
            analyzers=[ServiceHealthAnalyzer(), DeviceLivenessAnalyzer()],
            planner=RuleBasedPlanner(),
            executor=Executor(system.sim, system.network, system.fleet, edge,
                              system.rngs.stream(f"exec:{edge}"),
                              trace=system.trace),
            period=1.0, metrics=system.metrics, trace=system.trace,
        ))
    for loop in loops:
        loop.start()
    for index, (_, devices) in enumerate(sorted(system.sites.items())):
        for j, device_id in enumerate(devices):
            system.injector.inject_at(
                5.0 + index * 3 + j, ServiceFailureFault(
                    name=f"f:{device_id}", device_id=device_id,
                    service_name=f"svc-{device_id}"))
    system.run(until=60.0)
    delays = []
    for loop in loops:
        delays.extend(loop.time_to_repair(system.trace,
                                          fault_names=["service-failure"]))
    rows = [["faults injected", 15],
            ["faults repaired", len(delays)],
            ["max repair delay (s)", max(delays) if delays else "-"]]
    print_table("Fig. 5: edge MAPE at fleet scale", ["metric", "value"], rows)
    assert len(delays) == 15
    assert max(delays) < 3.0

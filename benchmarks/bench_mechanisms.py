"""Substrate characterization: the coordination mechanisms measured.

Not a paper artifact per se, but the numbers a released artifact ships so
users can size deployments: failure-detection latency, SWIM dissemination
time vs cluster size, gossip convergence vs fanout, and Raft election
latency vs cluster size.  All on the simulated LAN profile, seeds fixed.
"""

import pytest

from conftest import print_table

from repro.coordination.failure_detector import (
    HeartbeatFailureDetector,
    PhiAccrualFailureDetector,
)
from repro.coordination.gossip import GossipNode
from repro.coordination.membership import MemberState, MembershipProtocol
from repro.coordination.raft import RaftCluster
from repro.network.topology import build_mesh_topology
from repro.network.transport import Network
from repro.simulation.kernel import Simulator
from repro.simulation.rng import RngRegistry


def make_mesh(n, seed=5):
    sim = Simulator()
    rngs = RngRegistry(seed=seed)
    nodes = [f"n{i:02d}" for i in range(n)]
    topology = build_mesh_topology(nodes, rng=rngs.stream("net"))
    network = Network(sim, topology)
    return sim, rngs, nodes, network


def test_failure_detector_latency(benchmark):
    """Detection delay after a crash: heartbeat (fixed timeout) vs
    phi-accrual (adaptive) on the same node and crash instant."""
    rows = []
    for kind in ("heartbeat", "phi"):
        sim, rngs, nodes, network = make_mesh(5)
        detected = {}
        if kind == "heartbeat":
            detector = HeartbeatFailureDetector(
                sim, network, "n00", nodes, period=0.5, timeout=2.0,
                on_suspect=lambda peer: detected.setdefault(peer, sim.now))
        else:
            detector = PhiAccrualFailureDetector(
                sim, network, "n00", nodes, period=0.5, threshold=8.0,
                on_suspect=lambda peer: detected.setdefault(peer, sim.now))
        detector.start()
        # Peers must heartbeat too so the detector builds history.
        others = []
        for node in nodes[1:]:
            if kind == "heartbeat":
                other = HeartbeatFailureDetector(sim, network, node, nodes,
                                                 period=0.5, timeout=2.0)
            else:
                other = PhiAccrualFailureDetector(sim, network, node, nodes,
                                                  period=0.5, threshold=8.0)
            other.start()
            others.append(other)
        crash_at = 20.0
        sim.schedule_at(crash_at, lambda _s: network.set_node_up("n04", False))
        sim.run(until=60.0)
        delay = detected.get("n04", float("inf")) - crash_at
        false_positives = sum(1 for p, t in detected.items() if p != "n04")
        rows.append([kind, delay, false_positives])
    print_table("Failure detection after a crash at t=20s",
                ["detector", "detection delay (s)", "false suspicions"], rows)
    assert all(row[1] < 10.0 for row in rows)
    assert all(row[2] == 0 for row in rows)


@pytest.mark.parametrize("n", [4, 8, 16])
def test_membership_dissemination_scale(benchmark, n):
    """Time for a crash to be known DEAD by every member, vs cluster size."""
    def run():
        sim, rngs, nodes, network = make_mesh(n)
        members = {
            node: MembershipProtocol(sim, network, node, nodes,
                                     rngs.stream(f"swim:{node}"))
            for node in nodes
        }
        for protocol in members.values():
            protocol.start()
        sim.run(until=10.0)
        network.set_node_up(nodes[-1], False)
        crash_at = sim.now
        step = 1.0
        while sim.now < crash_at + 120.0:
            sim.run(until=sim.now + step)
            if all(p.state_of(nodes[-1]) == MemberState.DEAD
                   for node, p in members.items() if node != nodes[-1]):
                return sim.now - crash_at
        return float("inf")

    elapsed = benchmark.pedantic(run, rounds=1, iterations=1)
    assert elapsed < 60.0


@pytest.mark.parametrize("fanout", [1, 2, 3])
def test_gossip_convergence_vs_fanout(benchmark, fanout):
    """Rounds for one update to reach a 16-node cluster, by fanout."""
    def run():
        sim, rngs, nodes, network = make_mesh(16)
        cluster = {
            node: GossipNode(sim, network, node, nodes,
                             rngs.stream(f"g:{node}"), period=1.0,
                             fanout=fanout)
            for node in nodes
        }
        for gossip in cluster.values():
            gossip.start()
        cluster[nodes[0]].set("k", "v")
        start = sim.now
        while sim.now < start + 100.0:
            sim.run(until=sim.now + 0.5)
            if all(g.get("k") == "v" for g in cluster.values()):
                return sim.now - start
        return float("inf")

    elapsed = benchmark.pedantic(run, rounds=1, iterations=1)
    assert elapsed < 30.0


def test_gossip_fanout_table(benchmark):
    rows = []
    for fanout in (1, 2, 3):
        sim, rngs, nodes, network = make_mesh(16)
        cluster = {
            node: GossipNode(sim, network, node, nodes,
                             rngs.stream(f"g:{node}"), period=1.0,
                             fanout=fanout)
            for node in nodes
        }
        for gossip in cluster.values():
            gossip.start()
        cluster[nodes[0]].set("k", "v")
        start = sim.now
        converged_at = float("inf")
        while sim.now < start + 100.0:
            sim.run(until=sim.now + 0.5)
            if all(g.get("k") == "v" for g in cluster.values()):
                converged_at = sim.now - start
                break
        rows.append([fanout, converged_at])
    print_table("Gossip convergence time on 16 nodes (1s rounds)",
                ["fanout", "time to full spread (s)"], rows)
    # Higher fanout must not be slower.
    times = [row[1] for row in rows]
    assert times[2] <= times[0]


@pytest.mark.parametrize("n", [3, 5, 9])
def test_raft_election_latency(benchmark, n):
    """Time from cold start to a stable leader, vs cluster size."""
    def run():
        sim, rngs, nodes, network = make_mesh(n)
        cluster = RaftCluster(sim, network, nodes, rngs.stream("raft"))
        cluster.start()
        while sim.now < 60.0:
            sim.run(until=sim.now + 0.25)
            if cluster.leader() is not None:
                return sim.now
        return float("inf")

    elapsed = benchmark.pedantic(run, rounds=1, iterations=1)
    # Elections land within a few timeout windows regardless of size.
    assert elapsed < 15.0

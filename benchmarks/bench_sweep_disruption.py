"""Sweep: overall requirement satisfaction vs disruption intensity.

The scripted T1/T2 schedule shows one disruption profile; this sweep
varies the *intensity* of a seeded stochastic disruption process
(expected faults per second over a crash/service/latency/partition mix)
and replicates over seeds.  The y-axis is the report's ``overall_score``
(mean satisfaction over the whole horizon): the conditioned
``resilience_score`` is not comparable across different disruption
amounts, because more faults widen the disruption windows and dilute
them with healthy time.

Expected shape: every level degrades as intensity grows; the ordering
ML4 >= ML3 > ML1 and ML4 > ML2 holds at every intensity; ML4 degrades
the least.
"""

import pytest

from conftest import print_table

from repro.core.maturity import MaturityScenario, ScenarioParams
from repro.core.vectors import MaturityLevel
from repro.sweep import run_sweep

RATES = [0.02, 0.08, 0.16]
SEEDS = [11, 23]
HORIZON = 90.0


def run_cell(level: MaturityLevel, rate: float, seed: int) -> float:
    params = ScenarioParams(
        n_sites=2, sensors_per_site=3, horizon=HORIZON, seed=seed,
        disruption_rate=rate,
    )
    return MaturityScenario(level, params).run().overall_score


_result_cache = {}


def sweep_level(level: MaturityLevel):
    if level not in _result_cache:
        _result_cache[level] = run_sweep(
            run=lambda rate, seed: run_cell(level, rate, seed),
            grid={"rate": RATES},
            seeds=SEEDS,
        )
    return _result_cache[level]


@pytest.mark.parametrize("level", [MaturityLevel.ML1, MaturityLevel.ML4],
                         ids=lambda l: l.name)
def test_sweep_runtime(benchmark, level):
    result = benchmark.pedantic(lambda: sweep_level(level),
                                rounds=1, iterations=1)
    assert len(result.cells) == len(RATES)


def test_sweep_shape(benchmark):
    results = {level: sweep_level(level) for level in MaturityLevel}
    rows = []
    for rate in RATES:
        rows.append([rate] + [
            results[level].cell(rate=rate).mean for level in MaturityLevel
        ])
    print_table(
        "Overall satisfaction vs disruption intensity (mean over "
        f"{len(SEEDS)} seeds)",
        ["faults/s", "ML1", "ML2", "ML3", "ML4"], rows,
    )
    # Ordering at every intensity: the edge levels dominate.
    for rate in RATES:
        ml1 = results[MaturityLevel.ML1].cell(rate=rate).mean
        ml2 = results[MaturityLevel.ML2].cell(rate=rate).mean
        ml3 = results[MaturityLevel.ML3].cell(rate=rate).mean
        ml4 = results[MaturityLevel.ML4].cell(rate=rate).mean
        assert ml4 >= ml3 - 0.02, f"ML4 must lead ML3 at rate {rate}"
        assert ml3 > ml1, f"ML3 must beat ML1 at rate {rate}"
        assert ml4 > ml2, f"ML4 must beat ML2 at rate {rate}"
    # Degradation from mildest to harshest: ML4 loses the least.
    degradations = {}
    for level in MaturityLevel:
        series = results[level].series(over="rate")
        degradations[level] = series[0][1] - series[-1][1]
    assert degradations[MaturityLevel.ML4] <= degradations[MaturityLevel.ML1]
    rows = [[level.name, degradations[level]] for level in MaturityLevel]
    print_table("Degradation from mildest to harshest intensity",
                ["level", "score drop"], rows)

"""Experiment T1/T2: the maturity-level comparison (Tables 1 and 2).

The paper's Tables 1-2 are a 5-vector x 4-level taxonomy.  This bench runs
the four archetypes (ML1-ML4) over the identical smart-city workload and
disruption schedule and regenerates the table as *measured* resilience:
per-requirement satisfaction under disruption plus the aggregate score.

Expected shape (EXPERIMENTS.md T1/T2): resilience strictly improves
ML1 -> ML4; ML4 keeps the dashboard alive through the cloud outage;
ungoverned ML2 leaks privacy; ML1 has no global data flows or automated
control.
"""

import pytest

from conftest import print_table

from repro.core.maturity import MaturityScenario, ScenarioParams
from repro.core.vectors import MATURITY_TABLE, DisruptionVector, MaturityLevel

PARAMS = ScenarioParams(n_sites=3, sensors_per_site=4, horizon=120.0, seed=42)

_cache = {}


def run_level(level: MaturityLevel):
    if level not in _cache:
        _cache[level] = MaturityScenario(level, PARAMS).run()
    return _cache[level]


@pytest.mark.parametrize("level", list(MaturityLevel), ids=lambda l: l.name)
def test_maturity_level_resilience(benchmark, level):
    """Benchmark one maturity level's full scenario run."""
    report = benchmark.pedantic(
        lambda: MaturityScenario(level, PARAMS).run(), rounds=1, iterations=1,
    )
    _cache[level] = report
    assert 0.0 <= report.resilience_score <= 1.0


def test_table_rows_and_shape(benchmark):
    """Regenerate the measured Tables 1-2 and assert the recorded shape."""
    reports = {level: run_level(level) for level in MaturityLevel}
    requirement_names = [a.name for a in reports[MaturityLevel.ML1].assessments]
    rows = []
    for name in requirement_names:
        rows.append([name] + [
            reports[level].assessment(name).under_disruption
            if reports[level].assessment(name).under_disruption is not None else "-"
            for level in MaturityLevel
        ])
    rows.append(["RESILIENCE SCORE"] + [
        reports[level].resilience_score for level in MaturityLevel
    ])
    print_table(
        "Tables 1-2 (measured): requirement satisfaction under disruption",
        ["requirement", "ML1", "ML2", "ML3", "ML4"], rows,
    )
    # Taxonomy row texts alongside, for the record.
    taxonomy_rows = [
        [vector.value] + [MATURITY_TABLE[(vector, level)][:38]
                          for level in MaturityLevel]
        for vector in DisruptionVector
    ]
    print_table("Tables 1-2 (taxonomy, condensed cell texts)",
                ["vector", "ML1", "ML2", "ML3", "ML4"], taxonomy_rows)

    scores = [reports[level].resilience_score for level in MaturityLevel]
    assert all(a < b for a, b in zip(scores, scores[1:])), \
        f"resilience must strictly improve ML1->ML4, got {scores}"
    assert scores[-1] > 0.9, "ML4 should be near fully resilient"

    ml2_privacy = reports[MaturityLevel.ML2].assessment("privacy").under_disruption
    ml4_privacy = reports[MaturityLevel.ML4].assessment("privacy").under_disruption
    assert ml2_privacy < ml4_privacy, "ungoverned ML2 must leak; governed ML4 must not"

    ml1_dash = reports[MaturityLevel.ML1].assessment("dashboard-freshness").under_disruption
    assert (ml1_dash or 0.0) < 0.1, "ML1 has isolated data flows: no dashboard"

    ml4_dash = reports[MaturityLevel.ML4].assessment("dashboard-freshness").under_disruption
    assert ml4_dash > 0.9, "ML4 dashboard must survive the cloud outage"


def test_recovery_times_shrink_with_maturity(benchmark):
    """Mean recovery time for service availability: ML1 slowest."""
    reports = {level: run_level(level) for level in MaturityLevel}
    rows = []
    for level in MaturityLevel:
        assessment = reports[level].assessment("service-availability")
        rows.append([level.name,
                     assessment.mean_recovery_time
                     if assessment.mean_recovery_time is not None else 0.0,
                     assessment.unrecovered])
    print_table("Recovery after disruption windows (service availability)",
                ["level", "mean recovery (s)", "unrecovered"], rows)
    ml1 = reports[MaturityLevel.ML1].assessment("service-availability")
    ml4 = reports[MaturityLevel.ML4].assessment("service-availability")
    assert (ml4.mean_recovery_time or 0.0) <= (ml1.mean_recovery_time or 0.0)

"""Shared helpers for the benchmark harness.

Every bench regenerates one paper artifact (Tables 1-2 or Figures 1-5; see
DESIGN.md section 3) and prints the rows/series it reports, then asserts
the *shape* EXPERIMENTS.md records.  pytest-benchmark timings measure the
cost of the underlying experiment run.

When ``REPRO_BENCH_OUT`` is set to a directory, the session additionally
writes its per-test wall-clock timings as a ``BENCH_<n>.json`` snapshot
(same schema as ``benchmarks/regress.py``, bench name
``pytest_timings``), so pytest-driven bench runs feed the same
perf-trajectory comparison as the scripted harness.
"""

from __future__ import annotations

import os
import re
import sys
from typing import Dict, List, Sequence

_TIMINGS: Dict[str, float] = {}


def pytest_runtest_logreport(report) -> None:
    if report.when == "call" and report.passed:
        name = re.sub(r"[^0-9A-Za-z_]+", "_", report.nodeid).strip("_")
        _TIMINGS[f"{name}.wall_s"] = float(report.duration)


def pytest_sessionfinish(session, exitstatus) -> None:
    out_dir = os.environ.get("REPRO_BENCH_OUT")
    if not out_dir or not _TIMINGS:
        return
    import regress  # same directory; on sys.path alongside this conftest

    snapshot = {"schema": regress.SCHEMA, "quick": False,
                "label": "pytest session timings",
                "benches": {"pytest_timings": dict(sorted(_TIMINGS.items()))}}
    number_env = os.environ.get("REPRO_BENCH_NUM")
    path = regress.write_snapshot(
        snapshot, out_dir,
        number=int(number_env) if number_env else None)
    print(f"\n[regress] wrote pytest timing snapshot {path}")


def print_table(title: str, headers: Sequence[str],
                rows: Sequence[Sequence[object]]) -> None:
    """Render a padded table to stdout (visible with pytest -s or in the
    captured output of the bench logs)."""
    widths = [len(str(h)) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(_fmt(cell)))
    line = "  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers))
    print()
    print(f"== {title} ==")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(_fmt(cell).ljust(widths[i]) for i, cell in enumerate(row)))
    sys.stdout.flush()


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.4f}"
    return str(cell)

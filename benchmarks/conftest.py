"""Shared helpers for the benchmark harness.

Every bench regenerates one paper artifact (Tables 1-2 or Figures 1-5; see
DESIGN.md section 3) and prints the rows/series it reports, then asserts
the *shape* EXPERIMENTS.md records.  pytest-benchmark timings measure the
cost of the underlying experiment run.
"""

from __future__ import annotations

import sys
from typing import Dict, List, Sequence


def print_table(title: str, headers: Sequence[str],
                rows: Sequence[Sequence[object]]) -> None:
    """Render a padded table to stdout (visible with pytest -s or in the
    captured output of the bench logs)."""
    widths = [len(str(h)) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(_fmt(cell)))
    line = "  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers))
    print()
    print(f"== {title} ==")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(_fmt(cell).ljust(widths[i]) for i, cell in enumerate(row)))
    sys.stdout.flush()


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.4f}"
    return str(cell)

#!/usr/bin/env python
"""Benchmark regression harness: ``BENCH_<n>.json`` perf-trajectory snapshots.

Each run executes a fixed set of bench scenarios (headline figure/table
experiments plus micro-benchmarks of the hot substrate), collects both
*deterministic* headline KPIs (reading counts, availability, repair
delays -- bit-identical across machines because the simulator is
deterministic) and *wall-clock* timings (machine-dependent), and writes
them as one ``BENCH_<n>.json`` snapshot.  Snapshots from different
commits compare with per-metric tolerances: deterministic KPIs must
match exactly, timings may drift within a generous bound -- so a CI run
can flag both behavioural drift and order-of-magnitude slowdowns without
flaking on scheduler noise.

Instrumented benches also capture a profiling-plane snapshot
(:func:`repro.observability.profile.capture_profile`) under a top-level
``profiles`` key -- ignored by the metric comparison, so old baselines
stay comparable -- and when a comparison *does* flag regressions the
report runs a differential profile over the two snapshots and names the
subsystem plane responsible for each regressed bench.

Usage::

    python benchmarks/regress.py --quick                  # snapshot to CWD
    python benchmarks/regress.py --quick --out benchmarks/baselines
    python benchmarks/regress.py --compare A.json B.json  # no runs
    python benchmarks/regress.py --baseline benchmarks/baselines/BENCH_1.json
    python benchmarks/regress.py --trajectory             # drift across snapshots
    python benchmarks/regress.py --self-test              # detection check

Exit status: 0 clean, 1 when a comparison detects a regression (or the
self-test fails).
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import random
import re
import sys
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

# Runnable as a script from a source checkout without installation.
_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
if os.path.isdir(_SRC) and _SRC not in sys.path:
    sys.path.insert(0, _SRC)

SCHEMA = 1

# --------------------------------------------------------------------------- #
# tolerances: metric name pattern -> (relative tolerance, direction)
#
# direction "higher" flags only increases (timings: slower is a
# regression, faster is not); "both" flags any drift beyond tolerance.
# Deterministic KPIs get an epsilon tolerance: the simulator guarantees
# bit-identical runs, so *any* change is a behavioural difference worth
# a human look (and an intentional one is absorbed by re-baselining).
# --------------------------------------------------------------------------- #
_EPS = 1e-9
TOLERANCES: List[Tuple[str, float, str]] = [
    (r".*wall_s$", 1.0, "higher"),          # allow 2x before flagging
    (r".*\.events_per_s$", 0.5, "lower"),   # throughput: flag 50% drops
    (r".*\.specs_per_s$", 0.5, "lower"),    # compile throughput: same rule
    (r".*\.speedup_k\d+$", 0.5, "lower"),   # shard scaling: flag 50% drops
    (r".*", _EPS, "both"),                  # everything else: deterministic
]


def tolerance_for(metric: str) -> Tuple[float, str]:
    for pattern, tol, direction in TOLERANCES:
        if re.fullmatch(pattern, metric):
            return tol, direction
    return _EPS, "both"  # pragma: no cover - final pattern matches all


# --------------------------------------------------------------------------- #
# bench scenarios
# --------------------------------------------------------------------------- #
# Profiling-plane snapshots captured as a side effect of instrumented
# bench runs; take_snapshot() clears this and folds it into the
# ``profiles`` section of the written BENCH_<n>.json.
_RUN_PROFILES: Dict[str, Dict[str, Any]] = {}


def bench_smart_city(quick: bool) -> Dict[str, float]:
    """The observed smart-city disruption run and its resilience KPIs."""
    from repro.cli import _run_smart_city_partition

    started = time.perf_counter()
    system = _run_smart_city_partition(quick)
    wall = time.perf_counter() - started
    system.spans.finish_open(system.sim.now)
    _RUN_PROFILES["smart_city"] = system.profile_snapshot(
        meta={"scenario": "smart-city-partition", "quick": quick})
    report = system.kpi_report()
    arcs = report.arcs
    mttrs = [arc.mttr for arc in arcs if arc.mttr is not None]
    return {
        "wall_s": wall,
        "availability": report.availability or 0.0,
        "worst_availability": report.worst_availability or 0.0,
        "faults": float(len(arcs)),
        "resolved": float(sum(1 for a in arcs if a.resolved)),
        "mttr_total_s": float(sum(mttrs)),
        "messages_delivered": float(system.network.stats.delivered),
        "spans": float(len(system.spans.spans)),
    }


def bench_mape_outage(quick: bool) -> Dict[str, float]:
    """Fig. 5's edge-placed MAPE loop healing through a cloud outage."""
    from repro.experiments import mape_repair_delays, run_mape_placement

    started = time.perf_counter()
    system, loops = run_mape_placement("edge")
    wall = time.perf_counter() - started
    delays = mape_repair_delays(system, loops)
    return {
        "wall_s": wall,
        "repairs": float(len(delays)),
        "repair_fastest_s": float(delays[0]) if delays else -1.0,
        "repair_slowest_s": float(delays[-1]) if delays else -1.0,
        "missed_observations": float(
            sum(loop.missed_observations for loop in loops)),
    }


def bench_kernel(quick: bool) -> Dict[str, float]:
    """Raw event-loop throughput: a self-rescheduling event chain."""
    from repro.simulation.kernel import Simulator

    n = 20_000 if quick else 100_000
    sim = Simulator()
    fired = [0]

    def tick(s) -> None:
        fired[0] += 1
        if fired[0] < n:
            s.schedule(0.001, tick)

    sim.schedule(0.0, tick)
    started = time.perf_counter()
    sim.run(until=n)
    wall = time.perf_counter() - started
    return {
        "wall_s": wall,
        "events": float(fired[0]),
        "final_now": round(sim.now, 6),
        "events_per_s": fired[0] / wall if wall > 0 else 0.0,
    }


def bench_histogram(quick: bool) -> Dict[str, float]:
    """Streaming-histogram ingest rate plus deterministic quantiles."""
    from repro.observability.histogram import StreamingHistogram

    n = 50_000 if quick else 200_000
    rng = random.Random(42)
    values = [rng.lognormvariate(-3.0, 1.0) for _ in range(n)]
    hist = StreamingHistogram()
    started = time.perf_counter()
    for value in values:
        hist.observe(value)
    wall = time.perf_counter() - started
    return {
        "wall_s": wall,
        "events_per_s": n / wall if wall > 0 else 0.0,
        "count": float(hist.count),
        "p50": round(hist.quantile(0.5), 9),
        "p99": round(hist.quantile(0.99), 9),
    }


def bench_persistence(quick: bool) -> Dict[str, float]:
    """Checkpoint/resume/replay overhead and end-to-end determinism.

    Runs the control-outage scenario uninterrupted, then interrupted at
    mid-horizon + resumed, and replays the resumed journal.  Timings and
    checkpoint size come from the persistence telemetry series; the
    digest/replay metrics are deterministic and must stay bit-identical.
    """
    import shutil
    import tempfile

    from repro.persistence import (
        ScenarioSpec,
        replay_journal,
        resume_run,
        run_scenario,
        run_to_checkpoint,
    )

    spec = ScenarioSpec(name="control-outage", seed=11)
    tmp = tempfile.mkdtemp(prefix="bench-persistence-")
    started = time.perf_counter()
    try:
        reference = run_scenario(
            spec, journal_path=os.path.join(tmp, "reference.jsonl"))
        interrupted = run_to_checkpoint(spec, tmp, at=45.0)
        metrics = interrupted.system.metrics
        save_s = metrics.series("persistence.checkpoint.save_s").values[-1]
        size_b = metrics.series("persistence.checkpoint.bytes").values[-1]
        resumed = resume_run(directory=tmp)
        replay = replay_journal(os.path.join(tmp, "journal.jsonl"))
        return {
            "wall_s": time.perf_counter() - started,
            "save.wall_s": float(save_s),
            "restore.wall_s": float(resumed.fast_forward_s),
            "checkpoint_bytes": float(size_b),
            "fired_at_checkpoint": float(interrupted.checkpoint.fired),
            "fired_total": float(resumed.system.sim.fired_count),
            "digest_match": float(
                resumed.final_digest == reference.final_digest),
            "replay_ok": float(replay.ok),
        }
    finally:
        shutil.rmtree(tmp, ignore_errors=True)


def bench_traffic(quick: bool) -> Dict[str, float]:
    """Serving-plane throughput and the overload/retry-storm KPIs.

    The cohort runs prove load generation scales with aggregate rate,
    not user count: the 100k-client run must fire the same order of
    magnitude of kernel events as the 10k-client run.  The overload and
    retry-storm KPIs are deterministic headline numbers.
    """
    from repro.traffic.scenarios import (
        prepare_overload,
        run_overload,
        run_retry_storm,
    )

    horizon = 10.0 if quick else 30.0

    def cohort_run(users: int) -> Tuple[float, float, int]:
        # Equal aggregate demand (400/s) spread over `users` clients.
        prepared = prepare_overload(
            variant="admission", users=users,
            rate_per_user=400.0 / users, horizon=horizon)
        started = time.perf_counter()
        prepared.system.run(until=horizon)
        wall = time.perf_counter() - started
        events = prepared.system.sim.fired_count
        return wall, events / wall if wall > 0 else 0.0, events

    wall_10k, eps_10k, events_10k = cohort_run(10_000)
    _, _, events_100k = cohort_run(100_000)

    overload = run_overload("naive", horizon=horizon)
    # The recovery window opens at t=21 (heal + grace), so even the
    # quick variant must run past it.
    storm = run_retry_storm("resilient",
                            horizon=30.0 if quick else 45.0)
    return {
        "wall_s": wall_10k,
        "events_per_s": eps_10k,
        "events_10k_clients": float(events_10k),
        "events_100k_clients": float(events_100k),
        "overload_goodput": round(overload["goodput"], 9),
        "overload_p99_s": round(overload["p99_latency"], 9),
        "storm_recovery_ratio": round(storm["recovery_ratio"], 9),
        "storm_breaker_trips": float(storm["breaker"]["trips"]),
    }


def bench_security(quick: bool) -> Dict[str, float]:
    """Security-plane overhead and the adversary-scenario KPIs.

    The headline number is the cost of the *defense*, not the attack:
    the same byzantine-gossip topology and workload runs with no
    security wiring (attack off, plane idle), with the interceptor +
    auth path enabled on the identical honest workload (``authed``),
    and fully defended under attack (auth + trust + MAPE, attacker
    active).  The signing/verify path is budgeted at <=15% overhead on
    the clean comparison (``overhead_budget_ok``) in both kernel
    events -- deterministic, auth adds zero events -- and wall time.
    The wall estimate is the min over back-to-back (off, auth) pairs:
    scheduler noise only ever *inflates* a leg, so the smallest pair
    ratio is the closest observation of the intrinsic auth cost.  The
    0/1 gate is a gross-regression tripwire (e.g. an accidentally
    quadratic encoding), not a profiler.
    """
    from repro.security.scenarios import (
        prepare_byzantine_gossip,
        run_byzantine_gossip,
        run_raft_equivocation,
        run_sybil_flood,
    )

    horizon = 8.0 if quick else 24.0
    reps = 3 if quick else 5

    def one_run(variant: str, authed: bool = False) -> Tuple[float, int]:
        prepared = prepare_byzantine_gossip(variant=variant, horizon=horizon,
                                            authed=authed)
        started = time.perf_counter()
        prepared.system.run(until=horizon)
        return time.perf_counter() - started, prepared.system.sim.fired_count

    attack_off_wall = auth_on_wall = attack_on_wall = float("inf")
    best_ratio = float("inf")
    for _ in range(reps):
        off_wall, attack_off_events = one_run("clean")
        auth_wall, auth_on_events = one_run("clean", authed=True)
        on_wall, attack_on_events = one_run("defended")
        attack_off_wall = min(attack_off_wall, off_wall)
        auth_on_wall = min(auth_on_wall, auth_wall)
        attack_on_wall = min(attack_on_wall, on_wall)
        if off_wall > 0:
            best_ratio = min(best_ratio, auth_wall / off_wall)

    wall_overhead = max(0.0, best_ratio - 1.0)
    event_overhead = max(0.0, (auth_on_events - attack_off_events)
                         / attack_off_events if attack_off_events else 0.0)

    gossip = run_byzantine_gossip("defended", horizon=horizon)
    raft = run_raft_equivocation("defended")
    flood = run_sybil_flood("defended")
    return {
        "wall_s": attack_off_wall,
        "auth_on.wall_s": auth_on_wall,
        "attack_on.wall_s": attack_on_wall,
        "overhead_budget_ok": float(wall_overhead <= 0.15
                                    and event_overhead <= 0.15),
        "auth_event_overhead": round(event_overhead, 9),
        "attack_off_events": float(attack_off_events),
        "auth_on_events": float(auth_on_events),
        "attack_on_events": float(attack_on_events),
        "gossip_quarantined": float(len(gossip["quarantined"])),
        "raft_safety_ok": float(not raft["safety_violated"]),
        "flood_goodput": round(flood["goodput"], 9),
        "flood_sybils": float(flood["sybil_count"]),
    }


def bench_observability(quick: bool) -> Dict[str, float]:
    """Telemetry recording cost on the kernel hot loop, full vs sampled.

    A synthetic gateway poll loop: every event aggregates a batch of
    sensor readings (the real work), every 16th event rolls the current
    poll-round span and batches the tick counter via the
    ``counter_adder`` fast path, and -- when the round's span was kept
    -- every event records a metric sample.  Three modes run
    back-to-back per rep:
    *bare* (no telemetry), *full* (every round's span and every event's
    sample recorded) and *sampled* (2%% head-based sampling, seeded).
    Like bench_security, the wall estimate is the min over paired
    (bare, sampled) reps -- scheduler noise only inflates a leg, so the
    smallest ratio is the closest observation of the intrinsic recording
    cost.  ``sampled_budget_ok`` trips when even the best rep's sampled
    run exceeds the 10%% overhead budget over bare: the tripwire for
    accidentally de-optimizing the sampled drop path.  Span/sample
    counts are deterministic (the sampler hashes (seed, root ordinal)),
    so they double as a drift check on the sampling decision stream.
    """
    from repro.observability.overhead import SpanSampler
    from repro.observability.spans import SpanRecorder
    from repro.simulation.kernel import Simulator
    from repro.simulation.metrics import MetricsRecorder

    n = 6_000 if quick else 24_000
    reps = 5 if quick else 7
    round_events = 16
    rate = 0.02
    readings = [0.05 * i for i in range(32)]

    def one_run(mode: str):
        sim = Simulator()
        spans = None
        metrics = None
        add = None
        if mode != "bare":
            sampler = SpanSampler(rate, seed=7) if mode == "sampled" else None
            spans = SpanRecorder(sampler=sampler)
            metrics = MetricsRecorder()
            add = metrics.counter_adder("obs.ticks")
        # [fired, ewma, open span, round kept?] -- list, not dict, so the
        # handler's own bookkeeping stays cheap relative to what we meter.
        state: List[Any] = [0, 0.0, None, False]

        def tick(s: Any) -> None:
            fired = state[0] = state[0] + 1
            total = 0.0
            for r in readings:
                total += r * 1.0001 + 0.003
            state[1] = 0.9 * state[1] + 0.1 * total
            if spans is not None:
                if fired % round_events == 1:
                    if state[2] is not None:
                        spans.finish(state[2], s.now)
                        add(float(round_events))
                    span = spans.start("poll-round", "bench", s.now)
                    state[2] = span
                    state[3] = span.sampled
                if state[3]:
                    metrics.record("obs.batch_ewma", s.now, state[1])
            if fired < n:
                s.schedule(0.001, tick)

        sim.schedule(0.0, tick)
        started = time.perf_counter()
        sim.run(until=float(n))
        wall = time.perf_counter() - started
        if spans is not None and state[2] is not None:
            spans.finish(state[2], sim.now)
            add(float(round_events))
        return wall, spans, metrics

    bare_wall = full_wall = sampled_wall = float("inf")
    best_full_ratio = best_sampled_ratio = float("inf")
    full_spans = sampled_spans = None
    full_metrics = sampled_metrics = None
    for _ in range(reps):
        b_wall, _, _ = one_run("bare")
        f_wall, full_spans, full_metrics = one_run("full")
        s_wall, sampled_spans, sampled_metrics = one_run("sampled")
        bare_wall = min(bare_wall, b_wall)
        full_wall = min(full_wall, f_wall)
        sampled_wall = min(sampled_wall, s_wall)
        if b_wall > 0:
            best_full_ratio = min(best_full_ratio, f_wall / b_wall)
            best_sampled_ratio = min(best_sampled_ratio, s_wall / b_wall)

    sampled_overhead = max(0.0, best_sampled_ratio - 1.0)
    return {
        "wall_s": bare_wall,
        "full.wall_s": full_wall,
        "sampled.wall_s": sampled_wall,
        "sampled_budget_ok": float(sampled_overhead <= 0.10),
        "spans_full": float(len(full_spans)),
        "spans_sampled": float(len(sampled_spans)),
        "spans_sampled_out": float(sampled_spans.sampled_out),
        "metric_points_full": float(full_metrics.total_points()),
        "metric_points_sampled": float(sampled_metrics.total_points()),
        "ticks_counted": float(sampled_metrics.counter("obs.ticks")),
    }


def bench_chaos(quick: bool) -> Dict[str, float]:
    """Chaos-plane cost: spec-compile throughput and campaign wall per run.

    Two legs.  First, ``compile.specs_per_s``: sampled specs compiled
    (full system wiring -- topology, traffic, faults, defenses,
    monitor) but never run; the number campaigns pay per case before
    any simulation happens.  Second, a small seeded campaign
    (``shrink=False``, no corpus) measuring end-to-end wall per case at
    a short horizon.  Event and violation counts are deterministic
    functions of the campaign seed, so they double as drift tripwires
    on the sampler and compiler: any change to the sampling stream or
    the compiled wiring shows up as an exact-metric diff before it can
    silently re-name every corpus bundle.
    """
    from repro.chaos import ChaosCampaign, SpecSampler, compile_spec

    n_compile = 20 if quick else 50
    sampler = SpecSampler(84)
    specs = [sampler.sample(index) for index in range(n_compile)]
    started = time.perf_counter()
    for spec in specs:
        compile_spec(spec)
    compile_wall = time.perf_counter() - started

    runs = 2 if quick else 3
    campaign = ChaosCampaign(seed=84, runs=runs, horizon=10.0, shrink=False)
    result = campaign.run()
    return {
        "wall_s": compile_wall + result.wall_s,
        "compile.wall_s": compile_wall,
        "compile.specs_per_s": (n_compile / compile_wall
                                if compile_wall > 0 else 0.0),
        "campaign.wall_s": result.wall_s,
        "campaign.run_wall_s": result.wall_s / runs,
        "campaign.events": float(sum(case.events for case in result.cases)),
        "campaign.violations": float(result.violation_count),
    }


def bench_live(quick: bool) -> Dict[str, float]:
    """Live-service executor overhead over the batch reference driver.

    Pairs a batch ``run_scenario`` with an unpaced (``speed=0``) live
    drive of the same journaled spec per rep; both drain the identical
    event stream, so the wall ratio isolates the real-time executor's
    per-event machinery (peek, drain checks, housekeeping gate).  As in
    bench_security/bench_observability the estimate is the min over
    paired reps -- scheduler noise only inflates a leg -- and
    ``paced_budget_ok`` trips when even the best rep exceeds the 10%%
    overhead budget.  ``digest_identical`` is the determinism headline:
    the live journal must stay byte-identical to the batch one.
    """
    import shutil
    import tempfile

    from repro.live import LiveService
    from repro.persistence import ScenarioSpec, run_scenario

    until = 20.0 if quick else 45.0
    reps = 3 if quick else 5
    spec = ScenarioSpec(name="traffic-retry-storm")
    tmp = tempfile.mkdtemp(prefix="bench-live-")
    batch_wall = live_wall = float("inf")
    best_ratio = float("inf")
    events = 0.0
    identical = True
    try:
        batch_journal = os.path.join(tmp, "batch.jsonl")
        for rep in range(reps):
            started = time.perf_counter()
            result = run_scenario(spec, journal_path=batch_journal,
                                  until=until)
            b_wall = time.perf_counter() - started
            events = float(result.system.sim.fired_count)

            out = os.path.join(tmp, f"live-{rep}")
            service = LiveService(spec, out, speed=0.0, port=None,
                                  checkpoint_every=3600.0, until=until)
            service.start()
            started = time.perf_counter()
            service.run()
            l_wall = time.perf_counter() - started

            batch_wall = min(batch_wall, b_wall)
            live_wall = min(live_wall, l_wall)
            if b_wall > 0:
                best_ratio = min(best_ratio, l_wall / b_wall)
            with open(batch_journal, "rb") as fh:
                batch_bytes = fh.read()
            with open(os.path.join(out, "journal.jsonl"), "rb") as fh:
                identical = identical and fh.read() == batch_bytes

        overhead = max(0.0, best_ratio - 1.0)
        return {
            "wall_s": batch_wall,
            "executor.wall_s": live_wall,
            "events": events,
            "events_per_s": events / live_wall if live_wall > 0 else 0.0,
            "paced_budget_ok": float(overhead <= 0.10),
            "digest_identical": float(identical),
        }
    finally:
        shutil.rmtree(tmp, ignore_errors=True)


def bench_shard(quick: bool) -> Dict[str, float]:
    """Sharded federation scaling: K=1/2/4 over the same federated spec.

    Each rep runs the identical ``smart-city-federated`` spec unsharded
    (K=1) and partitioned across 2 and 4 shard processes; per-K wall is
    the min over reps (noise only inflates a leg) and the speedups are
    ratios of those mins.  ``digest_stable`` requires every rep of every
    K to reproduce its federation digest bit-for-bit — the determinism
    headline for the parallel driver.  ``speedup_ok`` is the scaling
    tripwire: on runners with >= 4 cores the 4-shard run must beat the
    unsharded one by >= 2.5x; on smaller machines (where parallel shards
    cannot physically win) it records a gated pass, so a 1-core baseline
    stays comparable to a 4-core CI check.
    """
    from repro.persistence import ScenarioSpec
    from repro.shard import ShardedSimulator

    reps = 2 if quick else 3
    params = {
        "domains": 8,
        "devices_per_domain": 2_000 if quick else 10_000,
        "horizon": 6.0 if quick else 9.0,
        "max_event_rate": 80.0 if quick else 250.0,
    }
    spec = ScenarioSpec(name="smart-city-federated", seed=47, params=params)
    walls: Dict[int, float] = {1: float("inf"), 2: float("inf"),
                               4: float("inf")}
    events: Dict[int, float] = {}
    digests: Dict[int, set] = {1: set(), 2: set(), 4: set()}
    for _rep in range(reps):
        for shards in (1, 2, 4):
            result = ShardedSimulator(spec, shards=shards).run()
            walls[shards] = min(walls[shards], result.wall_s)
            events[shards] = float(result.events)
            digests[shards].add(result.federation_digest)
    speedup_k2 = walls[1] / walls[2] if walls[2] > 0 else 0.0
    speedup_k4 = walls[1] / walls[4] if walls[4] > 0 else 0.0
    stable = all(len(seen) == 1 for seen in digests.values())
    cores = os.cpu_count() or 1
    metrics: Dict[str, float] = {
        "wall_s": walls[1],
        "events": events[1],
        "digest_stable": float(stable),
        "speedup_ok": 1.0 if cores < 4 else float(speedup_k4 >= 2.5),
    }
    for shards in (1, 2, 4):
        metrics[f"k{shards}.wall_s"] = walls[shards]
        metrics[f"k{shards}.events_per_s"] = (
            events[shards] / walls[shards] if walls[shards] > 0 else 0.0)
    metrics["speedup_k2"] = speedup_k2
    metrics["speedup_k4"] = speedup_k4
    return metrics


SCENARIOS: Dict[str, Callable[[bool], Dict[str, float]]] = {
    "smart_city": bench_smart_city,
    "mape_outage": bench_mape_outage,
    "kernel": bench_kernel,
    "histogram": bench_histogram,
    "persistence": bench_persistence,
    "traffic": bench_traffic,
    "security": bench_security,
    "observability": bench_observability,
    "chaos": bench_chaos,
    "live": bench_live,
    "shard": bench_shard,
}


# --------------------------------------------------------------------------- #
# snapshot plumbing
# --------------------------------------------------------------------------- #
def take_snapshot(quick: bool, label: str = "",
                  only: Optional[List[str]] = None) -> Dict[str, Any]:
    _RUN_PROFILES.clear()
    benches: Dict[str, Dict[str, float]] = {}
    for name, runner in SCENARIOS.items():
        if only and name not in only:
            continue
        print(f"[regress] running bench {name!r}...", flush=True)
        benches[name] = runner(quick)
    snapshot: Dict[str, Any] = {"schema": SCHEMA, "quick": quick,
                                "label": label, "benches": benches}
    if _RUN_PROFILES:
        snapshot["profiles"] = dict(_RUN_PROFILES)
    return snapshot


def next_snapshot_number(out_dir: str) -> int:
    numbers = [0]
    for path in glob.glob(os.path.join(out_dir, "BENCH_*.json")):
        match = re.fullmatch(r"BENCH_(\d+)\.json", os.path.basename(path))
        if match:
            numbers.append(int(match.group(1)))
    return max(numbers) + 1


def write_snapshot(snapshot: Dict[str, Any], out_dir: str,
                   number: Optional[int] = None) -> str:
    os.makedirs(out_dir, exist_ok=True)
    if number is None:
        number = next_snapshot_number(out_dir)
    path = os.path.join(out_dir, f"BENCH_{number}.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(snapshot, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_snapshot(path: str) -> Dict[str, Any]:
    with open(path, encoding="utf-8") as handle:
        snapshot = json.load(handle)
    if snapshot.get("schema") != SCHEMA:
        raise ValueError(f"{path}: unsupported snapshot schema "
                         f"{snapshot.get('schema')!r} (want {SCHEMA})")
    return snapshot


# --------------------------------------------------------------------------- #
# comparison
# --------------------------------------------------------------------------- #
def compare_snapshots(
    baseline: Dict[str, Any], current: Dict[str, Any]
) -> List[Dict[str, Any]]:
    """Tolerance-aware diff; returns one record per regression.

    Only metrics present in *both* snapshots compare (new benches are not
    regressions; removed ones surface as ``missing`` records so a bench
    cannot silently disappear from the trajectory).
    """
    regressions: List[Dict[str, Any]] = []
    base_benches = baseline.get("benches", {})
    cur_benches = current.get("benches", {})
    if baseline.get("quick") != current.get("quick"):
        regressions.append({
            "bench": "*", "metric": "quick", "kind": "incomparable",
            "baseline": baseline.get("quick"), "current": current.get("quick"),
            "detail": "cannot compare quick and full snapshots",
        })
        return regressions
    for bench, base_metrics in sorted(base_benches.items()):
        cur_metrics = cur_benches.get(bench)
        if cur_metrics is None:
            regressions.append({
                "bench": bench, "metric": "*", "kind": "missing",
                "baseline": len(base_metrics), "current": None,
                "detail": "bench present in baseline but not in current run",
            })
            continue
        for metric, base_value in sorted(base_metrics.items()):
            if metric not in cur_metrics:
                regressions.append({
                    "bench": bench, "metric": metric, "kind": "missing",
                    "baseline": base_value, "current": None,
                    "detail": "metric disappeared",
                })
                continue
            cur_value = cur_metrics[metric]
            tol, direction = tolerance_for(f"{bench}.{metric}")
            scale = max(abs(float(base_value)), _EPS)
            drift = (float(cur_value) - float(base_value)) / scale
            exceeded = (
                drift > tol if direction == "higher" else
                -drift > tol if direction == "lower" else
                abs(drift) > tol
            )
            if exceeded:
                regressions.append({
                    "bench": bench, "metric": metric, "kind": "drift",
                    "baseline": base_value, "current": cur_value,
                    "detail": f"drift {drift:+.2%} exceeds "
                              f"{direction} tolerance {tol:.0%}",
                })
    return regressions


def print_report(regressions: List[Dict[str, Any]],
                 baseline: Optional[Dict[str, Any]] = None,
                 current: Optional[Dict[str, Any]] = None) -> None:
    if not regressions:
        print("[regress] OK: no regressions against baseline")
        return
    print(f"[regress] FAIL: {len(regressions)} regression(s) detected")
    for reg in regressions:
        print(f"  - {reg['bench']}.{reg['metric']} [{reg['kind']}]: "
              f"{reg['baseline']} -> {reg['current']} ({reg['detail']})")
    if baseline is not None and current is not None:
        from repro.observability.profile import attribute_regressions

        attribution = attribute_regressions(
            [f"{reg['bench']}.{reg['metric']}: {reg['detail']}"
             for reg in regressions],
            baseline, current)
        for line in attribution:
            print(f"  * {line}")


def print_trajectory(baselines_dir: str) -> int:
    """Per-metric drift across every ``BENCH_<n>.json`` in a directory.

    Where ``--compare`` answers "did THIS change regress anything", the
    trajectory answers "where has this metric been heading" across all
    retained snapshots (oldest -> newest), using the same drift rows the
    HTML report's "Bench trajectory" section renders.  Mixed quick/full
    snapshots are refused: their sizes differ, so drift between them is
    meaningless.
    """
    from repro.observability.export import bench_trajectory_rows

    paths = sorted(
        glob.glob(os.path.join(baselines_dir, "BENCH_*.json")),
        key=lambda p: int(re.fullmatch(
            r"BENCH_(\d+)\.json", os.path.basename(p)).group(1)),
    )
    if not paths:
        print(f"[regress] no BENCH_*.json snapshots under {baselines_dir}")
        return 1
    snapshots = [load_snapshot(path) for path in paths]
    modes = {snap.get("quick", False) for snap in snapshots}
    if len(modes) > 1:
        print("[regress] trajectory refused: snapshots mix --quick and "
              "full runs; drift across sizes is meaningless")
        return 1
    names = " -> ".join(
        f"{os.path.basename(p)}"
        + (f" ({s.get('label')})" if s.get("label") else "")
        for p, s in zip(paths, snapshots))
    print(f"[regress] trajectory over {len(paths)} snapshot(s): {names}")
    rows = bench_trajectory_rows(snapshots)
    width = max(len(row[0]) for row in rows) if rows else 10
    print(f"  {'metric'.ljust(width)}  {'first':>14}  {'last':>14}  "
          f"{'drift':>14}  {'drift%':>8}")
    for metric, first, last, drift, pct in rows:
        def fmt(value: Any) -> str:
            return (f"{value:.6g}" if isinstance(value, (int, float))
                    else str(value))
        print(f"  {metric.ljust(width)}  {fmt(first):>14}  {fmt(last):>14}  "
              f"{fmt(drift):>14}  {pct:>8}")
    return 0


# --------------------------------------------------------------------------- #
# self-test: the harness must catch an injected regression
# --------------------------------------------------------------------------- #
def self_test(tmp_dir: str = ".") -> bool:
    """Round-trip a synthetic snapshot and verify detection behaviour.

    Three properties: identical snapshots compare clean; a perturbed
    deterministic KPI is flagged; a >2x timing blowup is flagged while a
    small timing wobble is not.
    """
    base = {
        "schema": SCHEMA, "quick": True, "label": "self-test",
        "benches": {
            "smart_city": {"wall_s": 0.5, "availability": 0.98,
                           "faults": 2.0, "messages_delivered": 500.0},
            "kernel": {"wall_s": 0.2, "events": 20000.0,
                       "events_per_s": 100000.0},
        },
    }
    path = write_snapshot(base, tmp_dir, number=0)
    loaded = load_snapshot(path)
    os.unlink(path)
    failures: List[str] = []

    if compare_snapshots(loaded, json.loads(json.dumps(base))):
        failures.append("identical snapshots reported a regression")

    drifted = json.loads(json.dumps(base))
    drifted["benches"]["smart_city"]["availability"] = 0.90   # KPI drift
    drifted["benches"]["kernel"]["wall_s"] = 0.55             # 2.75x slower
    drifted["benches"]["smart_city"]["wall_s"] = 0.6          # wobble: fine
    found = compare_snapshots(base, drifted)
    flagged = {(r["bench"], r["metric"]) for r in found}
    if ("smart_city", "availability") not in flagged:
        failures.append("deterministic KPI drift was not detected")
    if ("kernel", "wall_s") not in flagged:
        failures.append("timing regression beyond tolerance was not detected")
    if ("smart_city", "wall_s") in flagged:
        failures.append("in-tolerance timing wobble was wrongly flagged")

    missing = json.loads(json.dumps(base))
    del missing["benches"]["kernel"]
    if not any(r["kind"] == "missing"
               for r in compare_snapshots(base, missing)):
        failures.append("disappearing bench was not detected")

    # Attribution: a regression on a profiled bench must be blamed on the
    # plane whose wall time moved most between the snapshots' profiles.
    from repro.observability.profile import attribute_regressions

    planes = {"transport": {"count": 100, "total_ms": 10.0},
              "mape": {"count": 50, "total_ms": 5.0}}
    profiled_base = json.loads(json.dumps(base))
    profiled_base["profiles"] = {"smart_city": {
        "schema": 1, "meta": {}, "planes": planes, "labels": {}}}
    profiled_cur = json.loads(json.dumps(profiled_base))
    profiled_cur["profiles"]["smart_city"]["planes"]["mape"]["total_ms"] = 25.0
    attribution = attribute_regressions(
        ["smart_city.wall_s: drift +180.00% exceeds higher tolerance 100%"],
        profiled_base, profiled_cur)
    if not any("'mape'" in line for line in attribution):
        failures.append("profile diff did not attribute the regression "
                        f"to the slowed plane (got {attribution!r})")

    for failure in failures:
        print(f"[regress] self-test FAIL: {failure}")
    if not failures:
        print("[regress] self-test OK: injected regressions detected, "
              "clean compare stays clean")
    return not failures


# --------------------------------------------------------------------------- #
def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smaller scenario sizes (CI smoke)")
    parser.add_argument("--out", default=".",
                        help="directory for the BENCH_<n>.json snapshot")
    parser.add_argument("--number", type=int, default=None,
                        help="snapshot number (default: next free)")
    parser.add_argument("--label", default="", help="free-form snapshot label")
    parser.add_argument("--only", action="append", choices=sorted(SCENARIOS),
                        help="run only the named bench (repeatable)")
    parser.add_argument("--baseline", default=None,
                        help="compare the fresh snapshot to this baseline")
    parser.add_argument("--compare", nargs=2, metavar=("BASE", "CURRENT"),
                        help="compare two existing snapshots; no benches run")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the harness detects injected regressions")
    parser.add_argument(
        "--trajectory", nargs="?", metavar="DIR", default=None,
        const=os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "baselines"),
        help="print per-metric drift across all BENCH_*.json snapshots "
             "in DIR (default: benchmarks/baselines); no benches run")
    args = parser.parse_args(argv)

    if args.self_test:
        return 0 if self_test(args.out) else 1
    if args.trajectory is not None:
        return print_trajectory(args.trajectory)
    if args.compare:
        base, cur = (load_snapshot(args.compare[0]),
                     load_snapshot(args.compare[1]))
        regressions = compare_snapshots(base, cur)
        print_report(regressions, baseline=base, current=cur)
        return 1 if regressions else 0

    snapshot = take_snapshot(args.quick, label=args.label, only=args.only)
    path = write_snapshot(snapshot, args.out, number=args.number)
    print(f"[regress] wrote {path}")
    if args.baseline:
        base = load_snapshot(args.baseline)
        regressions = compare_snapshots(base, snapshot)
        print_report(regressions, baseline=base, current=snapshot)
        return 1 if regressions else 0
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

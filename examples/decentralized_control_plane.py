#!/usr/bin/env python
"""A decentralized control plane: Raft, leases and discovery at the edge.

§V argues that control must move from the cloud to cooperating edge
components.  This example builds that control plane explicitly:

* three edge nodes form a Raft group (replicated configuration log);
* an "orchestrator" lease, decided through the same log, guarantees at
  most one edge reconciles placements at a time;
* service discovery runs over gossip -- no directory server.

Then we kill the lease holder and watch the control plane re-elect,
hand over the lease, and keep committing -- all while the cloud link is
down, because nothing here depends on the cloud.

Run:  python examples/decentralized_control_plane.py
"""

from repro.coordination import (
    LeaseManager,
    RaftCluster,
    ServiceRecord,
    ServiceRegistry,
    GossipNode,
    start_lease_keeper,
)
from repro.core.system import IoTSystem
from repro.faults.models import PartitionFault


def main() -> None:
    system = IoTSystem.with_edge_cloud_landscape(3, 2, seed=77)
    edges = system.edge_nodes

    # 1. Consensus: a replicated control log among the edges.
    cluster = RaftCluster(system.sim, system.network, edges,
                          system.rngs.stream("raft"))
    managers = {
        edge: LeaseManager(system.sim, cluster.nodes[edge], duration=8.0)
        for edge in edges
    }
    cluster.start()
    for manager in managers.values():
        start_lease_keeper(system.sim, manager, "orchestrator", period=2.0)

    # 2. Discovery: gossip-backed registry, no directory server.
    gossips = {
        edge: GossipNode(system.sim, system.network, edge, edges,
                         system.rngs.stream(f"g:{edge}"), period=0.5)
        for edge in edges
    }
    registries = {edge: ServiceRegistry(g) for edge, g in gossips.items()}
    for gossip in gossips.values():
        gossip.start()
    registries["edge0"].advertise(ServiceRecord("config-api", "edge0"))

    # 3. The cloud goes away for the entire run.  Nobody cares.
    system.injector.inject_at(5.0, PartitionFault(
        name="cloud-gone", duration=100.0, isolate_node="cloud"))

    # Commit config changes continuously.
    committed = {"n": 0}

    def write_config(s):
        if cluster.propose({"config-version": committed["n"]}):
            committed["n"] += 1
        s.schedule(1.0, write_config)

    system.sim.schedule(2.0, write_config)

    system.run(until=30.0)
    holder = managers[edges[0]].holder_of("orchestrator")
    print("t=30s  raft leader:", cluster.leader().node_id,
          "| lease holder:", holder,
          "| configs committed:", committed["n"])
    print("       edge2's view of config-api:",
          registries["edge2"].lookup("config-api").device_id)

    # 4. Kill the lease holder.
    print(f"\nt=30s  crashing {holder} (the lease holder)...")
    system.fleet.crash(holder)
    system.run(until=60.0)
    live = [e for e in edges if e != holder]
    new_holder = managers[live[0]].holder_of("orchestrator")
    print(f"t=60s  new raft leader: {cluster.leader().node_id} "
          f"| new lease holder: {new_holder}")
    assert new_holder is not None and new_holder != holder
    assert cluster.state_machine_consistent()
    before = committed["n"]
    system.run(until=75.0)
    print(f"t=75s  configs committed: {committed['n']} "
          f"(+{committed['n'] - before} since the crash)")
    assert committed["n"] > before

    print("\nthe control plane never touched the cloud: consensus, "
          "leasing and discovery all ran edge-to-edge.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Edge stream analytics: aggregate at the edge, ship a trickle upstream.

§V.B names "edge analytics leveraging stream operations before reaching
remote storage" as a manifestation of the edge paradigm.  This example
builds a dataflow -- per-device temperature sources, an edge-side
windowed mean, a cloud sink -- and shows the two payoffs:

1. volume: the cloud receives ~1/window of the raw tuple rate;
2. mobility: when the edge host dies, the window operator migrates (with
   its open-window state) to a gateway and the pipeline resumes.

Run:  python examples/edge_stream_analytics.py
"""

from repro.core.system import IoTSystem
from repro.devices.base import DeviceClass
from repro.streams import (
    Dataflow,
    SinkOperator,
    SourceOperator,
    StreamTuple,
    WindowAggregateOperator,
)

HORIZON = 60.0
WINDOW = 5.0


def main() -> None:
    system = IoTSystem.with_edge_cloud_landscape(1, 3, seed=33)
    # A side link so the site survives losing its edge hub (redundant
    # connectivity is the precondition of operator mobility).
    system.topology.add_link("d0.0", "d0.1", profile="lan")

    sink = SinkOperator("cloud-sink")
    flow = Dataflow("thermals", system.sim, system.network, system.fleet,
                    epoch_period=1.0, metrics=system.metrics)
    flow.add_operator(SourceOperator("src"), "d0.0")
    flow.add_operator(WindowAggregateOperator.mean("window-mean", WINDOW),
                      "edge0", upstream="src")
    flow.add_operator(sink, "cloud", upstream="window-mean")
    flow.start()

    rng = system.rngs.stream("thermals")

    def feed(s):
        for device_id in system.sites["edge0"]:
            if system.fleet.get(device_id).up:
                flow.ingest("src", StreamTuple(20.0 + rng.gauss(0, 2), s.now,
                                               origin=device_id))
        if s.now < HORIZON - 5.0:
            s.schedule(1.0, feed)

    system.sim.schedule(0.5, feed)

    # Crash the edge at t=25; migrate the operator at t=28 (e.g. from a
    # peer MAPE loop's migration action).
    system.sim.schedule_at(25.0, lambda _s: system.fleet.crash("edge0"))

    def migrate(_s):
        flow.migrate_operator("window-mean", "d0.1")
        print(f"t=28.0s  migrated 'window-mean' (with open-window state) "
              f"edge0 -> d0.1")

    system.sim.schedule_at(28.0, migrate)
    # The crashed edge was also the cloud uplink: local analytics continue
    # on d0.1 meanwhile; cloud delivery resumes once the hub is repaired.
    system.sim.schedule_at(40.0, lambda _s: system.fleet.recover("edge0"))
    system.run(until=HORIZON)

    source = flow.operator("src")
    aggregate = flow.operator("window-mean")
    print(f"\nafter {HORIZON:.0f}s:")
    print(f"  raw tuples ingested      : {source.processed}")
    print(f"  aggregates emitted       : {aggregate.emitted} "
          f"(window = {WINDOW:.0f}s)")
    print(f"  tuples shipped on the net: {flow.tuples_shipped}")
    print(f"  tuples forwarded locally : {flow.tuples_local}")
    print(f"  dropped during edge crash: {flow.tuples_dropped}")
    print(f"  results at cloud sink    : {len(sink.results)}")
    values = [f"{r.value:.1f}" for r in sink.results[-5:]]
    print(f"  last window means        : {values}")
    reduction = source.processed / max(1, aggregate.emitted)
    print(f"\nvolume reduction at the edge: {reduction:.1f}x fewer tuples "
          "cross toward the cloud")
    assert aggregate.emitted < source.processed / 3
    assert len(sink.results) > 0


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Energy grid islanding: decentralized control holds a safety invariant.

The intro's energy scenario: smart-meter feeders balanced by edge
controllers.  When the WAN to the utility cloud fails, each feeder keeps
balancing locally ("islanded" operation) -- the safety invariant
(effective demand <= feeder capacity) persists through the outage, which
is resilience in the paper's exact sense: requirements satisfaction
persisting when facing change.

We also show the converse: crash a feeder's *edge controller* and the
invariant degrades until it recovers -- control placement, not cloud
connectivity, is what the invariant depends on.

Run:  python examples/energy_islanding.py
"""

from repro.faults.models import CrashRecoveryFault
from repro.workloads.energy import EnergyGridWorkload

HORIZON = 60.0


def balanced_fraction_in(workload, feeder, start, end):
    series = workload.system.metrics.series(f"feeder.balanced:{feeder}")
    value = series.time_weighted_mean(start, end)
    return value if value is not None else 0.0


def main() -> None:
    # Scenario A: cloud outage during operation.
    grid = EnergyGridWorkload(n_feeders=3, meters_per_feeder=5, seed=23,
                              feeder_capacity=95.0)
    grid.system.partitions.schedule_outage(15.0, 30.0, "cloud")
    stats = grid.run(HORIZON)
    print("scenario A: 3 feeders x 5 meters, cloud WAN down t=15..45s\n")
    print(f"meter reports  : {stats.meter_reports}")
    print(f"curtailments   : {stats.curtailments}")
    print(f"balanced (all) : {stats.balanced_fraction:.3f} of checks")
    during = sum(balanced_fraction_in(grid, f, 15.0, 45.0) for f in range(3)) / 3
    print(f"balanced during outage: {during:.3f}")
    assert during > 0.9, "islanded feeders must stay balanced without the cloud"
    print("-> feeders islanded cleanly: local control never needed the cloud.\n")

    # Scenario B: the local controller itself fails -- during a demand
    # surge (evening peak) it can do nothing about.
    grid_b = EnergyGridWorkload(n_feeders=1, meters_per_feeder=5, seed=23,
                                feeder_capacity=80.0)
    grid_b.system.injector.inject_at(10.0, CrashRecoveryFault(
        name="controller-crash", duration=25.0, device_id="edge0"))
    grid_b.schedule_surge(15.0, factor=1.5)   # peak hits while control is down
    stats_b = grid_b.run(HORIZON)
    before = balanced_fraction_in(grid_b, 0, 0.0, 10.0)
    while_down = balanced_fraction_in(grid_b, 0, 16.0, 35.0)
    after = balanced_fraction_in(grid_b, 0, 45.0, HORIZON)
    print("scenario B: feeder capacity 80, controller down t=10..35s, "
          "50% demand surge at t=15s\n")
    print(f"balanced before crash : {before:.3f}")
    print(f"balanced while down   : {while_down:.3f}")
    print(f"balanced after repair : {after:.3f}")
    print(f"overload exposure     : {stats_b.overload_seconds:.1f}s")
    print("\n-> the invariant tracks the *local controller's* health; "
          "resilience demands the control agent be redundant at the edge, "
          "not merely close to it.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Healthcare privacy: the phone-edge as a privacy-scope guardian.

§VI.B's closing example, end to end: wearables produce PERSONAL vitals;
each patient's phone (the edge) and the hospital are inside the privacy
scope; a research lab in a different jurisdiction may receive only
anonymized derivations.  We run the data flows, attempt the forbidden raw
export, transfer a device across domains, and audit everything through
the lineage tracker.

Run:  python examples/healthcare_privacy.py
"""

from repro.data.item import DataItem, DataSensitivity
from repro.workloads.healthcare import HealthcareWorkload


def main() -> None:
    workload = HealthcareWorkload(n_patients=3, seed=13, vitals_period=2.0)
    stats = workload.run(40.0)

    print("healthcare: 3 patients, wearable -> phone-edge -> hospital -> lab\n")
    print(f"vitals produced            : {stats.vitals_produced}")
    print(f"delivered to hospital      : {stats.vitals_shared_hospital} "
          "(in privacy scope, GDPR)")
    print(f"anonymized shares to lab   : {stats.anonymized_shared_lab} "
          "(US-CCPA jurisdiction)")
    print(f"flows denied               : {stats.flows_denied}")

    # Attempt the flow the policy must forbid: raw personal data to the lab.
    raw = DataItem("hr:0", 188, "wearable0", "patients", workload.system.sim.now,
                   DataSensitivity.PERSONAL, subject="patient0")
    allowed = workload.try_raw_export_to_lab(raw)
    last_decision = workload.policy_engine.decisions[-1][3]
    print(f"\nattempted raw export of patient0 vitals to the lab:")
    print(f"  allowed: {allowed}")
    print(f"  reason : {last_decision.reason}")
    assert not allowed

    # Lineage audit: what did the lab actually receive?
    lab_items = [
        workload.lineage.item(e.item_id)
        for e in workload.lineage.events
        if e.action == "moved" and e.location == "lab-server"
    ]
    print(f"\nlineage audit -- items that reached the lab: {len(lab_items)}")
    sensitivities = {i.sensitivity.name for i in lab_items}
    subjects = {i.subject for i in lab_items}
    print(f"  sensitivities: {sorted(sensitivities)}")
    print(f"  subjects     : {sorted(map(str, subjects))}")
    assert sensitivities == {"PUBLIC"} and subjects == {None}

    # Provenance: the anonymized items still trace back to real vitals.
    sample = lab_items[0]
    origins = workload.lineage.origins(sample.item_id)
    print(f"  provenance of one lab item: origins={[o.key for o in origins]} "
          f"(produced by {origins[0].producer!r})")

    print(f"\ndomain exposure of patient0's data: "
          f"{sorted(workload.lineage.subject_exposure('patient0'))}")
    print("\nevery byte that left the privacy scope was anonymized first; "
          "the policy engine has the audit trail to prove it.")


if __name__ == "__main__":
    main()

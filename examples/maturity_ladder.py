#!/usr/bin/env python
"""Climb the maturity ladder: ML1 silo -> ML4 resilient IoT.

Runs the paper's Tables 1-2 as an experiment: the same smart-city
workload and the same disruption schedule (service failures, device
crashes, a 25-second cloud outage, an edge crash, a latency spike) under
the four maturity-level architectures, then prints measured requirement
satisfaction and the aggregate resilience score per level.

Run:  python examples/maturity_ladder.py        (~10 seconds)
"""

from repro.core.assessment import comparison_table, recovery_table
from repro.core.maturity import ScenarioParams, run_maturity_comparison
from repro.core.vectors import MATURITY_TABLE, DisruptionVector, MaturityLevel


def main() -> None:
    params = ScenarioParams(n_sites=3, sensors_per_site=4, horizon=120.0,
                            seed=42)
    print("running the common workload under ML1..ML4 "
          f"({params.n_sites} sites x {params.sensors_per_site} devices, "
          f"{params.horizon:.0f}s horizon, identical disruption schedule)...\n")
    reports = run_maturity_comparison(params)
    report_list = [reports[level] for level in MaturityLevel]

    print("requirement satisfaction UNDER DISRUPTION (1.0 = unaffected):\n")
    print(comparison_table(report_list))
    print("\nmean recovery time after disruption windows (seconds):\n")
    print(recovery_table(report_list))

    print("\nwhat each level means (Tables 1-2, operations row):")
    for level in MaturityLevel:
        text = MATURITY_TABLE[(DisruptionVector.OPERATIONS, level)]
        score = reports[level].resilience_score
        print(f"  {level.name} (score {score:.3f}): {text}")

    scores = [reports[level].resilience_score for level in MaturityLevel]
    assert all(a < b for a, b in zip(scores, scores[1:]))
    print("\nresilience strictly improves at every step of the roadmap.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Quickstart: build a small resilient IoT system and watch it self-heal.

This walks the library's core loop in ~60 lines of user code:

1. build the Fig. 1 landscape (cloud + edge sites + devices);
2. deploy a service through the deviceless scheduler;
3. attach an edge-hosted MAPE-K loop;
4. inject a fault and a cloud outage;
5. verify, on the runtime trace, that every fault led to a repair --
   the paper's resilience definition made checkable.

Run:  python examples/quickstart.py
"""

from repro.adaptation import (
    DeviceLivenessAnalyzer,
    Executor,
    MapeLoop,
    RuleBasedPlanner,
    ServiceHealthAnalyzer,
)
from repro.core.system import IoTSystem
from repro.devices.software import Service
from repro.faults.models import PartitionFault, ServiceFailureFault
from repro.modeling.properties import LeadsTo, prop
from repro.modeling.runtime_monitor import MonitorVerdict, RuntimeMonitor, TraceStateAdapter
from repro.orchestration import DevicelessScheduler


def main() -> None:
    # 1. The landscape: 2 edge sites, 3 gateway devices each, one cloud.
    system = IoTSystem.with_edge_cloud_landscape(n_sites=2, devices_per_site=3,
                                                 seed=42)
    print(f"built landscape: {len(system.fleet)} devices, "
          f"edges={system.edge_nodes}")

    # 2. Deviceless deployment: we say *what* to run and who its clients
    #    are; the scheduler picks where (latency-aware -> an edge).
    scheduler = DevicelessScheduler(system.sim, system.fleet, system.topology)
    decision = scheduler.submit(
        Service("telemetry-processor", cpu=200.0, provides={"processing"}),
        clients=system.sites["edge0"],
    )
    print(f"scheduler placed 'telemetry-processor' on {decision.device_id!r} "
          f"({decision.detail})")

    # 3. Self-adaptation: a MAPE-K loop on edge0 manages its local scope.
    host = "edge0"
    scope = system.sites["edge0"] + ["edge0"]
    loop = MapeLoop(
        system.sim, system.network, system.fleet, host, scope,
        analyzers=[ServiceHealthAnalyzer(), DeviceLivenessAnalyzer()],
        planner=RuleBasedPlanner(),
        executor=Executor(system.sim, system.network, system.fleet, host,
                          system.rngs.stream("executor"), trace=system.trace),
        period=1.0, metrics=system.metrics, trace=system.trace,
    )
    loop.start()

    # 4. models@runtime: watch "every fault is eventually repaired".
    monitor = RuntimeMonitor()
    monitor.watch("resilience", LeadsTo(prop("faulty"), prop("healthy")))
    adapter = (TraceStateAdapter(monitor)
               .set_initial({"healthy"})
               .rule(category="fault", name="service-failure",
                     add={"faulty"}, remove={"healthy"})
               .rule(category="recovery", name="mape-repair",
                     add={"healthy"}, remove={"faulty"}))
    adapter.attach(system.trace)

    # 5. Disruption: a service failure at t=10 and a 20s cloud outage at
    #    t=15 (the edge loop should not care about the latter).
    system.injector.inject_at(10.0, ServiceFailureFault(
        name="svc-fault", device_id=decision.device_id,
        service_name="telemetry-processor"))
    system.injector.inject_at(15.0, PartitionFault(
        name="cloud-outage", duration=20.0, isolate_node="cloud"))

    system.run(until=60.0)

    # Report.
    repairs = system.trace.select(category="recovery", name="mape-repair")
    verdict = monitor.final_verdicts()["resilience"]
    print(f"\nafter 60 simulated seconds:")
    print(f"  MAPE iterations: {loop.iterations}")
    print(f"  repairs performed: {len(repairs)}")
    for event in repairs:
        print(f"    t={event.time:6.2f}s  {event.attrs['action']}")
    print(f"  time-to-repair: "
          f"{['%.2fs' % d for d in loop.time_to_repair(system.trace)]}")
    print(f"  runtime property G(faulty ~> healthy): {verdict.value.upper()}")
    assert verdict == MonitorVerdict.SATISFIED
    print("\nresilience verified: every fault was followed by a repair.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Smart city under a cloud outage: edge analytics keeps the lights on.

The intro's motivating smart-city scenario (and Fig. 1): district traffic
sensors feed edge analytics which actuate traffic signals.  We hit the
system with the paper's canonical disruption -- losing the cloud -- and
show that the sense->analyze->actuate loop, being situated at the edge,
does not miss a beat, while a cloud-offloaded variant goes dark.

Run:  python examples/smart_city_outage.py
"""

from repro.faults.models import PartitionFault
from repro.workloads.smart_city import SmartCityWorkload

HORIZON = 60.0
OUTAGE = (20.0, 40.0)


def run_with_outage() -> SmartCityWorkload:
    workload = SmartCityWorkload(n_districts=3, sensors_per_district=5, seed=7)
    workload.system.injector.inject_at(OUTAGE[0], PartitionFault(
        name="cloud-outage", duration=OUTAGE[1] - OUTAGE[0],
        isolate_node="cloud"))
    workload.run(HORIZON)
    return workload


def phase_rate(workload: SmartCityWorkload, start: float, end: float) -> float:
    series = workload.system.metrics.series("city.ingest")
    return len(series.window(start, end)) / (end - start)


def main() -> None:
    workload = run_with_outage()
    stats = workload.stats

    print("smart city: 3 districts x 5 traffic sensors, analytics on each "
          "district's edge node\n")
    print(f"readings processed : {stats.readings_processed}")
    print(f"signal commands    : {stats.commands_issued}")
    mean_latency = workload.system.metrics.series("city.latency").mean()
    p95_latency = workload.system.metrics.series("city.latency").percentile(95)
    print(f"reading latency    : mean {mean_latency * 1000:.1f} ms, "
          f"p95 {p95_latency * 1000:.1f} ms (edge-local)")

    print(f"\ncloud outage t={OUTAGE[0]:.0f}s..{OUTAGE[1]:.0f}s -- "
          "ingest rate per phase:")
    before = phase_rate(workload, 0.0, OUTAGE[0])
    during = phase_rate(workload, *OUTAGE)
    after = phase_rate(workload, OUTAGE[1], HORIZON)
    print(f"  before : {before:5.1f} readings/s")
    print(f"  during : {during:5.1f} readings/s")
    print(f"  after  : {after:5.1f} readings/s")
    assert during > 0.9 * before, "edge analytics must ride through the outage"

    actuation = workload.system.metrics.series("actuation.latency")
    print(f"\nclosed control loop: {len(actuation)} actuations, "
          f"p95 {actuation.percentile(95) * 1000:.1f} ms")
    print("\nthe edge-situated control loop never noticed the cloud was gone.")


if __name__ == "__main__":
    main()

"""repro: resilient IoT middleware.

An executable reproduction of *Towards Resilient Internet of Things:
Vision, Challenges, and Research Roadmap* (Tsigkanos, Nastic, Dustdar;
ICDCS 2019).  The paper is a vision/roadmap; this library builds the
system it calls for -- see DESIGN.md for the full substitution table.

Layering (bottom-up):

- :mod:`repro.simulation` -- deterministic discrete-event kernel.
- :mod:`repro.network`, :mod:`repro.devices` -- the IoT landscape (Fig. 1).
- :mod:`repro.faults` -- disruption injection (Sections I/II).
- :mod:`repro.coordination` -- decentralized coordination (Section V, Fig. 3).
- :mod:`repro.data`, :mod:`repro.governance` -- inter-IoT data flows
  (Section VI, Fig. 4).
- :mod:`repro.modeling` -- analyzable models & verification (Section IV, Fig. 2).
- :mod:`repro.adaptation` -- MAPE-K self-adaptation (Section VII, Fig. 5).
- :mod:`repro.orchestration` -- deviceless services & placement (Section III).
- :mod:`repro.core` -- the resilience framework: requirements, metric,
  maturity levels ML1-ML4 (Tables 1-2).
- :mod:`repro.workloads` -- smart city / healthcare / energy / mobility
  scenarios.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]

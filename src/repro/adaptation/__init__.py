"""Runtime self-adaptation: the MAPE-K loop for IoT (paper §VII, Fig. 5).

"(M)onitoring the environment for changes which are reflected in a model,
(A)nalyzing the model for possible requirements violations, (P)lanning
required countermeasures and then (E)xecuting the appropriate actions and
updating the model for the next loop."

The loop is *placeable*: hosting it on the cloud node reproduces the
traditional architecture, hosting one per edge node reproduces the paper's
recommendation ("placing analysis and planning activities on edge
components").  Placement matters because every observation and every
actuation requires network reachability between the loop's host and the
device -- the mechanism behind the Fig. 5 experiment.
"""

from repro.adaptation.knowledge import DeviceSnapshot, Issue, KnowledgeBase
from repro.adaptation.actions import (
    Action,
    ActionResult,
    EvictMemberAction,
    MigrateServiceAction,
    NoopAction,
    QuarantineAction,
    RebootDeviceAction,
    RerouteTrafficAction,
    RestartServiceAction,
    RotateKeysAction,
    ShedLoadAction,
)
from repro.adaptation.analyzer import (
    Analyzer,
    BackpressureAnalyzer,
    DeviceLivenessAnalyzer,
    IntrusionAnalyzer,
    ServiceHealthAnalyzer,
    SloAlertAnalyzer,
    StaleKnowledgeAnalyzer,
)
from repro.adaptation.planner import Plan, Planner, RuleBasedPlanner
from repro.adaptation.executor import Executor
from repro.adaptation.mape import MapeLoop
from repro.adaptation.patterns import InformationSharing, RegionalPlanning
from repro.adaptation.mdp_planner import MdpPlanner, RepairModel
from repro.adaptation.uncertainty import (
    ConfidenceGatedPlanner,
    KnowledgeConfidence,
    UncertaintyRegistry,
)

__all__ = [
    "Action",
    "ActionResult",
    "Analyzer",
    "BackpressureAnalyzer",
    "DeviceLivenessAnalyzer",
    "DeviceSnapshot",
    "EvictMemberAction",
    "Executor",
    "InformationSharing",
    "IntrusionAnalyzer",
    "Issue",
    "KnowledgeBase",
    "KnowledgeConfidence",
    "MapeLoop",
    "MdpPlanner",
    "MigrateServiceAction",
    "NoopAction",
    "ConfidenceGatedPlanner",
    "Plan",
    "Planner",
    "QuarantineAction",
    "RebootDeviceAction",
    "RegionalPlanning",
    "RepairModel",
    "RerouteTrafficAction",
    "RestartServiceAction",
    "RotateKeysAction",
    "ShedLoadAction",
    "RuleBasedPlanner",
    "ServiceHealthAnalyzer",
    "SloAlertAnalyzer",
    "StaleKnowledgeAnalyzer",
    "UncertaintyRegistry",
]

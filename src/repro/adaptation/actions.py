"""Adaptation actions: the countermeasures a planner can choose.

§VII.B: "actuation of countermeasures to satisfy requirements must be
performed in accordance to constraints imposed by the application domain".
Each action declares its target device so the executor can check
reachability before attempting it -- an unreachable target makes the
action fail, it does not silently succeed (no action at a distance).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ActionResult:
    action: "Action"
    success: bool
    detail: str = ""


@dataclass(frozen=True)
class Action:
    """Base action; ``target`` is the device acted upon."""

    target: str

    def describe(self) -> str:
        return f"{type(self).__name__}({self.target})"


@dataclass(frozen=True)
class RestartServiceAction(Action):
    """Restart a failed service in place (the cheapest self-heal)."""

    service: str = ""

    def describe(self) -> str:
        return f"restart {self.service!r} on {self.target!r}"


@dataclass(frozen=True)
class MigrateServiceAction(Action):
    """Move a service from ``target`` to ``destination``.

    Used when the hosting device is down or depleted: the service's demand
    must fit the destination's free resources and runtimes.
    """

    service: str = ""
    destination: str = ""

    def describe(self) -> str:
        return f"migrate {self.service!r} from {self.target!r} to {self.destination!r}"


@dataclass(frozen=True)
class RebootDeviceAction(Action):
    """Attempt device recovery (power-cycle).  Only plausible for
    soft failures; the executor models a fixed success probability drawn
    from its seeded stream."""

    def describe(self) -> str:
        return f"reboot {self.target!r}"


@dataclass(frozen=True)
class ShedLoadAction(Action):
    """Tighten admission control on ``target``'s traffic server.

    The cheapest overload countermeasure: refuse more requests at the
    door so the ones admitted still finish within their deadlines.
    """

    factor: float = 0.5

    def describe(self) -> str:
        return f"shed load on {self.target!r} (factor {self.factor:g})"


@dataclass(frozen=True)
class RerouteTrafficAction(Action):
    """Re-point clients targeting ``target`` at ``destination``.

    The elasticity countermeasure: sustained overload at an edge site is
    absorbed by offloading its traffic to a bigger pool (typically the
    cloud), trading latency for goodput.
    """

    destination: str = ""

    def describe(self) -> str:
        return f"reroute traffic from {self.target!r} to {self.destination!r}"


@dataclass(frozen=True)
class QuarantineAction(Action):
    """Cut a compromised node off at the transport ACL.

    The first intrusion response: traffic from and to ``target`` is
    dropped, so whatever the attacker is doing stops propagating while
    keys rotate and membership converges on the eviction.
    """

    def describe(self) -> str:
        return f"quarantine {self.target!r}"


@dataclass(frozen=True)
class EvictMemberAction(Action):
    """Remove ``target`` from coordination memberships and peer lists."""

    def describe(self) -> str:
        return f"evict {self.target!r} from membership"


@dataclass(frozen=True)
class RotateKeysAction(Action):
    """Revoke ``target``'s key and rotate everyone else's.

    After rotation the compromised identity cannot produce a valid tag
    even if it exfiltrated old keys, closing the forgery window.
    """

    def describe(self) -> str:
        return f"rotate keys (revoking {self.target!r})"


@dataclass(frozen=True)
class NoopAction(Action):
    """Explicit no-op: the planner decided observation suffices."""

    reason: str = ""

    def describe(self) -> str:
        return f"noop ({self.reason})"

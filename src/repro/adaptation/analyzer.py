"""The A in MAPE-K: analyzers derive issues from the knowledge base.

Analyzers never touch the live system -- they read the knowledge base
(possibly stale) and open/close issues on it.  Three built-ins cover the
experiments; custom analyzers implement :class:`Analyzer`.
"""

from __future__ import annotations

from typing import List

from repro.adaptation.knowledge import Issue, KnowledgeBase


class Analyzer:
    """Interface: produce newly opened issues from current knowledge."""

    def analyze(self, knowledge: KnowledgeBase, now: float) -> List[Issue]:
        raise NotImplementedError


class ServiceHealthAnalyzer(Analyzer):
    """Opens ``service-failed`` issues for services observed in FAILED
    state; closes them when the service is observed running again."""

    def analyze(self, knowledge: KnowledgeBase, now: float) -> List[Issue]:
        opened: List[Issue] = []
        for snapshot in knowledge.snapshots():
            for service in sorted(snapshot.failed_services):
                issue = Issue(
                    kind="service-failed",
                    subject=snapshot.device_id,
                    detected_at=now,
                    severity=3,
                    service=service,
                    detail=f"service {service!r} observed failed",
                )
                if knowledge.open_issue(issue):
                    opened.append(issue)
            for service in sorted(snapshot.running_services):
                knowledge.close_matching("service-failed", snapshot.device_id, service)
        return opened


class DeviceLivenessAnalyzer(Analyzer):
    """Opens ``device-down`` issues for devices observed down (and closes
    them on recovery observation)."""

    def analyze(self, knowledge: KnowledgeBase, now: float) -> List[Issue]:
        opened: List[Issue] = []
        for snapshot in knowledge.snapshots():
            if not snapshot.up:
                issue = Issue(
                    kind="device-down",
                    subject=snapshot.device_id,
                    detected_at=now,
                    severity=4,
                    detail="device observed down",
                )
                if knowledge.open_issue(issue):
                    opened.append(issue)
            else:
                knowledge.close_matching("device-down", snapshot.device_id)
        return opened


class StaleKnowledgeAnalyzer(Analyzer):
    """Opens ``knowledge-stale`` issues when a device has not been observed
    for ``max_age`` -- the signal that the loop itself is blind (e.g. the
    cloud-hosted loop during a partition), which the Fig. 5 experiment
    counts as loss of control."""

    def __init__(self, max_age: float) -> None:
        if max_age <= 0:
            raise ValueError("max_age must be positive")
        self.max_age = max_age

    def analyze(self, knowledge: KnowledgeBase, now: float) -> List[Issue]:
        opened: List[Issue] = []
        for device_id in knowledge.scope:
            age = knowledge.age_of(device_id, now)
            if age is None or age > self.max_age:
                issue = Issue(
                    kind="knowledge-stale",
                    subject=device_id,
                    detected_at=now,
                    severity=2,
                    detail=f"no observation for {age if age is not None else 'ever'}",
                )
                if knowledge.open_issue(issue):
                    opened.append(issue)
            else:
                knowledge.close_matching("knowledge-stale", device_id)
        return opened


class SloAlertAnalyzer(Analyzer):
    """Turns SLO breach alerts into issues -- alert-driven adaptation.

    An :class:`~repro.observability.slo.SloMonitor` attached to this
    loop's knowledge base appends breach alerts to
    ``knowledge.facts["slo_alerts"]`` during the Monitor phase; this
    analyzer drains them and opens one issue per alert, using the spec's
    ``escalation`` as the issue kind so SLO authors choose the
    countermeasure ladder (e.g. ``device-down`` -> reboot+migrate,
    ``service-failed`` -> restart ladder, or the generic ``slo-breach``).
    This is the quantitative close of Fig. 5's loop: goal burn, not just
    observed symptoms, triggers planning.
    """

    def analyze(self, knowledge: KnowledgeBase, now: float) -> List[Issue]:
        alerts = knowledge.facts.pop("slo_alerts", [])
        opened: List[Issue] = []
        for alert in alerts:
            issue = Issue(
                kind=str(alert.get("escalation") or "slo-breach"),
                subject=str(alert.get("subject", "")),
                detected_at=now,
                severity=int(alert.get("severity", 3)),
                service=alert.get("service"),
                detail=(f"SLO {alert.get('slo')!r} burning at "
                        f"{alert.get('burn_rate')!r} (measured "
                        f"{alert.get('measured')!r})"),
            )
            if knowledge.open_issue(issue):
                opened.append(issue)
        return opened


class BackpressureAnalyzer(Analyzer):
    """Turns server backpressure signals into ``overload`` issues.

    A :class:`~repro.traffic.server.Server` with this loop's knowledge
    base attached (``server.attach_backpressure(loop.knowledge)``)
    appends facts to ``knowledge.facts["backpressure"]`` when queue
    occupancy stays above its watermark; this analyzer drains them --
    the same attach pattern as :class:`SloAlertAnalyzer` -- and opens
    one ``overload`` issue per saturated node, which the planner's
    overload rule answers with load shedding or re-routing.
    """

    def analyze(self, knowledge: KnowledgeBase, now: float) -> List[Issue]:
        signals = knowledge.facts.pop("backpressure", [])
        opened: List[Issue] = []
        for signal in signals:
            issue = Issue(
                kind="overload",
                subject=str(signal.get("node", "")),
                detected_at=now,
                severity=3,
                detail=(f"queue {signal.get('depth')}/{signal.get('capacity')} "
                        f"above watermark since {signal.get('since')}"),
            )
            if knowledge.open_issue(issue):
                opened.append(issue)
        return opened


class IntrusionAnalyzer(Analyzer):
    """Turns trust-collapse facts into ``compromised-node`` issues.

    A :class:`~repro.security.trust.TrustRegistry` attached to this
    loop's knowledge base (``plane.trust.attach(loop.knowledge)``)
    appends a fact to ``knowledge.facts["intrusion"]`` the first time a
    subject's aggregate reputation crosses the distrust threshold; this
    analyzer drains them -- the same attach pattern as
    :class:`SloAlertAnalyzer` -- and opens one high-severity issue per
    subject, which the planner answers with quarantine, eviction and key
    rotation.
    """

    def analyze(self, knowledge: KnowledgeBase, now: float) -> List[Issue]:
        facts = knowledge.facts.pop("intrusion", [])
        opened: List[Issue] = []
        for fact in facts:
            issue = Issue(
                kind="compromised-node",
                subject=str(fact.get("subject", "")),
                detected_at=now,
                severity=5,
                detail=(f"trust {fact.get('score', 0.0):.3f} collapsed "
                        f"below threshold at t={fact.get('at')}"),
            )
            if knowledge.open_issue(issue):
                opened.append(issue)
        return opened


class BatteryAnalyzer(Analyzer):
    """Opens ``battery-low`` issues below a threshold fraction."""

    def __init__(self, threshold: float = 0.2) -> None:
        if not 0.0 < threshold < 1.0:
            raise ValueError("threshold must be in (0,1)")
        self.threshold = threshold

    def analyze(self, knowledge: KnowledgeBase, now: float) -> List[Issue]:
        opened: List[Issue] = []
        for snapshot in knowledge.snapshots():
            if snapshot.up and snapshot.battery_fraction < self.threshold:
                issue = Issue(
                    kind="battery-low",
                    subject=snapshot.device_id,
                    detected_at=now,
                    severity=2,
                    detail=f"battery at {snapshot.battery_fraction:.0%}",
                )
                if knowledge.open_issue(issue):
                    opened.append(issue)
            elif snapshot.battery_fraction >= self.threshold:
                knowledge.close_matching("battery-low", snapshot.device_id)
        return opened

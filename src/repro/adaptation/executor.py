"""The E in MAPE-K: executing planned actions against the live system.

Actuation is *located*: the executor runs on the loop's host node, and an
action on device D only succeeds if the host can currently reach D over
the network (and the host itself is up).  This locality constraint is what
differentiates a cloud-hosted loop from an edge-hosted one under
partition -- the crux of the Fig. 5 experiment.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.adaptation.actions import (
    Action,
    ActionResult,
    EvictMemberAction,
    MigrateServiceAction,
    NoopAction,
    QuarantineAction,
    RebootDeviceAction,
    RerouteTrafficAction,
    RestartServiceAction,
    RotateKeysAction,
    ShedLoadAction,
)
from repro.devices.fleet import DeviceFleet
from repro.devices.software import ServiceState
from repro.network.transport import Network
from repro.simulation.kernel import Simulator
from repro.simulation.trace import TraceLog


class Executor:
    """Applies actions from ``host``, honouring reachability."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        fleet: DeviceFleet,
        host: str,
        rng: random.Random,
        reboot_success_rate: float = 0.8,
        trace: Optional[TraceLog] = None,
    ) -> None:
        self.sim = sim
        self.network = network
        self.fleet = fleet
        self.host = host
        self.rng = rng
        self.reboot_success_rate = reboot_success_rate
        self.trace = trace
        self.results: List[ActionResult] = []

    def execute(self, actions: List[Action]) -> List[ActionResult]:
        results = [self._execute_one(action) for action in actions]
        self.results.extend(results)
        return results

    # -- single action ---------------------------------------------------------#
    def _execute_one(self, action: Action) -> ActionResult:
        if isinstance(action, NoopAction):
            return self._done(action, True, "noop")
        if not self.network.node_up(self.host):
            return self._done(action, False, f"executor host {self.host!r} is down")
        if not self._reachable(action.target):
            return self._done(action, False,
                              f"target {action.target!r} unreachable from {self.host!r}")
        if isinstance(action, RestartServiceAction):
            return self._restart(action)
        if isinstance(action, MigrateServiceAction):
            return self._migrate(action)
        if isinstance(action, RebootDeviceAction):
            return self._reboot(action)
        if isinstance(action, ShedLoadAction):
            return self._shed(action)
        if isinstance(action, RerouteTrafficAction):
            return self._reroute(action)
        if isinstance(action, QuarantineAction):
            return self._quarantine(action)
        if isinstance(action, EvictMemberAction):
            return self._evict(action)
        if isinstance(action, RotateKeysAction):
            return self._rotate_keys(action)
        return self._done(action, False, f"unknown action {type(action).__name__}")

    def _reachable(self, target: str) -> bool:
        # Path existence over up links is what matters; the target's own
        # liveness is deliberately ignored so a reboot can be delivered to
        # a down device on a connected segment (out-of-band power control).
        if target == self.host:
            return True
        return self.network.topology.reachable(self.host, target)

    # -- concrete actions --------------------------------------------------------#
    def _restart(self, action: RestartServiceAction) -> ActionResult:
        try:
            device = self.fleet.get(action.target)
        except KeyError:
            return self._done(action, False, "unknown device")
        if not device.up:
            return self._done(action, False, "device is down")
        service = device.stack.service(action.service)
        if service is None:
            return self._done(action, False, f"service {action.service!r} not hosted")
        if service.state == ServiceState.RUNNING:
            return self._done(action, True, "already running")
        device.stack.start(action.service)
        return self._done(action, True, "restarted")

    def _migrate(self, action: MigrateServiceAction) -> ActionResult:
        try:
            source = self.fleet.get(action.target)
            destination = self.fleet.get(action.destination)
        except KeyError as err:
            return self._done(action, False, f"unknown device: {err}")
        if not destination.up:
            return self._done(action, False, "destination is down")
        if not self._reachable(action.destination):
            return self._done(action, False, "destination unreachable")
        if not source.hosts(action.service):
            return self._done(action, False, f"service {action.service!r} not on source")
        service = source.evict(action.service)
        if not destination.can_host(service):
            # Roll back: the service stays (failed) on the source.
            source.host(service)
            source.stack.mark_failed(service.name)
            return self._done(action, False, "destination cannot host service")
        destination.host(service)
        return self._done(action, True, "migrated")

    def _reboot(self, action: RebootDeviceAction) -> ActionResult:
        try:
            device = self.fleet.get(action.target)
        except KeyError:
            return self._done(action, False, "unknown device")
        if device.up:
            return self._done(action, True, "already up")
        if self.rng.random() < self.reboot_success_rate:
            self.fleet.recover(action.target)
            return self._done(action, True, "rebooted")
        return self._done(action, False, "reboot attempt failed")

    def _shed(self, action: ShedLoadAction) -> ActionResult:
        registry = self.sim.context.get("traffic")
        if registry is None:
            return self._done(action, False, "no traffic registry in context")
        if not registry.shed(action.target, action.factor):
            return self._done(action, False,
                              f"no traffic server on {action.target!r}")
        return self._done(action, True, f"admission tightened x{action.factor:g}")

    def _reroute(self, action: RerouteTrafficAction) -> ActionResult:
        registry = self.sim.context.get("traffic")
        if registry is None:
            return self._done(action, False, "no traffic registry in context")
        if not action.destination:
            return self._done(action, False, "no destination")
        if not self.network.node_up(action.destination):
            return self._done(action, False, "destination is down")
        if not self._reachable(action.destination):
            return self._done(action, False, "destination unreachable")
        moved = registry.reroute(action.target, action.destination)
        if moved == 0:
            return self._done(action, False,
                              f"no clients target {action.target!r}")
        return self._done(action, True,
                          f"{moved} client(s) -> {action.destination!r}")

    def _quarantine(self, action: QuarantineAction) -> ActionResult:
        plane = self.sim.context.get("security")
        if plane is None:
            return self._done(action, False, "no security plane in context")
        if not plane.quarantine_node(action.target):
            return self._done(action, True, "already quarantined")
        return self._done(action, True, "transport ACL installed")

    def _evict(self, action: EvictMemberAction) -> ActionResult:
        plane = self.sim.context.get("security")
        if plane is None:
            return self._done(action, False, "no security plane in context")
        if not plane.evict_member(action.target):
            return self._done(action, False,
                              f"{action.target!r} not in any membership")
        return self._done(action, True, "evicted from memberships")

    def _rotate_keys(self, action: RotateKeysAction) -> ActionResult:
        plane = self.sim.context.get("security")
        if plane is None:
            return self._done(action, False, "no security plane in context")
        rotated = plane.rotate_keys(revoke=action.target)
        return self._done(action, True,
                          f"revoked {action.target!r}, rotated {rotated} keys")

    def _done(self, action: Action, success: bool, detail: str) -> ActionResult:
        result = ActionResult(action=action, success=success, detail=detail)
        if self.trace is not None:
            self.trace.emit(
                self.sim.now, "adaptation",
                "action-success" if success else "action-failure",
                subject=action.target,
                action=action.describe(), detail=detail, host=self.host,
            )
        return result

    # -- stats -------------------------------------------------------------------#
    @property
    def success_count(self) -> int:
        return sum(1 for r in self.results if r.success)

    @property
    def failure_count(self) -> int:
        return sum(1 for r in self.results if not r.success)

"""The K in MAPE-K: the loop's runtime model of its managed subsystem.

§VII.A: "a composite model of the environment must be kept alive at
runtime and populated with information as they become available".  The
knowledge base stores timestamped :class:`DeviceSnapshot` observations;
analyzers read it, never the live system -- so when connectivity to a
device is lost, the loop sees (and must reason about) *stale* knowledge,
exactly the design-time-assumptions-vs-runtime gap §VII describes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional


@dataclass(frozen=True)
class DeviceSnapshot:
    """One observation of a managed device."""

    device_id: str
    observed_at: float
    up: bool
    battery_fraction: float
    running_services: frozenset
    failed_services: frozenset
    location: str = ""
    domain: str = ""


@dataclass(frozen=True)
class Issue:
    """An analyzer finding: something that may need a countermeasure.

    ``kind`` drives planner rules (e.g. ``"service-failed"``,
    ``"device-down"``, ``"knowledge-stale"``); ``severity`` orders plans.
    """

    kind: str
    subject: str
    detected_at: float
    severity: int = 1
    detail: str = ""
    service: Optional[str] = None


class KnowledgeBase:
    """Timestamped model of the managed scope."""

    def __init__(self, scope: List[str]) -> None:
        self.scope = list(scope)
        self._snapshots: Dict[str, DeviceSnapshot] = {}
        self._open_issues: Dict[str, Issue] = {}
        self.facts: Dict[str, object] = {}

    # -- observations -------------------------------------------------------- #
    def observe(self, snapshot: DeviceSnapshot) -> None:
        self._snapshots[snapshot.device_id] = snapshot

    def snapshot(self, device_id: str) -> Optional[DeviceSnapshot]:
        return self._snapshots.get(device_id)

    def snapshots(self) -> List[DeviceSnapshot]:
        return [self._snapshots[d] for d in sorted(self._snapshots)]

    def age_of(self, device_id: str, now: float) -> Optional[float]:
        """Staleness of our knowledge about a device; None if never seen."""
        snapshot = self._snapshots.get(device_id)
        if snapshot is None:
            return None
        return now - snapshot.observed_at

    def unobserved(self) -> List[str]:
        return [d for d in self.scope if d not in self._snapshots]

    # -- issue ledger ----------------------------------------------------------#
    def open_issue(self, issue: Issue) -> bool:
        """Record an issue; returns False if an identical one is open."""
        key = self._issue_key(issue)
        if key in self._open_issues:
            return False
        self._open_issues[key] = issue
        return True

    def close_issue(self, issue: Issue) -> None:
        self._open_issues.pop(self._issue_key(issue), None)

    def close_matching(self, kind: str, subject: str, service: Optional[str] = None) -> None:
        key = f"{kind}|{subject}|{service or ''}"
        self._open_issues.pop(key, None)

    def open_issues(self) -> List[Issue]:
        return sorted(
            self._open_issues.values(),
            key=lambda i: (-i.severity, i.detected_at, i.subject),
        )

    def has_issue(self, kind: str, subject: str, service: Optional[str] = None) -> bool:
        return f"{kind}|{subject}|{service or ''}" in self._open_issues

    @staticmethod
    def _issue_key(issue: Issue) -> str:
        return f"{issue.kind}|{issue.subject}|{issue.service or ''}"

    # -- persistence ----------------------------------------------------------#
    def snapshot_state(self) -> Dict[str, object]:
        return {
            "scope": list(self.scope),
            "snapshots": {
                d: {
                    "observed_at": s.observed_at, "up": s.up,
                    "battery_fraction": s.battery_fraction,
                    "running_services": sorted(s.running_services),
                    "failed_services": sorted(s.failed_services),
                    "location": s.location, "domain": s.domain,
                }
                for d, s in sorted(self._snapshots.items())
            },
            "issues": {
                key: {"kind": i.kind, "subject": i.subject,
                      "detected_at": i.detected_at, "severity": i.severity,
                      "detail": i.detail, "service": i.service}
                for key, i in sorted(self._open_issues.items())
            },
            "facts": dict(self.facts),
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        self.scope = list(state["scope"])
        self._snapshots = {
            d: DeviceSnapshot(
                device_id=d, observed_at=float(s["observed_at"]),
                up=bool(s["up"]),
                battery_fraction=float(s["battery_fraction"]),
                running_services=frozenset(s["running_services"]),
                failed_services=frozenset(s["failed_services"]),
                location=s["location"], domain=s["domain"],
            )
            for d, s in state["snapshots"].items()
        }
        self._open_issues = {
            key: Issue(kind=i["kind"], subject=i["subject"],
                       detected_at=float(i["detected_at"]),
                       severity=int(i["severity"]), detail=i["detail"],
                       service=i["service"])
            for key, i in state["issues"].items()
        }
        self.facts = dict(state["facts"])

"""The MAPE loop driver.

Binds Monitor, Analyze, Plan and Execute on a *host* node over a *scope*
of managed devices (Fig. 5).  Monitoring is modeled as the host probing
each in-scope device: an observation succeeds only if the host is up and
the device is reachable -- so a partitioned loop runs blind, its knowledge
ages, and (per the StaleKnowledgeAnalyzer) it knows that it is blind.

Repairs are measured end-to-end: ``time_to_repair`` pairs each fault trace
event in scope with the first successful adaptation action that fixes it.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.adaptation.analyzer import Analyzer
from repro.adaptation.executor import Executor
from repro.adaptation.knowledge import DeviceSnapshot, KnowledgeBase
from repro.adaptation.planner import Plan, Planner, RuleBasedPlanner
from repro.devices.fleet import DeviceFleet
from repro.devices.software import ServiceState
from repro.network.transport import Network
from repro.persistence.snapshot import event_ref, restore_event_ref
from repro.simulation.kernel import Simulator
from repro.simulation.metrics import MetricsRecorder
from repro.simulation.trace import TraceLog


class MapeLoop:
    """A periodic MAPE-K loop hosted on one node.

    Parameters
    ----------
    host:
        The node executing the loop (cloud node or an edge node).
    scope:
        Device ids this loop manages ("responsible for their management
        within a certain local scope", §VII.B).
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        fleet: DeviceFleet,
        host: str,
        scope: List[str],
        analyzers: List[Analyzer],
        planner: Planner,
        executor: Executor,
        period: float = 1.0,
        metrics: Optional[MetricsRecorder] = None,
        trace: Optional[TraceLog] = None,
    ) -> None:
        self.sim = sim
        self.network = network
        self.fleet = fleet
        self.host = host
        self.scope = list(scope)
        self.knowledge = KnowledgeBase(scope)
        self.analyzers = analyzers
        self.planner = planner
        self.executor = executor
        self.period = period
        self.metrics = metrics
        self.trace = trace
        self.iterations = 0
        self.observations = 0
        self.missed_observations = 0
        self.plans_executed = 0
        self.repairs: List[float] = []   # repair completion times
        self._running = False
        self._tick_event = None

    # -- lifecycle ----------------------------------------------------------- #
    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._iterate(self.sim)

    def stop(self) -> None:
        self._running = False

    def _iterate(self, sim: Simulator) -> None:
        if not self._running:
            return
        if self.network.node_up(self.host):
            self.iterations += 1
            spans = self.network.spans
            if spans is not None:
                # One span per loop iteration; everything the iteration
                # does (probes, actions, repair spans) nests under it.
                span = spans.start(
                    f"mape:{self.host}", "adaptation", sim.now,
                    host=self.host, iteration=self.iterations,
                )
                with spans.use(span):
                    self._monitor(sim.now)
                    issues = self._analyze(sim.now)
                    plan = self._plan(issues, sim.now)
                    self._execute(plan)
                spans.finish(span, sim.now)
            else:
                self._monitor(sim.now)
                issues = self._analyze(sim.now)
                plan = self._plan(issues, sim.now)
                self._execute(plan)
        self._tick_event = sim.schedule(self.period, self._iterate,
                                        label=f"mape:{self.host}")

    # -- M ---------------------------------------------------------------------- #
    def _monitor(self, now: float) -> None:
        for device_id in self.scope:
            if device_id != self.host and not self.network.topology.reachable(
                self.host, device_id
            ):
                self.missed_observations += 1
                continue
            try:
                device = self.fleet.get(device_id)
            except KeyError:
                continue
            # A down device on a reachable segment is observed *as down*
            # (neighbour report); its service states are unknowable, so
            # the last snapshot's services carry over.
            previous = self.knowledge.snapshot(device_id)
            if device.up:
                running = frozenset(
                    s.name for s in device.stack.services
                    if s.state == ServiceState.RUNNING
                )
                failed = frozenset(
                    s.name for s in device.stack.services
                    if s.state in (ServiceState.FAILED, ServiceState.DEGRADED)
                )
            else:
                running = previous.running_services if previous else frozenset()
                failed = previous.failed_services if previous else frozenset()
            self.knowledge.observe(DeviceSnapshot(
                device_id=device_id,
                observed_at=now,
                up=device.up,
                battery_fraction=device.battery.fraction,
                running_services=running,
                failed_services=failed,
                location=device.location,
                domain=device.domain,
            ))
            self.observations += 1

    # -- A ---------------------------------------------------------------------- #
    def _analyze(self, now: float) -> List:
        issues = []
        for analyzer in self.analyzers:
            issues.extend(analyzer.analyze(self.knowledge, now))
        return self.knowledge.open_issues()

    # -- P ---------------------------------------------------------------------- #
    def _plan(self, issues, now: float) -> Plan:
        return self.planner.plan(issues, self.knowledge, now)

    # -- E ---------------------------------------------------------------------- #
    def _execute(self, plan: Plan) -> None:
        if plan.empty:
            return
        self.plans_executed += 1
        results = self.executor.execute(plan.actions)
        for result in results:
            if isinstance(self.planner, RuleBasedPlanner):
                self.planner.record_outcome(result.action, result.success)
            if result.success and not _is_noop(result):
                self.repairs.append(self.sim.now)
                if self.metrics is not None:
                    self.metrics.increment(f"mape.repairs:{self.host}")
                spans = self.network.spans
                if spans is not None:
                    # Join the originating disruption's trace when the
                    # injector still tracks an active fault on this
                    # subject; otherwise stay under the iteration span.
                    fault_span = spans.active_fault(result.action.target)
                    spans.record(
                        f"repair:{result.action.target}", "recovery",
                        self.sim.now, parent=fault_span,
                        host=self.host, action=result.action.describe(),
                    )
                if self.trace is not None:
                    self.trace.emit(
                        self.sim.now, "recovery", "mape-repair",
                        subject=result.action.target,
                        host=self.host, action=result.action.describe(),
                    )
        # Successful repairs close their issues so the next iteration
        # re-opens them only if the symptom persists.
        for issue in plan.addressed:
            self.knowledge.close_issue(issue)

    # -- persistence ----------------------------------------------------------#
    def snapshot_state(self) -> Dict[str, Any]:
        """Loop counters, knowledge base, planner memory and pending tick."""
        state: Dict[str, Any] = {
            "running": self._running,
            "iterations": self.iterations,
            "observations": self.observations,
            "missed_observations": self.missed_observations,
            "plans_executed": self.plans_executed,
            "repairs": list(self.repairs),
            "knowledge": self.knowledge.snapshot_state(),
            "tick": event_ref(self._tick_event),
        }
        if isinstance(self.planner, RuleBasedPlanner):
            state["restart_attempts"] = dict(self.planner._restart_attempts)
        return state

    def restore_state(self, state: Dict[str, Any]) -> None:
        self._running = bool(state["running"])
        self.iterations = int(state["iterations"])
        self.observations = int(state["observations"])
        self.missed_observations = int(state["missed_observations"])
        self.plans_executed = int(state["plans_executed"])
        self.repairs = [float(t) for t in state["repairs"]]
        self.knowledge.restore_state(state["knowledge"])
        if isinstance(self.planner, RuleBasedPlanner) and "restart_attempts" in state:
            self.planner._restart_attempts = {
                k: int(v) for k, v in state["restart_attempts"].items()
            }
        self._tick_event = restore_event_ref(self.sim, state["tick"],
                                             self._iterate)

    # -- measurement ---------------------------------------------------------- #
    def time_to_repair(self, trace: TraceLog, fault_names: Optional[List[str]] = None) -> List[float]:
        """Pair in-scope fault events with the first later mape-repair on
        the same subject by this loop; returns the repair delays."""
        fault_names = fault_names or ["service-failure", "crash", "battery-depleted"]
        repairs = [
            e for e in trace.select(category="recovery", name="mape-repair")
            if e.attrs.get("host") == self.host
        ]
        delays = []
        for fault in trace.select(category="fault"):
            if fault.name not in fault_names or fault.subject not in self.scope:
                continue
            for repair in repairs:
                if repair.subject == fault.subject and repair.time >= fault.time:
                    delays.append(repair.time - fault.time)
                    break
        return delays


def _is_noop(result) -> bool:
    from repro.adaptation.actions import NoopAction

    return isinstance(result.action, NoopAction) or result.detail in (
        "already running", "already up", "noop",
    )

"""MDP-based repair planning.

Where the :class:`~repro.adaptation.planner.RuleBasedPlanner` encodes a
fixed escalation ladder, the :class:`MdpPlanner` *derives* the
countermeasure from a model: for each issue it builds a small repair MDP
(states: service failed / device down / healthy / given-up; actions:
restart, migrate, reboot, wait; parameters: per-action success
probabilities and costs) and picks the first action of the optimal
policy.  Model-based planning, per §V.B -- and the parameters are exactly
the "action-outcome" uncertainty of the §V.A taxonomy, made explicit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.adaptation.actions import (
    Action,
    MigrateServiceAction,
    RebootDeviceAction,
    RestartServiceAction,
)
from repro.adaptation.knowledge import Issue, KnowledgeBase
from repro.adaptation.planner import Plan, Planner
from repro.modeling.mdp import Mdp, Transition


@dataclass(frozen=True)
class RepairModel:
    """Parameters of the repair MDP (the acknowledged action-outcome
    uncertainties and costs)."""

    restart_success: float = 0.7
    migrate_success: float = 0.9
    reboot_success: float = 0.6
    restart_cost: float = 1.0
    migrate_cost: float = 5.0     # moving state + warming a new host
    reboot_cost: float = 8.0      # device unavailable during power cycle
    wait_cost: float = 2.0        # requirement violation per step of waiting
    healthy_reward: float = 100.0

    def validate(self) -> None:
        for name in ("restart_success", "migrate_success", "reboot_success"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name}={value} out of [0,1]")


def build_service_repair_mdp(model: RepairModel, can_migrate: bool) -> Mdp:
    """States: failed -> (healthy | failed); migrate only when a
    destination exists."""
    model.validate()
    mdp = Mdp("service-repair", discount=0.9)
    for state in ("failed", "healthy"):
        mdp.add_state(state)
    mdp.add_action("failed", "restart", [
        Transition(model.restart_success, "healthy",
                   model.healthy_reward - model.restart_cost),
        Transition(1.0 - model.restart_success, "failed", -model.restart_cost),
    ])
    if can_migrate:
        mdp.add_action("failed", "migrate", [
            Transition(model.migrate_success, "healthy",
                       model.healthy_reward - model.migrate_cost),
            Transition(1.0 - model.migrate_success, "failed",
                       -model.migrate_cost),
        ])
    mdp.add_action("failed", "wait", [
        Transition(1.0, "failed", -model.wait_cost),
    ])
    # healthy is terminal (the issue is resolved).
    return mdp


def build_device_repair_mdp(model: RepairModel, can_migrate: bool) -> Mdp:
    """States: down -> (up | down); migration rescues the *services* even
    if the device stays down (modeled as a degraded-but-acceptable state)."""
    model.validate()
    mdp = Mdp("device-repair", discount=0.9)
    for state in ("down", "up", "services-rescued"):
        mdp.add_state(state)
    mdp.add_action("down", "reboot", [
        Transition(model.reboot_success, "up",
                   model.healthy_reward - model.reboot_cost),
        Transition(1.0 - model.reboot_success, "down", -model.reboot_cost),
    ])
    if can_migrate:
        mdp.add_action("down", "migrate", [
            Transition(model.migrate_success, "services-rescued",
                       0.6 * model.healthy_reward - model.migrate_cost),
            Transition(1.0 - model.migrate_success, "down",
                       -model.migrate_cost),
        ])
    mdp.add_action("down", "wait", [
        Transition(1.0, "down", -model.wait_cost),
    ])
    return mdp


class MdpPlanner(Planner):
    """Chooses each issue's countermeasure from the repair MDP's policy.

    Per-(device, service) success estimates adapt with executor feedback:
    a failed restart lowers the believed restart success probability
    (simple Beta-like update), so the policy naturally escalates to
    migration once restarts look hopeless -- the rule ladder *emerges*
    from the model instead of being hard-coded.
    """

    def __init__(self, model: Optional[RepairModel] = None) -> None:
        self.model = model or RepairModel()
        self.model.validate()
        # (target|service) -> (successes+1, failures+1) pseudo-counts.
        self._restart_counts: Dict[str, List[int]] = {}
        self.decisions: List[str] = []

    # -- planning ---------------------------------------------------------------#
    def plan(self, issues: List[Issue], knowledge: KnowledgeBase, now: float) -> Plan:
        plan = Plan()
        for issue in issues:
            action = self._plan_issue(issue, knowledge)
            if action is not None:
                plan.actions.append(action)
                plan.addressed.append(issue)
        return plan

    def _plan_issue(self, issue: Issue, knowledge: KnowledgeBase) -> Optional[Action]:
        destination = self._pick_host(knowledge, exclude=issue.subject)
        can_migrate = destination is not None
        if issue.kind == "service-failed":
            model = self._believed_model(issue)
            mdp = build_service_repair_mdp(model, can_migrate)
            _values, policy = mdp.value_iteration()
            choice = policy["failed"]
            self.decisions.append(f"{issue.subject}:{choice}")
            if choice == "restart":
                return RestartServiceAction(target=issue.subject,
                                            service=issue.service)
            if choice == "migrate":
                return MigrateServiceAction(target=issue.subject,
                                            service=issue.service,
                                            destination=destination)
            return None
        if issue.kind == "device-down":
            mdp = build_device_repair_mdp(self.model, can_migrate=False)
            _values, policy = mdp.value_iteration()
            choice = policy["down"]
            self.decisions.append(f"{issue.subject}:{choice}")
            if choice == "reboot":
                return RebootDeviceAction(target=issue.subject)
            return None
        return None

    # -- belief updates ------------------------------------------------------- #
    def record_outcome(self, action: Action, success: bool) -> None:
        if isinstance(action, RestartServiceAction):
            key = f"{action.target}|{action.service}"
            counts = self._restart_counts.setdefault(key, [1, 1])
            counts[0 if success else 1] += 1

    def _believed_model(self, issue: Issue) -> RepairModel:
        key = f"{issue.subject}|{issue.service}"
        counts = self._restart_counts.get(key)
        if counts is None:
            return self.model
        successes, failures = counts
        believed = successes / (successes + failures)
        return RepairModel(
            restart_success=believed,
            migrate_success=self.model.migrate_success,
            reboot_success=self.model.reboot_success,
            restart_cost=self.model.restart_cost,
            migrate_cost=self.model.migrate_cost,
            reboot_cost=self.model.reboot_cost,
            wait_cost=self.model.wait_cost,
            healthy_reward=self.model.healthy_reward,
        )

    def _pick_host(self, knowledge: KnowledgeBase, exclude: str) -> Optional[str]:
        best, best_load = None, float("inf")
        for snapshot in knowledge.snapshots():
            if snapshot.device_id == exclude or not snapshot.up:
                continue
            load = len(snapshot.running_services)
            if load < best_load:
                best, best_load = snapshot.device_id, load
        return best

"""Decentralized MAPE coordination patterns.

§V.A: "Information sharing patterns where each entity self-adapts locally
by implementing its own MAPE-K loop -- using information from other
entities in the system -- is a characteristic self-adaptive view."  This
module implements two of the classic decentralized-MAPE patterns (Weyns
et al.'s catalogue) on top of :class:`~repro.adaptation.mape.MapeLoop`:

* :class:`InformationSharing` -- each loop publishes digests of its
  knowledge into a gossip overlay and imports peers' digests for devices
  it cannot currently observe itself.  A loop that goes blind (partition)
  keeps a usable, attributed view of the world -- and, crucially, a peer
  whose *executor* can still reach an ailing device can repair it even
  though the device's own manager is gone.
* :class:`RegionalPlanning` -- local monitors+analyzers, one elected
  regional planner: issue digests flow up, plans flow back down to local
  executors.  (The election uses the bully protocol; the region re-plans
  through leader loss.)
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.adaptation.knowledge import DeviceSnapshot, Issue
from repro.adaptation.mape import MapeLoop
from repro.coordination.election import BullyElection
from repro.coordination.gossip import GossipNode
from repro.simulation.kernel import Simulator


def _encode_snapshot(snapshot: DeviceSnapshot) -> dict:
    return {
        "device_id": snapshot.device_id,
        "observed_at": snapshot.observed_at,
        "up": snapshot.up,
        "battery_fraction": snapshot.battery_fraction,
        "running": sorted(snapshot.running_services),
        "failed": sorted(snapshot.failed_services),
        "location": snapshot.location,
        "domain": snapshot.domain,
    }


def _decode_snapshot(data: dict) -> DeviceSnapshot:
    return DeviceSnapshot(
        device_id=data["device_id"],
        observed_at=data["observed_at"],
        up=data["up"],
        battery_fraction=data["battery_fraction"],
        running_services=frozenset(data["running"]),
        failed_services=frozenset(data["failed"]),
        location=data.get("location", ""),
        domain=data.get("domain", ""),
    )


class InformationSharing:
    """Knowledge exchange among peer MAPE loops via gossip.

    Each participating loop's host runs a :class:`GossipNode`; the pattern
    periodically publishes the loop's fresh snapshots and imports peers'
    snapshots that are *newer* than what the local knowledge base holds.
    Optionally (``adopt_orphans``), a loop extends its scope to devices it
    learns about whose snapshots have gone stale everywhere -- peer
    takeover, the decentralization payoff.
    """

    def __init__(
        self,
        sim: Simulator,
        loop: MapeLoop,
        gossip: GossipNode,
        share_period: float = 1.0,
        adopt_orphans: bool = False,
        orphan_staleness: float = 5.0,
    ) -> None:
        self.sim = sim
        self.loop = loop
        self.gossip = gossip
        self.share_period = share_period
        self.adopt_orphans = adopt_orphans
        self.orphan_staleness = orphan_staleness
        self.shared = 0
        self.imported = 0
        self.adopted: List[str] = []
        self._running = False

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self.gossip.start()
        self._tick(self.sim)

    def stop(self) -> None:
        self._running = False

    def _tick(self, sim: Simulator) -> None:
        if not self._running:
            return
        if self.loop.network.node_up(self.loop.host):
            self._publish()
            self._import(sim.now)
        sim.schedule(self.share_period, self._tick,
                     label=f"share:{self.loop.host}")

    # -- publish ------------------------------------------------------------ #
    def _publish(self) -> None:
        for snapshot in self.loop.knowledge.snapshots():
            key = f"obs/{snapshot.device_id}"
            existing = self.gossip.get(key)
            if existing is None or existing["observed_at"] < snapshot.observed_at:
                self.gossip.set(key, _encode_snapshot(snapshot))
                self.shared += 1

    # -- import --------------------------------------------------------------- #
    def _import(self, now: float) -> None:
        for key in self.gossip.keys:
            if not key.startswith("obs/"):
                continue
            data = self.gossip.get(key)
            if not isinstance(data, dict):
                continue
            snapshot = _decode_snapshot(data)
            device_id = snapshot.device_id
            local = self.loop.knowledge.snapshot(device_id)
            in_scope = device_id in self.loop.scope
            if in_scope:
                # Secondhand knowledge fills gaps when our own is older.
                if local is None or local.observed_at < snapshot.observed_at:
                    self.loop.knowledge.observe(snapshot)
                    self.imported += 1
            elif self.adopt_orphans:
                self._maybe_adopt(device_id, snapshot, now)

    def _maybe_adopt(self, device_id: str, snapshot: DeviceSnapshot,
                     now: float) -> None:
        # Adopt a device whose published observation has gone stale: its
        # own manager is presumably blind or dead, and we can reach it.
        if device_id == self.loop.host or device_id in self.loop.scope:
            return
        if now - snapshot.observed_at < self.orphan_staleness:
            return
        if not self.loop.network.topology.reachable(self.loop.host, device_id):
            return
        self.loop.scope.append(device_id)
        self.loop.knowledge.scope.append(device_id)
        self.loop.knowledge.observe(snapshot)
        self.adopted.append(device_id)


class RegionalPlanning:
    """Local M+A, elected regional P, local E.

    Every site loop runs normally but with planning *disabled* (an empty
    planner); analyzers' open issues are published into gossip.  The
    bully-elected regional planner collects all sites' issues, runs the
    real planner over the merged view, and routes each action to the loop
    whose scope contains the target (that loop's executor applies it).
    """

    def __init__(
        self,
        sim: Simulator,
        loops: Dict[str, MapeLoop],
        gossips: Dict[str, GossipNode],
        planner,
        period: float = 1.0,
    ) -> None:
        hosts = sorted(loops)
        if set(loops) != set(gossips):
            raise ValueError("loops and gossips must cover the same hosts")
        self.sim = sim
        self.loops = loops
        self.gossips = gossips
        self.planner = planner
        self.period = period
        self.elections = {
            host: BullyElection(sim, loops[host].network, host, hosts)
            for host in hosts
        }
        self.plans_made = 0
        self.actions_routed = 0
        self._running = False

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        for gossip in self.gossips.values():
            gossip.start()
        first = sorted(self.loops)[0]
        self.elections[first].start_election()
        self._tick(self.sim)

    def _tick(self, sim: Simulator) -> None:
        if not self._running:
            return
        self._publish_issues()
        leader = self._current_leader()
        if leader is not None:
            self._plan_regionally(leader, sim.now)
        sim.schedule(self.period, self._tick, label="regional-planning")

    def _publish_issues(self) -> None:
        for host, loop in self.loops.items():
            if not loop.network.node_up(host):
                continue
            issues = [
                {"kind": i.kind, "subject": i.subject, "severity": i.severity,
                 "service": i.service, "detected_at": i.detected_at}
                for i in loop.knowledge.open_issues()
            ]
            self.gossips[host].set(f"issues/{host}", issues)

    def _current_leader(self) -> Optional[str]:
        alive = [h for h, loop in self.loops.items()
                 if loop.network.node_up(h)]
        if not alive:
            return None
        # Bully semantics (highest live id); the election protocol keeps
        # the `leader` fields converging to the same answer.
        return max(alive)

    def _plan_regionally(self, leader: str, now: float) -> None:
        gossip = self.gossips[leader]
        merged: List[Issue] = []
        for key in gossip.keys:
            if not key.startswith("issues/"):
                continue
            for data in gossip.get(key) or ():
                merged.append(Issue(
                    kind=data["kind"], subject=data["subject"],
                    detected_at=data["detected_at"],
                    severity=data["severity"], service=data["service"],
                ))
        if not merged:
            return
        # Plan over the leader's knowledge (it imports via gossip too when
        # combined with InformationSharing; standalone it still plans for
        # its own scope plus routed subjects).
        plan = self.planner.plan(merged, self.loops[leader].knowledge, now)
        if plan.empty:
            return
        self.plans_made += 1
        for action in plan.actions:
            executor_loop = self._loop_for(action.target)
            if executor_loop is None:
                continue
            results = executor_loop.executor.execute([action])
            self.actions_routed += 1
            if results[0].success:
                executor_loop.knowledge.close_matching(
                    "service-failed", action.target,
                    getattr(action, "service", None))

    def _loop_for(self, device_id: str) -> Optional[MapeLoop]:
        for host, loop in self.loops.items():
            if device_id in loop.scope and loop.network.node_up(host):
                return loop
        return None

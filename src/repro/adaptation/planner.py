"""The P in MAPE-K: planners turn issues into action plans.

The default :class:`RuleBasedPlanner` encodes the countermeasure ladder of
the self-healing literature: restart in place, then migrate, then reboot;
a :class:`Plan` is the ordered action list for one loop iteration.
Planning consults the knowledge base only -- "planning may be required to
be performed in a distributed fashion" (§V.B) is realized by running one
planner per edge loop over its local scope.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.adaptation.actions import (
    Action,
    EvictMemberAction,
    MigrateServiceAction,
    QuarantineAction,
    RebootDeviceAction,
    RerouteTrafficAction,
    RestartServiceAction,
    RotateKeysAction,
    ShedLoadAction,
)
from repro.adaptation.knowledge import Issue, KnowledgeBase


@dataclass
class Plan:
    """An ordered list of actions addressing a set of issues."""

    actions: List[Action] = field(default_factory=list)
    addressed: List[Issue] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.actions)

    @property
    def empty(self) -> bool:
        return not self.actions


class Planner:
    """Interface: build a plan for the open issues."""

    def plan(self, issues: List[Issue], knowledge: KnowledgeBase, now: float) -> Plan:
        raise NotImplementedError


class RuleBasedPlanner(Planner):
    """Countermeasure rules per issue kind.

    * ``service-failed`` -> restart in place; after ``max_restarts``
      failed attempts on the same (device, service), migrate to the best
      alternative host in scope (most recently observed up, fewest
      services);
    * ``device-down`` -> reboot, and migrate its known services away;
    * ``battery-low`` -> migrate services off the device pre-emptively;
    * ``knowledge-stale`` -> no actuation (acting on stale knowledge
      violates the "accordance with constraints" principle) -- the issue
      stays open as a visibility alarm.
    """

    def __init__(self, max_restarts: int = 2,
                 candidate_hosts: Optional[Callable[[KnowledgeBase], List[str]]] = None) -> None:
        self.max_restarts = max_restarts
        self._restart_attempts: Dict[str, int] = {}
        self._candidate_hosts = candidate_hosts

    def plan(self, issues: List[Issue], knowledge: KnowledgeBase, now: float) -> Plan:
        plan = Plan()
        for issue in issues:
            actions = self._plan_issue(issue, knowledge)
            if actions:
                plan.actions.extend(actions)
                plan.addressed.append(issue)
        return plan

    def record_outcome(self, action: Action, success: bool) -> None:
        """Executor feedback: track restart attempts for escalation."""
        if isinstance(action, RestartServiceAction):
            key = f"{action.target}|{action.service}"
            if success:
                self._restart_attempts.pop(key, None)
            else:
                self._restart_attempts[key] = self._restart_attempts.get(key, 0) + 1

    # -- rules ----------------------------------------------------------------- #
    def _plan_issue(self, issue: Issue, knowledge: KnowledgeBase) -> List[Action]:
        if issue.kind == "service-failed":
            return self._service_repair(issue, knowledge)
        if issue.kind == "slo-breach":
            # Alert-driven adaptation: an SLO breach with a named service
            # enters the restart/migrate ladder; a device-scoped breach
            # reboots the subject (its availability budget is burning).
            if issue.service:
                return self._service_repair(issue, knowledge)
            if issue.subject:
                return [RebootDeviceAction(target=issue.subject)]
            return []
        if issue.kind == "device-down":
            actions: List[Action] = [RebootDeviceAction(target=issue.subject)]
            snapshot = knowledge.snapshot(issue.subject)
            destination = self._pick_host(knowledge, exclude=issue.subject)
            if snapshot is not None and destination is not None:
                for service in sorted(snapshot.running_services | snapshot.failed_services):
                    actions.append(MigrateServiceAction(
                        target=issue.subject, service=service, destination=destination))
            return actions
        if issue.kind == "battery-low":
            snapshot = knowledge.snapshot(issue.subject)
            destination = self._pick_host(knowledge, exclude=issue.subject)
            if snapshot is None or destination is None:
                return []
            return [
                MigrateServiceAction(target=issue.subject, service=service,
                                     destination=destination)
                for service in sorted(snapshot.running_services)
            ]
        if issue.kind == "overload":
            # Sustained backpressure from a traffic server: offload to a
            # configured elastic target when one is known (the edge->cloud
            # elasticity of §IV), otherwise shed load in place so admitted
            # requests still meet their deadlines.
            offload = knowledge.facts.get("offload_target")
            if offload and offload != issue.subject:
                return [RerouteTrafficAction(target=issue.subject,
                                             destination=str(offload))]
            return [ShedLoadAction(target=issue.subject)]
        if issue.kind == "compromised-node":
            # Intrusion response ladder, all three rungs at once: cut the
            # node off at the transport, purge it from coordination
            # memberships, and invalidate any keys it may have exfiltrated.
            return [QuarantineAction(target=issue.subject),
                    EvictMemberAction(target=issue.subject),
                    RotateKeysAction(target=issue.subject)]
        if issue.kind == "knowledge-stale":
            return []
        return []

    def _service_repair(self, issue: Issue, knowledge: KnowledgeBase) -> List[Action]:
        """Restart in place; escalate to migration after repeated failures."""
        key = f"{issue.subject}|{issue.service}"
        if self._restart_attempts.get(key, 0) < self.max_restarts:
            return [RestartServiceAction(target=issue.subject, service=issue.service)]
        destination = self._pick_host(knowledge, exclude=issue.subject)
        if destination is None:
            return [RestartServiceAction(target=issue.subject, service=issue.service)]
        return [MigrateServiceAction(target=issue.subject, service=issue.service,
                                     destination=destination)]

    def _pick_host(self, knowledge: KnowledgeBase, exclude: str) -> Optional[str]:
        if self._candidate_hosts is not None:
            candidates = [c for c in self._candidate_hosts(knowledge) if c != exclude]
            return candidates[0] if candidates else None
        best: Optional[str] = None
        best_load = float("inf")
        for snapshot in knowledge.snapshots():
            if snapshot.device_id == exclude or not snapshot.up:
                continue
            load = len(snapshot.running_services)
            if load < best_load:
                best, best_load = snapshot.device_id, load
        return best

"""Uncertainty taxonomy and confidence-weighted knowledge.

§V.A: "one taxonomy classifies types of uncertainties by the place where
they manifest, their uncertainty level, and their nature -- i.e., whether
the uncertainty is because of imperfect knowledge or variability."
(Perez-Palacin & Mirandola / Weyns et al.'s classification.)  This module
provides:

* the taxonomy itself (:class:`Uncertainty`, :class:`UncertaintySource`,
  :class:`UncertaintyNature`, :class:`UncertaintyLevel`) with a registry
  that adaptation components annotate;
* :class:`KnowledgeConfidence` -- operationalized epistemic uncertainty:
  a per-device confidence in [0, 1] that decays with observation age and
  collapses for secondhand observations, used to *gate actuation* ("acting
  under low confidence violates the accordance-with-constraints principle",
  §VII.B);
* :class:`ConfidenceGatedPlanner` -- wraps any planner, dropping actions
  whose target the loop is not confident about.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Dict, List

from repro.adaptation.knowledge import Issue, KnowledgeBase
from repro.adaptation.planner import Plan, Planner


class UncertaintySource(enum.Enum):
    """Where the uncertainty manifests (the 'place' dimension)."""

    ENVIRONMENT = "environment"        # sensing noise, human activity
    MODEL = "model"                    # abstraction gaps in the runtime model
    ADAPTATION = "adaptation"          # effects of adaptation actions
    GOALS = "goals"                    # requirements change / conflict


class UncertaintyNature(enum.Enum):
    """Why it exists."""

    EPISTEMIC = "epistemic"            # imperfect knowledge: reducible
    VARIABILITY = "variability"        # inherent randomness: irreducible


class UncertaintyLevel(enum.IntEnum):
    """Orders of ignorance (condensed)."""

    KNOWN_PARAMETERS = 1       # known model, uncertain parameter values
    KNOWN_ALTERNATIVES = 2     # a known set of possible behaviours
    UNKNOWN_OUTCOMES = 3       # outcomes outside any anticipated set


@dataclass(frozen=True)
class Uncertainty:
    """A classified uncertainty affecting the managed system."""

    name: str
    source: UncertaintySource
    nature: UncertaintyNature
    level: UncertaintyLevel
    description: str = ""


class UncertaintyRegistry:
    """The system's catalogue of acknowledged uncertainties."""

    def __init__(self) -> None:
        self._items: Dict[str, Uncertainty] = {}

    def register(self, uncertainty: Uncertainty) -> Uncertainty:
        if uncertainty.name in self._items:
            raise ValueError(f"uncertainty {uncertainty.name!r} already registered")
        self._items[uncertainty.name] = uncertainty
        return uncertainty

    def get(self, name: str) -> Uncertainty:
        return self._items[name]

    def by_source(self, source: UncertaintySource) -> List[Uncertainty]:
        return sorted((u for u in self._items.values() if u.source == source),
                      key=lambda u: u.name)

    def by_nature(self, nature: UncertaintyNature) -> List[Uncertainty]:
        return sorted((u for u in self._items.values() if u.nature == nature),
                      key=lambda u: u.name)

    def reducible(self) -> List[Uncertainty]:
        """Epistemic uncertainties: candidates for more monitoring."""
        return self.by_nature(UncertaintyNature.EPISTEMIC)

    def __len__(self) -> int:
        return len(self._items)

    @property
    def names(self) -> List[str]:
        return sorted(self._items)


#: The default uncertainties every IoT deployment of this library carries
#: (the paper's running concerns, classified).
DEFAULT_UNCERTAINTIES: List[Uncertainty] = [
    Uncertainty("sensing-noise", UncertaintySource.ENVIRONMENT,
                UncertaintyNature.VARIABILITY, UncertaintyLevel.KNOWN_PARAMETERS,
                "sensor readings carry stochastic noise"),
    Uncertainty("connectivity", UncertaintySource.ENVIRONMENT,
                UncertaintyNature.VARIABILITY, UncertaintyLevel.KNOWN_ALTERNATIVES,
                "links drop, partition and recover unpredictably"),
    Uncertainty("stale-knowledge", UncertaintySource.MODEL,
                UncertaintyNature.EPISTEMIC, UncertaintyLevel.KNOWN_PARAMETERS,
                "the runtime model lags the system by the observation age"),
    Uncertainty("action-outcome", UncertaintySource.ADAPTATION,
                UncertaintyNature.VARIABILITY, UncertaintyLevel.KNOWN_ALTERNATIVES,
                "reboots and migrations may fail"),
    Uncertainty("emergent-behaviour", UncertaintySource.GOALS,
                UncertaintyNature.EPISTEMIC, UncertaintyLevel.UNKNOWN_OUTCOMES,
                "unforeseen behaviours may violate requirements (SVII)"),
]


def default_registry() -> UncertaintyRegistry:
    registry = UncertaintyRegistry()
    for uncertainty in DEFAULT_UNCERTAINTIES:
        registry.register(uncertainty)
    return registry


# --------------------------------------------------------------------------- #
# Operationalized epistemic uncertainty: knowledge confidence
# --------------------------------------------------------------------------- #
class KnowledgeConfidence:
    """Confidence in the knowledge base's view of each device.

    Confidence decays exponentially with observation age
    (``exp(-age / half_life * ln 2)``), so a device observed one half-life
    ago is trusted at 0.5.  Unobserved devices have confidence 0.
    """

    def __init__(self, half_life: float = 5.0) -> None:
        if half_life <= 0:
            raise ValueError("half_life must be positive")
        self.half_life = half_life

    def of(self, knowledge: KnowledgeBase, device_id: str, now: float) -> float:
        age = knowledge.age_of(device_id, now)
        if age is None:
            return 0.0
        return math.exp(-age / self.half_life * math.log(2.0))

    def mean(self, knowledge: KnowledgeBase, now: float) -> float:
        if not knowledge.scope:
            return 1.0
        return sum(self.of(knowledge, d, now) for d in knowledge.scope) \
            / len(knowledge.scope)


class ConfidenceGatedPlanner(Planner):
    """Wraps a planner; drops actions on low-confidence targets.

    The gate implements §VII.B's constraint that countermeasures must be
    actuated "in accordance to constraints imposed by the application
    domain": an action planned from badly stale knowledge is worse than
    no action (it may fight a state that no longer exists).
    """

    def __init__(self, inner: Planner, confidence: KnowledgeConfidence,
                 threshold: float = 0.5) -> None:
        if not 0.0 <= threshold <= 1.0:
            raise ValueError("threshold must be in [0, 1]")
        self.inner = inner
        self.confidence = confidence
        self.threshold = threshold
        self.gated_actions = 0

    def plan(self, issues: List[Issue], knowledge: KnowledgeBase, now: float) -> Plan:
        plan = self.inner.plan(issues, knowledge, now)
        kept = []
        for action in plan.actions:
            if self.confidence.of(knowledge, action.target, now) >= self.threshold:
                kept.append(action)
            else:
                self.gated_actions += 1
        return Plan(actions=kept, addressed=plan.addressed)

    def record_outcome(self, action, success: bool) -> None:
        """Delegate executor feedback when the inner planner tracks it."""
        record = getattr(self.inner, "record_outcome", None)
        if record is not None:
            record(action, success)

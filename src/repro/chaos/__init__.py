"""Chaos plane: declarative specs, seeded search, shrinking, corpus.

The subsystem that makes resilience claims searchable instead of
anecdotal (ROADMAP "declarative scenario language + chaos-search
campaigns"; paper SSV-SSVI):

- :mod:`repro.chaos.spec` -- :class:`ChaosSpec`, one frozen value per
  point of the topology x workload x traffic x fault x adversary x
  maturity cross-product, with exact dict/JSON round-trip.
- :mod:`repro.chaos.compiler` -- :class:`ScenarioCompiler` wires a spec
  onto the existing plane builders (registered as persistence scenario
  ``"chaos"``, so checkpoint/resume/replay work unchanged).
- :mod:`repro.chaos.campaign` -- :class:`ChaosCampaign`, a seeded
  SplitMix64 sweep judging each run against the SLO monitor and the
  resilience gates.
- :mod:`repro.chaos.shrink` -- greedy deterministic single-axis
  minimization of failing specs.
- :mod:`repro.chaos.corpus` -- replay-verified failure bundles under
  ``corpus/``, regression scenarios forever.
"""

from repro.chaos.campaign import (
    CampaignFinding,
    CampaignResult,
    CaseResult,
    ChaosCampaign,
    SpecSampler,
    judge_case,
    run_case,
)
from repro.chaos.compiler import CompileError, ScenarioCompiler, compile_spec
from repro.chaos.corpus import (
    BundleVerdict,
    corpus_bundles,
    emit_bundle,
    load_bundle_spec,
    persistence_spec,
    replay_bundle,
    replay_corpus,
)
from repro.chaos.shrink import ShrinkReport, shrink_spec
from repro.chaos.spec import (
    ADVERSARIES,
    AdversaryAxis,
    ChaosSpec,
    FAULT_KINDS,
    FaultEvent,
    MATURITY_LEVELS,
    SplitMix64,
    TRAFFIC_PATTERNS,
    TopologyAxis,
    TrafficAxis,
    WORKLOADS,
)

__all__ = [
    "ADVERSARIES",
    "AdversaryAxis",
    "BundleVerdict",
    "CampaignFinding",
    "CampaignResult",
    "CaseResult",
    "ChaosCampaign",
    "ChaosSpec",
    "CompileError",
    "FAULT_KINDS",
    "FaultEvent",
    "MATURITY_LEVELS",
    "ScenarioCompiler",
    "ShrinkReport",
    "SpecSampler",
    "SplitMix64",
    "TRAFFIC_PATTERNS",
    "TopologyAxis",
    "TrafficAxis",
    "WORKLOADS",
    "compile_spec",
    "corpus_bundles",
    "emit_bundle",
    "judge_case",
    "load_bundle_spec",
    "persistence_spec",
    "replay_bundle",
    "replay_corpus",
    "run_case",
    "shrink_spec",
]

"""Seeded chaos-search campaigns over the spec space.

A campaign is a deterministic function of its seed: :class:`SpecSampler`
derives every sampled :class:`~repro.chaos.spec.ChaosSpec` from
SplitMix64 streams keyed on ``(campaign_seed, case_index)``, each case
runs under the compiled SLO monitor plus the post-run resilience gates,
and any violation is greedily shrunk
(:mod:`repro.chaos.shrink`) before landing in the replay corpus
(:mod:`repro.chaos.corpus`).  No ``random`` global state anywhere: the
same seed names the same campaign -- same specs, same violations, same
shrunk minima -- on every machine.

Violation detection is **read-only**: the monitor is wired by the
compiler (part of the spec), and the gates only read recorded metrics
and final protocol state after the run, so a case driven by a campaign
journals and digests identically to the same spec run by
``run_scenario`` -- the property that makes corpus bundles replayable.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.chaos.compiler import (
    EDGE_CAPACITY,
    ScenarioCompiler,
)
from repro.chaos.spec import (
    AdversaryAxis,
    ChaosSpec,
    FaultEvent,
    SplitMix64,
    TopologyAxis,
    TrafficAxis,
)
from repro.persistence.scenarios import PreparedRun

#: Post-heal grace before goodput is measured: breaker re-close plus
#: queue drain time (mirrors the retry-storm scenario's window).
RECOVERY_GRACE = 3.0

#: The recovered-goodput bar: the system must sustain at least this
#: fraction of min(offered, capacity) once every fault has healed.
RECOVERY_FRACTION = 0.8


# --------------------------------------------------------------------------- #
# Sampling
# --------------------------------------------------------------------------- #
class SpecSampler:
    """Deterministic ``(campaign_seed, index) -> ChaosSpec`` sampling.

    The draw order inside :meth:`sample` is part of the campaign's
    determinism contract: reordering draws changes every campaign, so
    new axes must be appended (drawing from a ``split()`` child stream)
    rather than inserted.
    """

    def __init__(self, seed: int, horizon: float = 30.0) -> None:
        self.seed = seed
        self.horizon = horizon

    def sample(self, index: int) -> ChaosSpec:
        rng = SplitMix64(SplitMix64(self.seed).next_u64() ^
                         SplitMix64(index + 1).next_u64())
        workload = rng.choice(("none", "none", "none",
                               "smart-city", "energy", "mobility"))
        topology = TopologyAxis(sites=rng.randint(2, 4),
                                devices_per_site=rng.randint(1, 2))
        traffic = self._sample_traffic(rng)
        faults = self._sample_faults(rng, topology)
        adversary = self._sample_adversary(rng)
        maturity = rng.randint(1, 4)
        return ChaosSpec(
            workload=workload, topology=topology, traffic=traffic,
            faults=faults, adversary=adversary, maturity=maturity,
            horizon=self.horizon, seed=rng.randint(1, 1 << 30),
        )

    def _sample_traffic(self, rng: SplitMix64) -> TrafficAxis:
        pattern = rng.choice(("none", "steady", "overload",
                              "retry-storm", "retry-storm"))
        if pattern == "none":
            return TrafficAxis()
        if pattern == "steady":
            users = rng.randint(1000, 2500)
        elif pattern == "overload":
            users = rng.randint(6500, 9000)       # 260-360/s vs 200/s
        else:
            users = rng.randint(3000, 4000)       # 120-160/s vs 200/s
        return TrafficAxis(pattern=pattern, users=users, rate_per_user=0.04)

    def _sample_faults(self, rng: SplitMix64,
                       topology: TopologyAxis) -> Tuple[FaultEvent, ...]:
        count = rng.choice((0, 1, 1, 2))
        faults: List[FaultEvent] = []
        for _ in range(count):
            kind = rng.choice(("crash", "crash", "partition",
                               "latency", "link"))
            at = round(rng.uniform(4.0, 0.4 * self.horizon), 2)
            duration = round(rng.uniform(3.0, 8.0), 2)
            edge = f"edge{rng.randint(0, topology.sites - 1)}"
            if kind in ("latency", "link"):
                # Every edge has a link to the cloud in the landscape.
                target = f"{edge}:cloud"
            else:
                target = edge
            faults.append(FaultEvent(kind=kind, at=at, duration=duration,
                                     target=target))
        return tuple(faults)

    def _sample_adversary(self, rng: SplitMix64) -> AdversaryAxis:
        attack = rng.choice(("none", "none", "none",
                             "flood", "sybil-flood"))
        if attack == "none":
            return AdversaryAxis()
        return AdversaryAxis(attack=attack,
                             at=round(rng.uniform(3.0, 8.0), 2),
                             rate=round(rng.uniform(400.0, 800.0), 1))


# --------------------------------------------------------------------------- #
# Case evaluation
# --------------------------------------------------------------------------- #
@dataclass
class CaseResult:
    """One spec's verdict: SLO breaches + gate failures + identity."""

    spec: ChaosSpec
    violations: Tuple[str, ...]
    gates: Dict[str, Any]
    digest: str
    events: int
    wall_s: float

    @property
    def violated(self) -> bool:
        return bool(self.violations)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "spec": self.spec.to_dict(),
            "describe": self.spec.describe(),
            "spec_digest": self.spec.digest(),
            "violations": list(self.violations),
            "gates": dict(self.gates),
            "digest": self.digest,
            "events": self.events,
            "wall_s": self.wall_s,
        }


def run_case(spec: ChaosSpec,
             compiler: Optional[ScenarioCompiler] = None) -> CaseResult:
    """Compile, run and judge one spec (no journaling, read-only gates)."""
    from repro.persistence.runner import _drive_to_horizon
    from repro.persistence.snapshot import system_digest

    started = time.perf_counter()
    prepared = (compiler or ScenarioCompiler()).compile(spec)
    _drive_to_horizon(prepared.system, prepared.horizon)
    digest = system_digest(prepared.system)
    violations, gates = judge_case(spec, prepared)
    return CaseResult(spec=spec, violations=tuple(violations), gates=gates,
                      digest=digest, events=prepared.system.sim.fired_count,
                      wall_s=time.perf_counter() - started)


def judge_case(spec: ChaosSpec,
               prepared: PreparedRun) -> Tuple[List[str], Dict[str, Any]]:
    """End-state SLO breaches plus the deterministic resilience gates.

    Everything here *reads* recorded telemetry and final protocol state;
    nothing schedules events, emits traces or bumps counters, so judging
    a finished run never perturbs its journal or digest.
    """
    violations: List[str] = []
    gates: Dict[str, Any] = {}
    monitor = prepared.aux.get("monitor")
    if monitor is not None:
        for status in monitor.breached_now:
            violations.append(f"slo:{status.spec.name}")
            gates[f"slo:{status.spec.name}"] = {
                "measured": status.measured,
                "objective": status.spec.objective,
            }
    recovery = _recovery_gate(spec, prepared)
    if recovery is not None:
        gates["goodput-recovery"] = recovery
        if not recovery["ok"]:
            violations.append("gate:goodput-recovery")
    sybil = _sybil_gate(prepared)
    if sybil is not None:
        gates["sybil-admitted"] = sybil
        if not sybil["ok"]:
            violations.append("gate:sybil-admitted")
    return violations, gates


def _recovery_gate(spec: ChaosSpec,
                   prepared: PreparedRun) -> Optional[Dict[str, Any]]:
    """Post-disruption goodput must recover to >=80% of the sustainable rate."""
    if spec.traffic.pattern == "none":
        return None
    from repro.traffic.client import COMPLETIONS_SERIES
    from repro.traffic.stats import windowed_rate

    heals = [f.at + f.duration for f in spec.faults]
    start = max(heals) + RECOVERY_GRACE if heals else spec.horizon / 2.0
    if start >= spec.horizon - 1.0:
        # The disruption never heals inside the horizon; the end-state
        # SLO is the authority for such specs.
        return None
    recovered = windowed_rate(prepared.system.metrics, COMPLETIONS_SERIES,
                              start, spec.horizon)
    expected = min(spec.traffic.offered_rate, EDGE_CAPACITY)
    floor = RECOVERY_FRACTION * expected
    return {"ok": recovered >= floor, "window": [start, spec.horizon],
            "recovered_goodput": round(recovered, 3),
            "floor": round(floor, 3), "expected": round(expected, 3)}


def _sybil_gate(prepared: PreparedRun) -> Optional[Dict[str, Any]]:
    """No fabricated identity may survive in any honest membership view."""
    members = prepared.aux.get("members")
    attacker = prepared.aux.get("attacker")
    if not members:
        return None
    sybils = sorted({m for edge, protocol in members.items()
                     if edge != attacker
                     for m in protocol.members()
                     if m.startswith("sybil-")})
    return {"ok": not sybils, "sybil_members": sybils,
            "sybil_count": len(sybils)}


# --------------------------------------------------------------------------- #
# Campaign driver
# --------------------------------------------------------------------------- #
@dataclass
class CampaignFinding:
    """One violation: the spec as found, and as shrunk."""

    case: CaseResult
    shrunk: ChaosSpec
    shrunk_violations: Tuple[str, ...]
    shrink_attempts: int
    bundle: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "found": self.case.to_dict(),
            "shrunk_spec": self.shrunk.to_dict(),
            "shrunk_describe": self.shrunk.describe(),
            "shrunk_digest": self.shrunk.digest(),
            "shrunk_violations": list(self.shrunk_violations),
            "shrink_attempts": self.shrink_attempts,
            "bundle": self.bundle,
        }


@dataclass
class CampaignResult:
    seed: int
    cases: List[CaseResult] = field(default_factory=list)
    findings: List[CampaignFinding] = field(default_factory=list)
    wall_s: float = 0.0

    @property
    def violation_count(self) -> int:
        return sum(1 for case in self.cases if case.violated)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "runs": len(self.cases),
            "violations": self.violation_count,
            "cases": [case.to_dict() for case in self.cases],
            "findings": [finding.to_dict() for finding in self.findings],
            "wall_s": self.wall_s,
        }


class ChaosCampaign:
    """Seeded sweep: sample, run, judge, shrink, emit.

    ``corpus_dir=None`` skips bundle emission (pure search);
    ``shrink=False`` keeps found specs as-is.  ``progress`` (if given)
    receives one human line per case.
    """

    def __init__(self, seed: int, runs: int = 6, horizon: float = 30.0,
                 shrink: bool = True, corpus_dir: Optional[str] = None,
                 progress: Optional[Any] = None) -> None:
        if runs <= 0:
            raise ValueError("runs must be positive")
        self.seed = seed
        self.runs = runs
        self.sampler = SpecSampler(seed, horizon=horizon)
        self.shrink = shrink
        self.corpus_dir = corpus_dir
        self.progress = progress

    def _say(self, message: str) -> None:
        if self.progress is not None:
            self.progress(message)

    def run(self) -> CampaignResult:
        from repro.chaos.shrink import shrink_spec

        started = time.perf_counter()
        result = CampaignResult(seed=self.seed)
        for index in range(self.runs):
            spec = self.sampler.sample(index)
            case = run_case(spec)
            result.cases.append(case)
            verdict = (", ".join(case.violations) if case.violated else "ok")
            self._say(f"case {index}: {spec.describe()} -> {verdict}")
            if not case.violated:
                continue
            shrunk, shrunk_violations, attempts = spec, case.violations, 0
            if self.shrink:
                report = shrink_spec(spec)
                shrunk = report.spec
                shrunk_violations = report.violations
                attempts = report.attempts
                self._say(f"  shrunk {spec.axis_count()} -> "
                          f"{shrunk.axis_count()} axes in {attempts} "
                          f"attempts: {shrunk.describe()}")
            finding = CampaignFinding(case=case, shrunk=shrunk,
                                      shrunk_violations=shrunk_violations,
                                      shrink_attempts=attempts)
            if self.corpus_dir is not None:
                from repro.chaos.corpus import emit_bundle

                finding.bundle = emit_bundle(
                    shrunk, self.corpus_dir,
                    violations=shrunk_violations,
                    campaign_seed=self.seed, case_index=index)
                self._say(f"  corpus bundle: {finding.bundle}")
            result.findings.append(finding)
        result.wall_s = time.perf_counter() - started
        return result

"""Compile a :class:`~repro.chaos.spec.ChaosSpec` onto the plane builders.

The compiler is the bridge between the declarative cross-product and the
imperative wiring the per-plane scenarios do by hand: one
:meth:`ScenarioCompiler.compile` call builds the workload's landscape,
attaches the traffic plane, schedules the fault and adversary timeline,
applies the maturity level's defense stack and wires the SLO monitor --
returning the same :class:`~repro.persistence.scenarios.PreparedRun`
shape every registered scenario returns, so journaling, checkpointing,
deterministic replay and flight-recorder capture all work unchanged.

Maturity levels map onto cumulative defense wiring (paper SSIV):

==== ==============================================================
ML1  naive: no countermeasures at all
ML2  + bounded admission (``QueueLengthAdmission``) at the edge
ML3  + retry budget, circuit breaker, backpressure MAPE loop with a
     cloud offload target
ML4  + security defenses when an adversary is present: authenticated
     transport, trust scoring, flood sentry, membership identity
     filter, intrusion-response MAPE loop
==== ==============================================================

The SLO monitor is part of the *spec*, not of the campaign that happens
to run it: it is always wired, so a spec found failing by a campaign and
the same spec replayed from a corpus bundle produce bit-identical event
streams.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.chaos.spec import ChaosSpec
from repro.core.system import IoTSystem
from repro.faults.models import (
    CrashRecoveryFault,
    Fault,
    LatencySpikeFault,
    LinkFailureFault,
    NodeCompromiseFault,
    PartitionFault,
)
from repro.persistence.scenarios import PreparedRun

#: Edge serving capacity mirrors the canonical traffic scenarios:
#: 4 slots x 50 req/s = 200 req/s.
EDGE_CONCURRENCY = 4
EDGE_QUEUE = 64
SERVICE_MEAN = 0.02
CLIENT_TIMEOUT = 0.25
EDGE_CAPACITY = EDGE_CONCURRENCY / SERVICE_MEAN

#: SLO evaluation period (sim seconds) and goodput objective window.
SLO_PERIOD = 2.0
GOODPUT_WINDOW = 8.0

#: End-state goodput objective: half of what the system should sustain.
#: Transient dips during an outage do not breach the *latest* evaluation;
#: a metastable collapse that outlives its cause does.
GOODPUT_OBJECTIVE_FRACTION = 0.5


class CompileError(ValueError):
    """A spec that cannot be wired onto the landscape it describes."""


class ScenarioCompiler:
    """Stateless spec -> :class:`PreparedRun` compiler."""

    def compile(self, spec: ChaosSpec) -> PreparedRun:
        spec.validate()
        system, workload = self._build_landscape(spec)
        aux: Dict[str, Any] = {"chaos_spec": spec, "workload": workload,
                               "horizon": spec.horizon}
        plane = self._build_security_plane(spec, system, aux)
        self._wire_traffic(spec, system, aux)
        self._wire_membership(spec, system, plane, aux)
        self._wire_defenses(spec, system, plane, aux)
        self._schedule_faults(spec, system)
        self._schedule_adversary(spec, system, aux)
        self._wire_monitor(spec, system, aux)
        return PreparedRun(system=system, horizon=spec.horizon, aux=aux)

    # -- landscape ---------------------------------------------------------- #
    def _build_landscape(self, spec: ChaosSpec) -> tuple:
        topo = spec.topology
        if spec.workload == "smart-city":
            from repro.workloads.smart_city import SmartCityWorkload

            workload = SmartCityWorkload(
                n_districts=topo.sites,
                sensors_per_district=topo.devices_per_site, seed=spec.seed)
            return workload.system, workload
        if spec.workload == "energy":
            from repro.workloads.energy import EnergyGridWorkload

            workload = EnergyGridWorkload(
                n_feeders=topo.sites,
                meters_per_feeder=topo.devices_per_site, seed=spec.seed)
            return workload.system, workload
        if spec.workload == "mobility":
            from repro.workloads.mobility import MobilityWorkload

            workload = MobilityWorkload(
                n_vehicles=topo.sites * topo.devices_per_site,
                n_sites=topo.sites, seed=spec.seed)
            return workload.system, workload
        system = IoTSystem.with_edge_cloud_landscape(
            topo.sites, topo.devices_per_site, seed=spec.seed)
        return system, None

    # -- security plane ----------------------------------------------------- #
    def _build_security_plane(self, spec: ChaosSpec, system: IoTSystem,
                              aux: Dict[str, Any]):
        if spec.adversary.attack == "none":
            aux["plane"] = None
            return None
        from repro.security.plane import SecurityPlane

        plane = SecurityPlane(system)
        aux["plane"] = plane
        return plane

    # -- traffic ------------------------------------------------------------ #
    def _wire_traffic(self, spec: ChaosSpec, system: IoTSystem,
                      aux: Dict[str, Any]) -> None:
        if spec.traffic.pattern == "none":
            aux["registry"] = None
            return
        from repro.traffic.client import TrafficClient
        from repro.traffic.loadgen import ClientCohort
        from repro.traffic.patterns import (
            CircuitBreaker,
            RetryBudget,
            RetryPolicy,
        )
        from repro.traffic.server import Server, ServiceModel
        from repro.traffic.stats import TrafficRegistry

        registry = TrafficRegistry(system)
        edge = registry.add_server(Server(
            system.sim, system.network, "edge0",
            rng=system.rngs.stream("traffic:server:edge0"),
            concurrency=EDGE_CONCURRENCY, queue_capacity=EDGE_QUEUE,
            service=ServiceModel(mean=SERVICE_MEAN),
            metrics=system.metrics, trace=system.trace,
        ))
        cloud = registry.add_server(Server(
            system.sim, system.network, "cloud",
            rng=system.rngs.stream("traffic:server:cloud"),
            concurrency=32, queue_capacity=512,
            service=ServiceModel(mean=SERVICE_MEAN),
            metrics=system.metrics, trace=system.trace,
        ))
        retry: Optional[RetryPolicy] = None
        if spec.traffic.pattern == "retry-storm":
            # The aggressive policy that makes outages metastable when
            # no budget bounds the amplification (ML < 3).
            retry = RetryPolicy(max_attempts=4, base_delay=0.05,
                                multiplier=2.0, max_delay=1.0, jitter=0.3)
        budget: Optional[RetryBudget] = None
        breaker: Optional[CircuitBreaker] = None
        if spec.maturity >= 3 and retry is not None:
            budget = RetryBudget(ratio=0.1, cap=50.0, initial=10.0)
            breaker = CircuitBreaker(failure_threshold=5, recovery_time=1.0,
                                     half_open_probes=1, success_threshold=3)
        client = registry.add_client(TrafficClient(
            system.sim, system.network, "cohort", "d0.0", "edge0",
            rng=system.rngs.stream("traffic:client"),
            timeout=CLIENT_TIMEOUT, retry=retry, budget=budget,
            breaker=breaker, metrics=system.metrics, trace=system.trace,
        ))
        cohort = registry.add_generator(ClientCohort(
            system.sim, client, users=spec.traffic.users,
            rate_per_user=spec.traffic.rate_per_user,
            rng=system.rngs.stream("traffic:arrivals"),
            stop=spec.horizon,
        ))
        cohort.start()
        aux.update(registry=registry, edge=edge, cloud=cloud,
                   client=client, cohort=cohort)

    # -- membership mesh (the sybil attack's substrate) ---------------------- #
    def _wire_membership(self, spec: ChaosSpec, system: IoTSystem,
                         plane, aux: Dict[str, Any]) -> None:
        if spec.adversary.attack == "none":
            aux["members"] = None
            return
        from repro.coordination.membership import MembershipProtocol

        defended = spec.maturity >= 4
        edges = list(system.edge_nodes)
        members: Dict[str, MembershipProtocol] = {}
        for edge in edges:
            update_filter = None
            evidence = None
            if defended:
                def evidence(subject: str, kind: str, _obs=edge) -> None:
                    plane.trust.record(_obs, subject, kind)

                def update_filter(src: Optional[str], node: str, state: str,
                                  incarnation: int, _obs=edge) -> bool:
                    # Identity gate: only keyed (enrolled) nodes may join.
                    if plane.keychain.known(node):
                        return True
                    if src is not None:
                        plane.trust.record(_obs, src, "sybil-join",
                                           detail=node)
                    return False
            protocol = MembershipProtocol(
                system.sim, system.network, edge,
                [e for e in edges if e != edge],
                system.rngs.stream(f"chaos-swim:{edge}"),
                probe_period=1.0,
                update_filter=update_filter, evidence=evidence,
                max_incarnation_jump=8 if defended else None,
            )
            members[edge] = protocol
            plane.attach_membership(protocol)
        for edge in edges:
            members[edge].start()
        aux["members"] = members

    # -- maturity defenses --------------------------------------------------- #
    def _wire_defenses(self, spec: ChaosSpec, system: IoTSystem,
                       plane, aux: Dict[str, Any]) -> None:
        edge = aux.get("edge")
        if spec.maturity >= 2 and edge is not None:
            from repro.traffic.admission import QueueLengthAdmission

            # 8 entries / 200 req/s = 40ms worst-case wait against the
            # 250ms deadline.
            edge.admission = QueueLengthAdmission(8)
        if spec.maturity >= 3 and edge is not None:
            from repro.adaptation import (
                BackpressureAnalyzer,
                Executor,
                MapeLoop,
                RuleBasedPlanner,
            )

            loop = MapeLoop(
                system.sim, system.network, system.fleet, "edge0", ["d0.0"],
                analyzers=[BackpressureAnalyzer()],
                planner=RuleBasedPlanner(),
                executor=Executor(system.sim, system.network, system.fleet,
                                  "edge0", system.rngs.stream("exec:edge0"),
                                  trace=system.trace),
                period=1.0, metrics=system.metrics, trace=system.trace,
            )
            loop.knowledge.facts["offload_target"] = "cloud"
            edge.attach_backpressure(loop.knowledge)
            loop.start()
            aux["backpressure_loop"] = loop
        if spec.maturity >= 4 and plane is not None:
            from repro.adaptation import (
                Executor,
                IntrusionAnalyzer,
                MapeLoop,
                RuleBasedPlanner,
            )
            from repro.security.trust import FloodSentry

            edges = list(system.edge_nodes)
            plane.enable_auth(edges + ["d0.0"], protected_kinds=("swim.",))
            sentry = FloodSentry(system, plane.trust, observer="edge0",
                                 period=0.5, rate_threshold=300.0,
                                 exempt=["edge0"])
            sentry.start()
            loop = MapeLoop(
                system.sim, system.network, system.fleet, "edge0", edges,
                analyzers=[IntrusionAnalyzer()],
                planner=RuleBasedPlanner(),
                executor=Executor(system.sim, system.network, system.fleet,
                                  "edge0", system.rngs.stream("exec:edge0"),
                                  trace=system.trace),
                period=0.5, metrics=system.metrics, trace=system.trace,
            )
            plane.trust.attach(loop.knowledge)
            loop.start()
            aux["sentry"] = sentry
            aux["intrusion_loop"] = loop

    # -- fault schedule ------------------------------------------------------ #
    def _schedule_faults(self, spec: ChaosSpec, system: IoTSystem) -> None:
        for index, event in enumerate(spec.faults):
            fault = self._build_fault(index, event, system)
            system.injector.inject_at(event.at, fault)

    def _build_fault(self, index: int, event, system: IoTSystem) -> Fault:
        name = f"chaos-{event.kind}-{index}@{event.at:g}"
        if event.kind == "crash":
            self._require_device(event.target, system)
            return CrashRecoveryFault(name=name, device_id=event.target,
                                      duration=event.duration)
        if event.kind == "partition":
            self._require_device(event.target, system)
            return PartitionFault(name=name, isolate_node=event.target,
                                  duration=event.duration)
        node_a, _, node_b = event.target.partition(":")
        if system.topology.link_between(node_a, node_b) is None:
            raise CompileError(
                f"fault {name}: no link {node_a!r}-{node_b!r} in the "
                f"compiled topology")
        if event.kind == "latency":
            return LatencySpikeFault(name=name, node_a=node_a, node_b=node_b,
                                     factor=8.0, duration=event.duration)
        return LinkFailureFault(name=name, node_a=node_a, node_b=node_b,
                                duration=event.duration)

    @staticmethod
    def _require_device(device_id: str, system: IoTSystem) -> None:
        try:
            system.fleet.get(device_id)
        except KeyError:
            raise CompileError(
                f"fault target {device_id!r} not in the compiled fleet "
                f"(devices: cloud, edge0..edge{len(system.sites) - 1}, "
                f"d<site>.<i>)") from None

    # -- adversary ----------------------------------------------------------- #
    def _schedule_adversary(self, spec: ChaosSpec, system: IoTSystem,
                            aux: Dict[str, Any]) -> None:
        if spec.adversary.attack == "none":
            return
        from repro.security.adversary import FloodBehavior, SybilJoinBehavior

        attacker = "edge1"
        behaviors: List[Any] = [
            FloodBehavior(target="edge0", rate=spec.adversary.rate)]
        if spec.adversary.attack == "sybil-flood":
            edges = list(system.edge_nodes)
            targets = [e for e in edges if e != attacker][:2]
            behaviors.append(SybilJoinBehavior(targets=targets))
        system.injector.inject_at(spec.adversary.at, NodeCompromiseFault(
            name=f"compromise:{attacker}", device_id=attacker,
            behaviors=behaviors))
        aux["attacker"] = attacker

    # -- SLO monitor --------------------------------------------------------- #
    def _wire_monitor(self, spec: ChaosSpec, system: IoTSystem,
                      aux: Dict[str, Any]) -> None:
        from repro.observability.slo import SloMonitor, SloSpec

        slos: List[SloSpec] = [SloSpec(
            name="chaos-edge-up", kind="availability", series="up:edge0",
            objective=0.9, window=GOODPUT_WINDOW, subject="edge0",
        )]
        if spec.traffic.pattern != "none":
            from repro.traffic.client import COMPLETIONS_SERIES

            expected = min(spec.traffic.offered_rate, EDGE_CAPACITY)
            slos.append(SloSpec(
                name="chaos-goodput", kind="rate",
                series=COMPLETIONS_SERIES,
                objective=GOODPUT_OBJECTIVE_FRACTION * expected,
                window=GOODPUT_WINDOW, subject="edge0", service="serving",
            ))
        monitor = SloMonitor(system.sim, system.metrics, slos,
                             trace=system.trace, period=SLO_PERIOD)
        monitor.start()
        aux["monitor"] = monitor


def compile_spec(spec: ChaosSpec) -> PreparedRun:
    """Module-level convenience: one-off compile of ``spec``."""
    return ScenarioCompiler().compile(spec)

"""The replay-verified failure corpus.

Every violation a campaign keeps is emitted as a self-contained bundle
under ``corpus/chaos-<spec-digest>/``: the chaos spec (``spec.json``),
plus the full flight-recorder gate-incident bundle (manifest, journal,
checkpoint at the horizon, telemetry tails) produced by re-running the
spec journaled and flight-armed via
:func:`~repro.observability.flight.capture_gate_incident`.  Because the
spec is registered with the persistence registry (scenario ``"chaos"``),
:func:`replay_corpus` can rebuild each bundle's run from its embedded
spec and fast-forward to the checkpoint barrier, verifying the
whole-system digest bit-for-bit -- past failures become permanent
regression scenarios.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.chaos.spec import ChaosSpec
from repro.persistence.scenarios import ScenarioSpec

SPEC_FILENAME = "spec.json"
MANIFEST_FILENAME = "manifest.json"
BUNDLE_PREFIX = "chaos-"


def persistence_spec(spec: ChaosSpec) -> ScenarioSpec:
    """The registry-facing identity of a chaos spec.

    Scenario ``"chaos"`` carries the whole chaos spec in its params, so
    checkpoints and journals embed everything needed to rebuild the run;
    the persistence-level seed stays ``None`` (the chaos spec owns it).
    """
    return ScenarioSpec(name="chaos", params={"spec": spec.to_dict()})


def bundle_dir(corpus_dir: str, spec: ChaosSpec) -> str:
    return os.path.join(corpus_dir, f"{BUNDLE_PREFIX}{spec.digest()}")


def emit_bundle(spec: ChaosSpec, corpus_dir: str,
                violations: Sequence[str] = (),
                campaign_seed: Optional[int] = None,
                case_index: Optional[int] = None) -> str:
    """Re-run ``spec`` journaled + flight-armed and write its bundle.

    Returns the bundle directory.  Emitting the same spec twice is
    idempotent by construction: the directory is named by the spec
    digest and the re-run is deterministic, so the bytes are identical.
    """
    from repro.observability.flight import capture_gate_incident

    directory = bundle_dir(corpus_dir, spec)
    capture_gate_incident(
        persistence_spec(spec), directory, reason="gate-failure",
        detail={
            "violations": list(violations),
            "chaos_spec": spec.to_dict(),
            "describe": spec.describe(),
            "campaign_seed": campaign_seed,
            "case_index": case_index,
        })
    with open(os.path.join(directory, SPEC_FILENAME), "w",
              encoding="utf-8") as fh:
        fh.write(spec.to_json() + "\n")
    return directory


def corpus_bundles(corpus_dir: str) -> List[str]:
    """All bundle directories in ``corpus_dir``, sorted by name."""
    if not os.path.isdir(corpus_dir):
        return []
    bundles = []
    for entry in sorted(os.listdir(corpus_dir)):
        path = os.path.join(corpus_dir, entry)
        if os.path.isdir(path) and os.path.exists(
                os.path.join(path, MANIFEST_FILENAME)):
            bundles.append(path)
    return bundles


def load_bundle_spec(bundle: str) -> ChaosSpec:
    """The chaos spec a bundle was emitted for."""
    with open(os.path.join(bundle, SPEC_FILENAME), encoding="utf-8") as fh:
        return ChaosSpec.from_json(fh.read())


@dataclass
class BundleVerdict:
    """One bundle's replay outcome."""

    bundle: str
    ok: bool
    digest: Optional[str] = None
    barrier_time: Optional[float] = None
    barrier_fired: Optional[int] = None
    error: Optional[str] = None
    replay_wall_s: Optional[float] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "bundle": self.bundle,
            "ok": self.ok,
            "digest": self.digest,
            "barrier_time": self.barrier_time,
            "barrier_fired": self.barrier_fired,
            "error": self.error,
            "replay_wall_s": self.replay_wall_s,
        }


def replay_bundle(bundle: str) -> BundleVerdict:
    """Rebuild one bundle's run and verify the checkpoint digest.

    ``ok`` means :func:`~repro.observability.flight.replay_incident`
    fast-forwarded the freshly rebuilt system exactly ``fired`` events
    and the whole-system digest matched the captured one bit-for-bit --
    a byte-identical reproduction of the failing run.
    """
    from repro.observability.flight import FlightError, replay_incident
    from repro.persistence.checkpoint import CheckpointError

    try:
        outcome = replay_incident(bundle)
    except (CheckpointError, FlightError, KeyError, OSError,
            ValueError, json.JSONDecodeError) as exc:
        return BundleVerdict(bundle=bundle, ok=False,
                             error=f"{type(exc).__name__}: {exc}")
    return BundleVerdict(
        bundle=bundle, ok=True, digest=outcome["digest"],
        barrier_time=outcome["barrier_time"],
        barrier_fired=outcome["barrier_fired"],
        replay_wall_s=outcome["replay_wall_s"])


def replay_corpus(corpus_dir: str) -> Tuple[List[BundleVerdict], bool]:
    """Replay every bundle; returns (verdicts, all_ok).

    An empty corpus replays vacuously (``all_ok=True``) -- a fresh
    checkout with no findings yet is not a regression.
    """
    verdicts = [replay_bundle(bundle)
                for bundle in corpus_bundles(corpus_dir)]
    return verdicts, all(verdict.ok for verdict in verdicts)

"""Greedy deterministic shrinking of failing chaos specs.

A campaign's raw finding usually arms more axes than the failure needs:
the workload, the extra fault, the adversary may all be bystanders.  The
shrinker walks a fixed candidate order -- drop the adversary, drop each
fault, weaken the traffic pattern one notch, drop the workload, shrink
the topology -- re-running the spec after each single-axis edit and
keeping the edit whenever *some* violation survives (not necessarily the
original one: a smaller spec exposing a different breach is still a
smaller failing spec).  It repeats until a full pass changes nothing, so
the result is a local minimum: removing any one remaining axis makes the
failure disappear.

Everything is deterministic: candidate order is fixed, the oracle is the
seeded :func:`~repro.chaos.campaign.run_case`, and no randomness is
involved -- the same failing spec always shrinks to the same minimum.
The ``oracle`` parameter exists for tests: a synthetic predicate (e.g.
"fails iff the adversary axis is armed") lets convergence be verified
without running simulations.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Tuple

from repro.chaos.spec import (
    AdversaryAxis,
    ChaosSpec,
    TopologyAxis,
    TrafficAxis,
    TRAFFIC_PATTERNS,
)

#: An oracle maps a candidate spec to the violations it still triggers
#: (empty tuple = the candidate passes, so the edit is rejected).
ShrinkOracle = Callable[[ChaosSpec], Tuple[str, ...]]

#: Safety valve: a shrink never needs more re-runs than this (each
#: accepted edit strictly reduces axis_count, each pass is O(axes)).
MAX_ATTEMPTS = 64


@dataclass
class ShrinkReport:
    """The minimum found, and the path that led there."""

    spec: ChaosSpec
    violations: Tuple[str, ...]
    attempts: int = 0
    accepted: List[str] = field(default_factory=list)
    rejected: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        return {
            "spec": self.spec.to_dict(),
            "describe": self.spec.describe(),
            "violations": list(self.violations),
            "attempts": self.attempts,
            "accepted": list(self.accepted),
            "rejected": list(self.rejected),
        }


def _default_oracle(spec: ChaosSpec) -> Tuple[str, ...]:
    from repro.chaos.campaign import run_case

    return run_case(spec).violations


def _candidates(spec: ChaosSpec) -> List[Tuple[str, ChaosSpec]]:
    """Single-axis weakenings of ``spec``, in fixed priority order."""
    out: List[Tuple[str, ChaosSpec]] = []
    if spec.adversary.attack != "none":
        out.append(("drop-adversary",
                    replace(spec, adversary=AdversaryAxis())))
    for index in range(len(spec.faults)):
        kept = spec.faults[:index] + spec.faults[index + 1:]
        out.append((f"drop-fault-{index}", replace(spec, faults=kept)))
    if spec.traffic.pattern != "none":
        rank = TRAFFIC_PATTERNS.index(spec.traffic.pattern)
        weaker = TRAFFIC_PATTERNS[rank - 1]
        if weaker == "none":
            out.append(("drop-traffic", replace(spec, traffic=TrafficAxis())))
        else:
            out.append((f"weaken-traffic-{weaker}",
                        replace(spec, traffic=replace(spec.traffic,
                                                      pattern=weaker))))
    if spec.workload != "none":
        out.append(("drop-workload", replace(spec, workload="none")))
    if spec.topology.sites > 2:
        out.append(("shrink-sites",
                    replace(spec, topology=replace(spec.topology, sites=2))))
    if spec.topology.devices_per_site > 1:
        out.append(("shrink-devices",
                    replace(spec, topology=replace(spec.topology,
                                                   devices_per_site=1))))
    return out


def shrink_spec(spec: ChaosSpec,
                oracle: Optional[ShrinkOracle] = None,
                max_attempts: int = MAX_ATTEMPTS) -> ShrinkReport:
    """Greedily minimize a failing spec while it keeps failing.

    ``spec`` must fail under ``oracle`` (raises ``ValueError``
    otherwise -- shrinking a passing spec means the caller's finding was
    not reproducible, which should never be silent).
    """
    judge = oracle if oracle is not None else _default_oracle
    violations = tuple(judge(spec))
    if not violations:
        raise ValueError(
            f"spec does not violate anything; nothing to shrink: "
            f"{spec.describe()}")
    report = ShrinkReport(spec=spec, violations=violations, attempts=1)
    improved = True
    while improved and report.attempts < max_attempts:
        improved = False
        for label, candidate in _candidates(report.spec):
            if report.attempts >= max_attempts:
                break
            report.attempts += 1
            still_failing = tuple(judge(candidate))
            if still_failing:
                report.spec = candidate
                report.violations = still_failing
                report.accepted.append(label)
                improved = True
                break           # restart the pass from the new, smaller spec
            report.rejected.append(label)
    return report

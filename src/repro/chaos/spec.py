"""Declarative chaos scenario specs: the cross-product, as data.

The paper's roadmap (SSV-SSVI) asks for systematic exploration of the
disruption x workload x adversary cross-product; hand-written scenario
functions cover ~10 curated points of it.  A :class:`ChaosSpec` makes an
arbitrary point *expressible*: one frozen, JSON-round-trippable value
composing topology x workload x traffic pattern x fault schedule x
adversary x maturity level, compiled onto the existing plane builders by
:class:`~repro.chaos.compiler.ScenarioCompiler`.

Design rules:

- **Self-contained.**  Every number that affects the run is in the spec
  (no ambient defaults resolved at run time), so a shrunk or replayed
  spec means the same run forever.
- **Exact round-trip.**  ``from_dict(to_dict(s)) == s`` and the JSON form
  is canonical (sorted keys), so spec digests are stable identities.
- **Deterministic sampling.**  :class:`SplitMix64` is the only randomness
  source campaigns use -- no ``random`` global state, so a campaign seed
  names the exact sequence of specs on every machine.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Sequence, Tuple

#: Workload archetypes the compiler can build (healthcare's bespoke
#: hospital topology does not expose the edge/cloud landscape the
#: traffic and adversary axes attach to, so it is not compilable).
WORKLOADS = ("none", "smart-city", "energy", "mobility")

#: Traffic patterns, ordered weakest to strongest (the shrinker walks
#: this order leftwards).
TRAFFIC_PATTERNS = ("none", "steady", "overload", "retry-storm")

#: Schedulable fault kinds.
FAULT_KINDS = ("crash", "partition", "latency", "link")

#: Adversary attacks ("sybil-flood" = flood + forged SWIM joins).
ADVERSARIES = ("none", "flood", "sybil-flood")

#: Maturity levels ML1-ML4 (paper SSIV): how much of the resilience
#: stack the compiled system gets.  ML1 naive, ML2 +admission control,
#: ML3 +retry budget/breaker/backpressure MAPE, ML4 +security defenses.
MATURITY_LEVELS = (1, 2, 3, 4)

_MASK64 = (1 << 64) - 1
_GOLDEN_GAMMA = 0x9E3779B97F4A7C15


class SplitMix64:
    """Tiny deterministic generator for campaign sampling.

    The same SplitMix64 finalizer the span sampler uses
    (:mod:`repro.observability.overhead`), wrapped as a sequential
    stream: three multiplies and shifts per draw, no ``random`` module,
    no global state.  Two instances with the same seed produce the same
    sequence on every platform.
    """

    def __init__(self, seed: int) -> None:
        self._state = seed & _MASK64

    def next_u64(self) -> int:
        self._state = (self._state + _GOLDEN_GAMMA) & _MASK64
        value = self._state
        value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
        value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _MASK64
        return value ^ (value >> 31)

    def uniform(self, low: float, high: float) -> float:
        return low + (high - low) * (self.next_u64() / float(1 << 64))

    def randint(self, low: int, high: int) -> int:
        """Inclusive-range integer draw."""
        return low + self.next_u64() % (high - low + 1)

    def choice(self, items: Sequence[Any]) -> Any:
        return items[self.next_u64() % len(items)]

    def chance(self, probability: float) -> bool:
        return self.uniform(0.0, 1.0) < probability

    def split(self) -> "SplitMix64":
        """An independent child stream (new seed drawn from this one)."""
        return SplitMix64(self.next_u64())


@dataclass(frozen=True)
class TopologyAxis:
    """Size of the edge/cloud landscape under test."""

    sites: int = 3
    devices_per_site: int = 2

    def to_dict(self) -> Dict[str, Any]:
        return {"sites": self.sites,
                "devices_per_site": self.devices_per_site}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TopologyAxis":
        return cls(sites=int(data.get("sites", 3)),
                   devices_per_site=int(data.get("devices_per_site", 2)))


@dataclass(frozen=True)
class TrafficAxis:
    """Request load offered against the ``edge0`` server.

    ``pattern`` selects the client-side posture: ``steady``/``overload``
    use the plain client, ``retry-storm`` the aggressive 4-attempt retry
    policy that turns a transient outage metastable when unbudgeted.
    Offered rate is ``users * rate_per_user`` req/s against a 200 req/s
    edge server.
    """

    pattern: str = "none"
    users: int = 0
    rate_per_user: float = 0.04

    @property
    def offered_rate(self) -> float:
        return self.users * self.rate_per_user

    def to_dict(self) -> Dict[str, Any]:
        return {"pattern": self.pattern, "users": self.users,
                "rate_per_user": self.rate_per_user}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TrafficAxis":
        return cls(pattern=str(data.get("pattern", "none")),
                   users=int(data.get("users", 0)),
                   rate_per_user=float(data.get("rate_per_user", 0.04)))


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled environmental fault.

    ``target`` is a device/node id for ``crash``/``partition`` and an
    ``"a:b"`` node pair for ``latency``/``link``.
    """

    kind: str
    at: float
    duration: float
    target: str

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "at": self.at,
                "duration": self.duration, "target": self.target}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultEvent":
        return cls(kind=str(data["kind"]), at=float(data["at"]),
                   duration=float(data["duration"]),
                   target=str(data["target"]))


@dataclass(frozen=True)
class AdversaryAxis:
    """A member of the system turning hostile at ``at``.

    The attacker is always ``edge1`` (present in every legal topology)
    and the victim ``edge0``, so shrinking the topology never invalidates
    the attack; ``rate`` is the flood's request rate in req/s.
    """

    attack: str = "none"
    at: float = 5.0
    rate: float = 600.0

    def to_dict(self) -> Dict[str, Any]:
        return {"attack": self.attack, "at": self.at, "rate": self.rate}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "AdversaryAxis":
        return cls(attack=str(data.get("attack", "none")),
                   at=float(data.get("at", 5.0)),
                   rate=float(data.get("rate", 600.0)))


@dataclass(frozen=True)
class ChaosSpec:
    """One point of the disruption cross-product, as a value.

    Compiled by :class:`~repro.chaos.compiler.ScenarioCompiler` onto the
    existing workload/traffic/fault/security builders; registered with
    the persistence registry as scenario ``"chaos"`` (params carry this
    spec's dict form), so checkpoints, journals, deterministic replay
    and flight-recorder bundles all work unchanged.
    """

    workload: str = "none"
    topology: TopologyAxis = field(default_factory=TopologyAxis)
    traffic: TrafficAxis = field(default_factory=TrafficAxis)
    faults: Tuple[FaultEvent, ...] = ()
    adversary: AdversaryAxis = field(default_factory=AdversaryAxis)
    maturity: int = 1
    horizon: float = 30.0
    seed: int = 1

    # -- validation --------------------------------------------------------- #
    def validate(self) -> None:
        """Raise ``ValueError`` on any out-of-domain axis."""
        if self.workload not in WORKLOADS:
            raise ValueError(f"unknown workload {self.workload!r}; "
                             f"expected one of {WORKLOADS}")
        if self.topology.sites < 2:
            raise ValueError("topology needs at least two sites "
                             "(edge0 serves, edge1 is the adversary slot)")
        if self.topology.devices_per_site < 1:
            raise ValueError("topology needs at least one device per site")
        if self.traffic.pattern not in TRAFFIC_PATTERNS:
            raise ValueError(f"unknown traffic pattern "
                             f"{self.traffic.pattern!r}; expected one of "
                             f"{TRAFFIC_PATTERNS}")
        if self.traffic.pattern != "none" and self.traffic.users <= 0:
            raise ValueError("traffic pattern needs users > 0")
        for fault in self.faults:
            if fault.kind not in FAULT_KINDS:
                raise ValueError(f"unknown fault kind {fault.kind!r}; "
                                 f"expected one of {FAULT_KINDS}")
            if fault.duration <= 0 or fault.at < 0:
                raise ValueError(f"fault {fault} needs at >= 0 and "
                                 "duration > 0")
            if fault.kind in ("latency", "link") and ":" not in fault.target:
                raise ValueError(f"{fault.kind} fault target must be an "
                                 f"'a:b' node pair, got {fault.target!r}")
        if self.adversary.attack not in ADVERSARIES:
            raise ValueError(f"unknown adversary {self.adversary.attack!r}; "
                             f"expected one of {ADVERSARIES}")
        if self.maturity not in MATURITY_LEVELS:
            raise ValueError(f"maturity must be one of {MATURITY_LEVELS}, "
                             f"got {self.maturity!r}")
        if self.horizon <= 0:
            raise ValueError("horizon must be positive")

    # -- round trip --------------------------------------------------------- #
    def to_dict(self) -> Dict[str, Any]:
        return {
            "workload": self.workload,
            "topology": self.topology.to_dict(),
            "traffic": self.traffic.to_dict(),
            "faults": [fault.to_dict() for fault in self.faults],
            "adversary": self.adversary.to_dict(),
            "maturity": self.maturity,
            "horizon": self.horizon,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ChaosSpec":
        return cls(
            workload=str(data.get("workload", "none")),
            topology=TopologyAxis.from_dict(data.get("topology", {})),
            traffic=TrafficAxis.from_dict(data.get("traffic", {})),
            faults=tuple(FaultEvent.from_dict(f)
                         for f in data.get("faults", [])),
            adversary=AdversaryAxis.from_dict(data.get("adversary", {})),
            maturity=int(data.get("maturity", 1)),
            horizon=float(data.get("horizon", 30.0)),
            seed=int(data.get("seed", 1)),
        )

    def to_json(self) -> str:
        """Canonical JSON form (sorted keys, compact separators)."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "ChaosSpec":
        return cls.from_dict(json.loads(text))

    # -- identity ----------------------------------------------------------- #
    def digest(self) -> str:
        """Stable 12-hex identity of this exact spec (corpus dir names)."""
        return hashlib.sha256(self.to_json().encode("utf-8")).hexdigest()[:12]

    def describe(self) -> str:
        """One human line: the axes that are actually armed."""
        parts = [f"ML{self.maturity}"]
        if self.workload != "none":
            parts.append(self.workload)
        parts.append(f"{self.topology.sites}x{self.topology.devices_per_site}")
        if self.traffic.pattern != "none":
            parts.append(f"{self.traffic.pattern}@"
                         f"{self.traffic.offered_rate:g}/s")
        for fault in self.faults:
            parts.append(f"{fault.kind}({fault.target})@{fault.at:g}s"
                         f"+{fault.duration:g}s")
        if self.adversary.attack != "none":
            parts.append(f"{self.adversary.attack}@{self.adversary.at:g}s")
        return " ".join(parts)

    def axis_count(self) -> int:
        """How many axes are armed -- the shrinker's size metric."""
        count = 0
        if self.workload != "none":
            count += 1
        if self.traffic.pattern != "none":
            count += TRAFFIC_PATTERNS.index(self.traffic.pattern)
        count += len(self.faults)
        if self.adversary.attack != "none":
            count += 1
        count += (self.topology.sites - 2) + (self.topology.devices_per_site - 1)
        return count

    def with_seed(self, seed: int) -> "ChaosSpec":
        return replace(self, seed=seed)

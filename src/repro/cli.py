"""Command-line runner for the reproduction experiments.

``python -m repro <command>`` runs a quick (or full) version of each
experiment and prints its tables -- the zero-setup path for a reviewer to
see the paper's shapes without touching pytest.  ``--json`` emits the same
tables as machine-readable JSON on stdout.

Commands
--------
maturity    Tables 1-2: the ML1-ML4 comparison.
landscape   Fig. 1: edge vs cloud latency and outage continuity.
verify      Fig. 2: model checking and quantitative verification demos.
control     Fig. 3: centralized vs decentralized control availability.
dataflows   Fig. 4: privacy / freshness / availability of replication.
mape        Fig. 5: MAPE placement vs time-to-repair.
trace       Run an observed scenario; export spans, Chrome trace, profile.
monitor     Run a scenario under live SLO evaluation; print resilience
            KPIs per disruption vector; exit nonzero on SLO breach
            (CI-gateable).
report      Run a monitored scenario and write the self-contained HTML
            resilience report plus a Prometheus metrics exposition.
checkpoint  Run a persistence scenario up to ``--at`` (or its first
            harness crash), journaling every event, and save a resumable
            checkpoint into ``--out``.
resume      Load the checkpoint in ``--out``, fast-forward deterministically
            to the saved point, verify the state digest, and run to the
            horizon -- the journal continues where it left off.
replay      Re-run the scenario recorded in ``--out``'s journal from its
            seed and compare every event and state digest; on divergence,
            write a divergence report and exit nonzero.
incident    ``incident show <bundle>`` prints a captured incident's
            trigger, ranked causal chain and evidence inventory;
            ``incident replay <bundle>`` deterministically reproduces the
            bundle's triggering window and verifies its state digest.
profile     ``profile run <scenario>`` runs fully observed and captures a
            profile snapshot (per-plane cost attribution, flamegraphs,
            request critical paths); ``profile diff <a> <b>`` attributes
            the delta between two snapshots (or two BENCH baselines) to
            subsystems.
chaos       ``chaos run`` drives a seeded chaos-search campaign over
            declarative specs (topology x workload x traffic x faults x
            adversary x maturity), shrinks every violation to a minimal
            spec and emits replay bundles into ``--corpus``;
            ``chaos shrink <spec.json>`` minimizes one failing spec;
            ``chaos corpus`` replays every corpus bundle and verifies
            each state digest bit-for-bit (exit nonzero on divergence).
scenarios   ``scenarios list`` prints the unified scenario registry --
            every runnable scenario across all planes, with its owning
            plane, variants and description.
shard       ``shard run <scenario> --shards K [--workers W]`` partitions a
            federated scenario into K administrative-domain shards, each
            on its own simulator in a worker process, synchronized with
            conservative lookahead windows; ``shard resume`` continues a
            killed run from its barrier checkpoints; ``shard verify``
            replays every shard journal and verifies the federation
            digest chain bit-for-bit (exit nonzero on divergence).
all         Every table command above, in order.

Every gated command (monitor, traffic, security, replay) runs under a
flight recorder: when its gate fails, a self-contained incident bundle
(telemetry tails + checkpoint + journal) lands under ``--out``/incidents
for the ``incident`` verbs to inspect and replay.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
from typing import Callable, Dict, List, Optional, Tuple

# When --json is active, tables accumulate here instead of printing.
_JSON_COLLECTOR: Optional[List[Dict[str, object]]] = None


# --------------------------------------------------------------------------- #
# Signal handling
# --------------------------------------------------------------------------- #
class _HarnessSignal(BaseException):
    """SIGINT/SIGTERM during a batch command, converted to an exception.

    Derives from BaseException so scenario-level ``except Exception``
    recovery paths (flight-recorder guards, gate handlers) don't swallow
    it; ``main()`` catches it, flushes any armed flight recorder as a
    ``harness-crash`` incident, and exits ``128 + signum`` (130 for
    Ctrl-C) instead of dumping a KeyboardInterrupt traceback.
    """

    def __init__(self, signum: int) -> None:
        super().__init__(f"interrupted by signal {signum}")
        self.signum = signum


# Armed flight recorders to flush if a signal lands mid-run:
# (flight, bundle_dir, journal_path) registered by _run_monitored.
_SIGNAL_FLIGHTS: List[Tuple[object, Optional[str], Optional[str]]] = []


def _install_signal_handlers() -> None:
    """Raise :class:`_HarnessSignal` on SIGINT/SIGTERM (batch commands).

    Best-effort: embedding contexts (non-main threads, restricted
    platforms) simply keep their default handlers.
    """

    def _handler(signum: int, _frame: object) -> None:
        raise _HarnessSignal(signum)

    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            signal.signal(signum, _handler)
        except (ValueError, OSError):  # pragma: no cover - non-main thread
            pass


def _flush_signal_incidents(signum: int) -> List[str]:
    """Capture ``harness-crash`` incidents on every armed flight recorder."""
    try:
        name = signal.Signals(signum).name
    except ValueError:  # pragma: no cover - unknown signal number
        name = str(signum)
    bundles = []
    for flight, bundle_dir, journal_path in list(_SIGNAL_FLIGHTS):
        try:
            flight.trigger("harness-crash", detail={"signal": name})
            flight.finalize()
            flight.disarm()
            if bundle_dir is not None:
                bundles.append(flight.capture(bundle_dir,
                                              journal_path=journal_path))
        except Exception:  # pragma: no cover - best-effort teardown
            continue
    _SIGNAL_FLIGHTS.clear()
    return bundles


def _print_table(title: str, headers: List[str], rows: List[List[object]]) -> None:
    if _JSON_COLLECTOR is not None:
        _JSON_COLLECTOR.append(
            {"title": title, "headers": list(headers),
             "rows": [list(row) for row in rows]})
        return

    def fmt(cell: object) -> str:
        return f"{cell:.4f}" if isinstance(cell, float) else str(cell)

    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(fmt(cell)))
    print(f"\n== {title} ==")
    print("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    print("-" * (sum(widths) + 2 * (len(widths) - 1)))
    for row in rows:
        print("  ".join(fmt(cell).ljust(widths[i]) for i, cell in enumerate(row)))


def _print_block(title: str, text: str) -> None:
    """Pre-formatted text output (e.g. the maturity comparison table)."""
    if _JSON_COLLECTOR is not None:
        _JSON_COLLECTOR.append({"title": title, "text": text})
        return
    print(text)


def _progress(message: str) -> None:
    """Human-facing progress line; silent under --json."""
    if _JSON_COLLECTOR is None:
        print(message)


def _print_data(title: str, data: Dict[str, object]) -> None:
    """Structured payload: emitted under --json only (tables cover text)."""
    if _JSON_COLLECTOR is not None:
        _JSON_COLLECTOR.append({"title": title, "data": data})


# --------------------------------------------------------------------------- #
# Commands
# --------------------------------------------------------------------------- #
def cmd_maturity(quick: bool) -> None:
    from repro.core.assessment import comparison_table
    from repro.core.maturity import ScenarioParams, run_maturity_comparison

    params = ScenarioParams(
        n_sites=2 if quick else 3,
        sensors_per_site=2 if quick else 4,
        horizon=60.0 if quick else 120.0,
        seed=42,
    )
    _progress(f"running ML1..ML4 ({params.n_sites} sites, "
              f"{params.horizon:.0f}s horizon)...")
    reports = run_maturity_comparison(params)
    _progress("\nTables 1-2 (measured): satisfaction under disruption\n")
    _print_block("Tables 1-2: satisfaction under disruption",
                 comparison_table(list(reports.values())))


def cmd_landscape(quick: bool) -> None:
    from repro.faults.models import PartitionFault
    from repro.workloads.smart_city import SmartCityWorkload

    districts = 2 if quick else 5
    sensors = 5 if quick else 20
    workload = SmartCityWorkload(n_districts=districts,
                                 sensors_per_district=sensors, seed=7)
    rows = []
    for d in range(districts):
        device = workload.system.sites[f"edge{d}"][0]
        edge = workload.system.topology.expected_latency(device, f"edge{d}")
        cloud = workload.system.topology.expected_latency(device, "cloud")
        rows.append([device, edge * 1000, cloud * 1000, cloud / edge])
    _print_table("Fig. 1: edge vs cloud one-way latency",
                 ["device", "edge (ms)", "cloud (ms)", "ratio"], rows)
    workload.system.injector.inject_at(20.0, PartitionFault(
        name="outage", duration=20.0, isolate_node="cloud"))
    workload.run(60.0)
    ingest = workload.system.metrics.series("city.ingest")
    _print_table("Fig. 1: edge ingest through a cloud outage",
                 ["phase", "readings/s"],
                 [["before", len(ingest.window(0, 20)) / 20.0],
                  ["during", len(ingest.window(20, 40)) / 20.0],
                  ["after", len(ingest.window(40, 60)) / 20.0]])


def cmd_verify(quick: bool) -> None:
    from repro.modeling.checker import ModelChecker
    from repro.modeling.dtmc import availability_dtmc
    from repro.modeling.lts import build_device_lifecycle_lts, build_grid_lts
    from repro.modeling.properties import Always, Eventually, LeadsTo, prop

    checker = ModelChecker(build_device_lifecycle_lts())
    cases = [
        ("G !(up & down)", Always(~(prop("up") & prop("down")))),
        ("G (serving -> up)", Always(prop("serving") >> prop("up"))),
        ("down ~> up", LeadsTo(prop("down"), prop("up"))),
        ("G !down (false)", Always(~prop("down"))),
    ]
    rows = []
    for label, formula in cases:
        result = checker.check(formula)
        rows.append([label, result.holds,
                     "->".join(map(str, result.counterexample or [])) or "-"])
    _print_table("Fig. 2: device lifecycle properties",
                 ["property", "holds", "counterexample"], rows)
    sizes = [10, 30] if quick else [10, 30, 60, 100]
    rows = []
    for size in sizes:
        result = ModelChecker(build_grid_lts(size, size)).check(
            Eventually(prop("goal")))
        rows.append([size * size, result.states_explored, result.holds])
    _print_table("Fig. 2: checker scaling", ["states", "explored", "holds"], rows)
    chain, analytic = availability_dtmc(0.05, 0.4)
    computed = chain.stationary_distribution()["up"]
    _print_table("Fig. 2: quantitative verification",
                 ["metric", "value"],
                 [["analytic availability", analytic],
                  ["computed availability", computed]])


def cmd_control(quick: bool) -> None:
    from repro.experiments import (
        FIG3_HORIZON,
        FIG3_OUTAGE,
        control_availability,
        run_control_architecture,
    )

    rows = []
    for architecture in ("centralized", "decentralized"):
        system, _ = run_control_architecture(architecture)
        rows.append([
            architecture,
            control_availability(system, 5.0, FIG3_OUTAGE[0]),
            control_availability(system, FIG3_OUTAGE[0] + 2, FIG3_OUTAGE[1]),
            control_availability(system, FIG3_OUTAGE[1] + 5, FIG3_HORIZON),
        ])
    _print_table("Fig. 3: control availability around a cloud outage",
                 ["architecture", "before", "during", "after"], rows)


def cmd_dataflows(quick: bool) -> None:
    from repro.core.system import IoTSystem
    from repro.data.crdt import PNCounter
    from repro.data.quorum import QuorumClient, QuorumReplica
    from repro.data.sync import ReplicaStore, SyncProtocol, converged

    system = IoTSystem.with_edge_cloud_landscape(3, 1, seed=29)
    edges = system.edge_nodes
    for edge in edges:
        QuorumReplica(system.sim, system.network, edge)
    client = QuorumClient(system.sim, system.network, "d0.0", edges, 2, 2)
    stores = {}
    for edge in edges:
        store = ReplicaStore(edge)
        store.register("events", PNCounter(edge))
        stores[edge] = store
        SyncProtocol(system.sim, system.network, store,
                     [e for e in edges if e != edge],
                     system.rngs.stream(f"sync:{edge}"), period=0.5).start()

    def write(s):
        client.write("k", s.now)
        stores["edge0"].get("events").increment(1)
        if s.now < 45.0:
            s.schedule(1.0, write)

    system.sim.schedule(1.0, write)
    system.partitions.schedule_outage(20.0, 20.0, "edge1")
    system.partitions.schedule_outage(20.0, 20.0, "edge2")
    system.run(until=60.0)
    _print_table("Fig. 4: CP (quorum) vs AP (CRDT) under a 20s majority cut",
                 ["metric", "value"],
                 [["quorum write availability", client.write_availability],
                  ["CRDT write availability", 1.0],
                  ["CRDT converged after heal",
                   converged(list(stores.values()), "events")]])


def cmd_mape(quick: bool) -> None:
    from repro.experiments import mape_repair_delays, run_mape_placement

    rows = []
    for placement in ("cloud", "edge"):
        system, loops = run_mape_placement(placement)
        delays = mape_repair_delays(system, loops)
        missed = sum(loop.missed_observations for loop in loops)
        rows.append([placement, delays[0], delays[-1], missed])
    _print_table("Fig. 5: MAPE placement vs time-to-repair",
                 ["placement", "fastest (s)", "slowest (s)", "missed obs"], rows)


# --------------------------------------------------------------------------- #
# trace: observed scenario runs with exportable artifacts
# --------------------------------------------------------------------------- #
TRACE_SCENARIOS = ("smart-city-partition", "mape-outage")


def _run_smart_city_partition(quick: bool, setup=None):
    """The canonical observed run: a smart city losing its cloud.

    Wiring lives in
    :func:`repro.observability.scenarios.prepare_smart_city_partition`
    (so the persistence registry can rebuild and replay the scenario);
    this wrapper prepares, applies the optional ``setup`` hook with
    ``(system, loops)`` -- the attachment point for SLO monitoring --
    and drives the run.
    """
    from repro.observability.scenarios import prepare_smart_city_partition

    prepared = prepare_smart_city_partition(quick=quick)
    system = prepared.system
    if setup is not None:
        setup(system, prepared.aux["loops"])
    system.run(until=prepared.horizon)
    return system


def _run_mape_outage(quick: bool, setup=None):
    """Fig. 5's edge placement, observed end-to-end."""
    from repro.experiments import run_mape_placement

    system, _ = run_mape_placement("edge", observe=True, setup=setup)
    return system


def cmd_trace(quick: bool, scenario: str = "smart-city-partition",
              out: str = "trace-out") -> None:
    from repro.observability.export import (
        write_chrome_trace,
        write_events_jsonl,
        write_metrics_snapshot,
        write_profile,
        write_spans_jsonl,
    )

    runners = {
        "smart-city-partition": _run_smart_city_partition,
        "mape-outage": _run_mape_outage,
    }
    _progress(f"running observed scenario {scenario!r}...")
    system = runners[scenario](quick)
    spans = system.spans
    spans.finish_open(system.sim.now)
    if system.trace.dropped:
        system.metrics.increment("trace.dropped_events", system.trace.dropped)

    os.makedirs(out, exist_ok=True)
    span_path = os.path.join(out, "spans.jsonl")
    event_path = os.path.join(out, "events.jsonl")
    chrome_path = os.path.join(out, "trace.chrome.json")
    metrics_path = os.path.join(out, "metrics.json")
    profile_path = os.path.join(out, "profile.json")
    n_spans = write_spans_jsonl(spans, span_path)
    n_events = write_events_jsonl(system.trace, event_path)
    n_records = write_chrome_trace(chrome_path, spans=spans, events=system.trace)
    write_metrics_snapshot(system.metrics, metrics_path)
    profile = write_profile(system.sim.instrument, profile_path)

    faults = len(spans.select(category="injection"))
    recoveries = len(spans.select(category="recovery"))
    _print_table(
        f"trace: {scenario} (horizon {system.sim.now:.0f}s)",
        ["artifact", "path", "records"],
        [["spans (JSONL)", span_path, n_spans],
         ["events (JSONL)", event_path, n_events],
         ["Chrome trace", chrome_path, n_records],
         ["metrics snapshot", metrics_path,
          len(system.metrics.series_names) + len(system.metrics.counter_names)],
         ["kernel profile", profile_path, profile.get("events", 0)]])
    _print_table(
        "trace: causal summary",
        ["metric", "value"],
        [["fault injections", faults],
         ["recovery spans", recoveries],
         ["message spans", len(spans.select(category="message"))],
         ["kernel events profiled", profile.get("events", 0)],
         ["mean event cost (us)", float(profile.get("mean_event_us", 0.0))]])
    _progress(f"\nload {chrome_path} in chrome://tracing or https://ui.perfetto.dev")


# --------------------------------------------------------------------------- #
# monitor / report: live SLO evaluation + resilience KPIs
# --------------------------------------------------------------------------- #
def _run_monitored(quick: bool, scenario: str, strict: bool,
                   bundle_dir: Optional[str] = None):
    """Run ``scenario`` with SLO monitoring and a flight recorder armed.

    The monitor evaluates inside the simulation (period 2s) so breaches
    land causally among the faults and repairs they concern, and every
    MAPE loop subscribes to alerts -- SLO burn can trigger adaptation.
    Edge nodes additionally run a small gossip mesh sharing liveness
    heartbeats, giving the convergence KPIs a live protocol to measure.

    The run is rebuilt through the persistence scenario registry, so a
    captured incident is deterministically replayable.  With
    ``bundle_dir`` the whole event stream is journaled there (the journal
    joins the bundle on a gate failure; callers remove the directory on
    success).  Returns ``(system, monitor, flight, journal_path)``.
    """
    from repro.observability.flight import FlightRecorder
    from repro.persistence import ScenarioSpec, prepare
    from repro.persistence.journal import JournalWriter
    from repro.persistence.runner import RunRecorder, _drive_to_horizon

    params = {"monitored": True, "strict": strict}
    if scenario == "smart-city-partition":
        params["quick"] = quick
    spec = ScenarioSpec(name=scenario, params=params)
    prepared = prepare(spec)
    system = prepared.system
    monitor = prepared.aux["monitor"]
    recorder = None
    journal_path = None
    if bundle_dir is not None:
        os.makedirs(bundle_dir, exist_ok=True)
        journal_path = os.path.join(bundle_dir, "journal.jsonl")
        recorder = RunRecorder(system, JournalWriter(journal_path,
                                                     spec.to_dict()))
    flight = FlightRecorder(system, spec=spec,
                            loops=prepared.aux.get("loops"))
    flight.arm()   # chains after the journaling observer
    # Registered for the whole drive: a SIGINT/SIGTERM mid-run raises
    # _HarnessSignal (a BaseException, so nothing below catches it) and
    # main() flushes this recorder as a harness-crash incident.
    registration = (flight, bundle_dir, journal_path)
    _SIGNAL_FLIGHTS.append(registration)
    try:
        with flight.guard():
            _drive_to_horizon(system, prepared.horizon)
    except Exception:
        _SIGNAL_FLIGHTS.remove(registration)
        flight.finalize()
        flight.disarm()
        if recorder is not None:
            recorder.abandon()
        if bundle_dir is not None:
            flight.capture(bundle_dir, journal_path=journal_path)
        raise
    _SIGNAL_FLIGHTS.remove(registration)
    monitor.evaluate_now()   # end-of-run evaluation at the final horizon
    flight.finalize()
    flight.disarm()
    if recorder is not None:
        recorder.finish()
    return system, monitor, flight, journal_path


def _incident_rows(flight) -> List[List[object]]:
    """Diagnosis table rows for a triggered flight recorder."""
    diagnosis = flight.diagnosis
    return diagnosis.table_rows() if diagnosis is not None else []


def cmd_monitor(quick: bool, scenario: str = "smart-city-partition",
                strict: bool = False, out: str = "trace-out") -> int:
    """Run with live SLOs; print KPI tables; exit 1 on any SLO breach."""
    import shutil

    _progress(f"running monitored scenario {scenario!r}"
              f"{' (strict SLOs)' if strict else ''}...")
    bundle_dir = os.path.join(out, "incidents", scenario)
    system, monitor, flight, journal_path = _run_monitored(
        quick, scenario, strict, bundle_dir=bundle_dir)
    system.spans.finish_open(system.sim.now)
    report = system.kpi_report()

    _print_table(
        f"monitor: resilience KPIs by disruption vector ({scenario}, "
        f"horizon {system.sim.now:.0f}s)",
        ["vector", "faults", "resolved", "MTTD mean (s)", "MTTR mean (s)",
         "msgs/disruption", "disrupted (s)"],
        report.vector_rows())
    global_rows = [
        ["availability (fleet mean)", report.availability],
        ["availability (worst device)", report.worst_availability],
        ["degraded device-time (s)", report.degraded_time],
        ["runtime-monitor violations", report.violations],
        ["SLO breach alerts", report.alerts],
    ]
    for protocol, stats in sorted(report.convergence.items()):
        global_rows.append([f"convergence: {protocol} mean (s)", stats["mean"]])
        global_rows.append([f"convergence: {protocol} p95 (s)", stats["p95"]])
    _print_table("monitor: run-level KPIs", ["KPI", "value"], global_rows)
    _print_table(
        "monitor: SLOs",
        ["SLO", "kind", "objective", "measured", "burn rate", "status"],
        monitor.table_rows())
    _print_data("monitor: kpis", report.to_dict())
    _print_data("monitor: slos", monitor.to_dict())
    if monitor.ever_breached:
        if not flight.triggered:
            flight.trigger("gate-failure", detail={
                "gate": "slo", "breach_events": monitor.breach_events})
        bundle = flight.capture(bundle_dir, journal_path=journal_path)
        rows = _incident_rows(flight)
        if rows:
            _print_table("monitor: incident causal chain",
                         ["rank", "kind", "subject", "t (s)", "score",
                          "summary"], rows)
        _print_data("monitor: incident", {
            "bundle": bundle,
            "trigger": flight.triggers[0].to_dict(),
            "chain": rows,
        })
        _progress(f"\nSLO GATE: FAIL ({monitor.breach_events} breach "
                  f"event(s); incident bundle: {bundle})")
        return 1
    shutil.rmtree(bundle_dir, ignore_errors=True)
    _progress("\nSLO GATE: OK (no objective breached)")
    return 0


def _bench_trajectory_rows_if_available() -> Optional[List[List[object]]]:
    """Bench-trajectory rows from ``benchmarks/baselines``, if present.

    The report command may run from an installed package or another
    working directory; the trajectory section simply disappears when the
    baselines directory isn't reachable.
    """
    from repro.observability.export import bench_trajectory_rows

    baseline_dir = os.path.join(os.path.dirname(__file__), "..", "..",
                                "benchmarks", "baselines")
    if not os.path.isdir(baseline_dir):
        return None
    snapshots = []
    for name in sorted(os.listdir(baseline_dir)):
        if not (name.startswith("BENCH_") and name.endswith(".json")):
            continue
        try:
            with open(os.path.join(baseline_dir, name),
                      encoding="utf-8") as fh:
                snapshots.append(json.load(fh))
        except (OSError, json.JSONDecodeError):
            continue
    return bench_trajectory_rows(snapshots) if snapshots else None


def cmd_report(quick: bool, scenario: str = "smart-city-partition",
               out: str = "trace-out", strict: bool = False) -> int:
    """Run monitored and write HTML + Prometheus + KPI JSON artifacts."""
    from repro.observability.export import (
        report_inputs,
        write_html_report,
        write_prometheus,
    )

    _progress(f"running monitored scenario {scenario!r}...")
    system, monitor, flight, _ = _run_monitored(quick, scenario, strict)
    system.spans.finish_open(system.sim.now)

    os.makedirs(out, exist_ok=True)
    html_path = os.path.join(out, "resilience-report.html")
    prom_path = os.path.join(out, "metrics.prom")
    kpi_path = os.path.join(out, "kpis.json")
    # One assembly path shared with the live telemetry server, so the
    # written artifacts and the served endpoints can never drift.
    inputs = report_inputs(system, scenario=scenario)
    report = inputs["kpi_report"]
    incidents = None
    if flight.triggered:
        flight.finalize()
        incidents = [{"reason": flight.triggers[0].reason,
                      "time": flight.triggers[0].time,
                      "rows": _incident_rows(flight)}]
    n_bytes = write_html_report(
        html_path, f"Resilience report — {scenario}", report,
        slo_monitor=monitor,
        availability_per_device=inputs["availability"]["per_device"],
        network_kinds=inputs["per_kind"],
        per_source=inputs["per_source"],
        incidents=incidents,
        telemetry=inputs["telemetry"],
        bench_trajectory=_bench_trajectory_rows_if_available(),
        profile=inputs["profile"])
    n_lines = write_prometheus(system.metrics, prom_path,
                               histograms=inputs["histograms"],
                               per_source=inputs["per_source"],
                               telemetry=inputs["telemetry"],
                               profile=inputs["profile"])
    with open(kpi_path, "w", encoding="utf-8") as fh:
        json.dump({"kpis": report.to_dict(), "slos": monitor.to_dict()},
                  fh, indent=2, sort_keys=True, default=str)
    _print_table(
        f"report: {scenario} (horizon {system.sim.now:.0f}s)",
        ["artifact", "path", "size"],
        [["HTML resilience report", html_path, f"{n_bytes}B"],
         ["Prometheus exposition", prom_path, f"{n_lines} lines"],
         ["KPI/SLO JSON", kpi_path, "-"]])
    _progress(f"\nopen {html_path} in a browser")
    return 0


# --------------------------------------------------------------------------- #
# checkpoint / resume / replay: crash-resilient persistence
# --------------------------------------------------------------------------- #
def cmd_checkpoint(quick: bool, scenario: str = "control-outage",
                   out: str = "checkpoint-out", at: Optional[float] = None,
                   seed: Optional[int] = None) -> int:
    from repro.persistence import ScenarioSpec, default_paths, run_to_checkpoint

    _progress(f"running {scenario!r} to its checkpoint point...")
    spec = ScenarioSpec(name=scenario, seed=seed)
    result = run_to_checkpoint(spec, out, at=at)
    checkpoint = result.checkpoint
    paths = default_paths(out)
    checkpoint_path, journal_path = paths["checkpoint"], paths["journal"]
    _print_table(
        f"checkpoint: {scenario}",
        ["field", "value"],
        [["checkpoint", checkpoint_path],
         ["journal", journal_path],
         ["simulated time (s)", checkpoint.time],
         ["events fired", checkpoint.fired],
         ["state digest", checkpoint.digest],
         ["checkpoint size (B)", os.path.getsize(checkpoint_path)]])
    _print_data("checkpoint", {
        "scenario": checkpoint.scenario, "time": checkpoint.time,
        "fired": checkpoint.fired, "digest": checkpoint.digest,
        "path": checkpoint_path, "journal": journal_path,
    })
    _progress(f"\nresume with: python -m repro resume --out {out}")
    return 0


def cmd_resume(quick: bool, out: str = "checkpoint-out",
               until: Optional[float] = None) -> int:
    from repro.persistence import resume_run

    _progress(f"resuming from checkpoint in {out!r}...")
    result = resume_run(directory=out, until=until)
    system = result.system
    report = system.kpi_report()
    _print_table(
        f"resume: {result.spec.name} (horizon {system.sim.now:.0f}s)",
        ["field", "value"],
        [["fast-forwarded events", result.fast_forward_events],
         ["fast-forward wall time (s)", result.fast_forward_s],
         ["events fired (total)", system.sim.fired_count],
         ["final state digest", result.final_digest],
         ["journal", result.journal_path]])
    _print_table(
        "resume: resilience KPIs by disruption vector",
        ["vector", "faults", "resolved", "MTTD mean (s)", "MTTR mean (s)",
         "msgs/disruption", "disrupted (s)"],
        report.vector_rows())
    _print_data("resume: kpis", report.to_dict())
    return 0


def cmd_replay(quick: bool, out: str = "checkpoint-out",
               until: Optional[float] = None) -> int:
    from repro.persistence import (
        default_paths,
        replay_journal,
        write_divergence_report,
    )

    paths = default_paths(out)
    journal_path, divergence_path = paths["journal"], paths["divergence"]
    _progress(f"replaying journal {journal_path!r} from its seed...")
    report = replay_journal(journal_path, until=until)
    rows = [
        ["scenario", report.scenario.get("name", "?")],
        ["journal records checked", report.records_checked],
        ["events replayed", report.events_replayed],
        ["journal complete", report.journal_complete],
        ["verdict", "MATCH" if report.ok else "DIVERGED"],
    ]
    if report.divergence is not None:
        d = report.divergence
        rows.extend([
            ["divergence at record", d.index],
            ["divergence at event", d.fired],
            ["divergence at time (s)", d.time],
            ["diverging field", d.field],
            ["recorded", str(d.recorded)],
            ["replayed", str(d.replayed)],
        ])
    _print_table("replay: deterministic verification", ["field", "value"], rows)
    _print_data("replay", report.to_dict())
    if not report.ok:
        write_divergence_report(report, divergence_path)
        _progress(f"\nREPLAY GATE: FAIL (divergence report: {divergence_path})")
        if report.divergence is not None:
            from repro.observability.flight import capture_divergence_incident

            try:
                bundle = capture_divergence_incident(
                    journal_path, report,
                    os.path.join(out, "incidents", "replay-divergence"))
            except Exception as exc:  # noqa: BLE001 - capture must not
                # mask the gate failure itself
                _progress(f"(incident capture failed: {exc})")
            else:
                _progress(f"incident bundle: {bundle}")
        return 1
    _progress("\nREPLAY GATE: OK (journal matches deterministic re-run)")
    return 0


# --------------------------------------------------------------------------- #
# traffic: serving under overload and retry storms
# --------------------------------------------------------------------------- #
TRAFFIC_SCENARIOS = ("overload", "retry-storm")


def _emit_gate_incident(spec_name: str, params: Dict[str, object],
                        out: str, gate: str,
                        detail: Dict[str, object]) -> Optional[str]:
    """Capture an incident bundle for a failed gate; never masks the failure.

    Re-runs the failing variant's registered scenario spec under a flight
    recorder (journaled, checkpointed at the horizon) so the bundle is
    self-contained and replayable even though the gate itself aggregates
    several variant runs.
    """
    from repro.observability.flight import capture_gate_incident
    from repro.persistence import ScenarioSpec

    directory = os.path.join(out, "incidents", spec_name)
    try:
        bundle = capture_gate_incident(
            ScenarioSpec(name=spec_name, params=dict(params)), directory,
            reason="gate-failure", detail={"gate": gate, **detail})
    except Exception as exc:  # noqa: BLE001 - the gate verdict stands
        _progress(f"(incident capture failed: {exc})")
        return None
    _progress(f"incident bundle: {bundle}")
    return bundle


def cmd_traffic(quick: bool, scenario: str = "overload",
                out: str = "trace-out") -> int:
    """Run every variant of a traffic scenario; gate on the resilient one.

    ``overload`` fails if admission control cannot hold goodput at >=80%
    of capacity; ``retry-storm`` fails if the budget+breaker variant does
    not recover >=90% of offered goodput after the outage heals.
    """
    from repro.traffic.scenarios import (
        OVERLOAD_HORIZON,
        OVERLOAD_VARIANTS,
        RETRY_STORM_HORIZON,
        RETRY_STORM_VARIANTS,
        run_overload,
        run_retry_storm,
    )

    def _round(value: object) -> object:
        return round(value, 4) if isinstance(value, float) else value

    if scenario == "overload":
        horizon = 15.0 if quick else OVERLOAD_HORIZON
        results = []
        for variant in OVERLOAD_VARIANTS:
            _progress(f"running overload variant {variant!r}...")
            results.append(run_overload(variant, horizon=horizon))
        _print_table(
            f"traffic: overload at 1.6x capacity (horizon {horizon:g}s)",
            ["variant", "offered/s", "capacity/s", "goodput/s", "success",
             "p99 (s)", "rejected", "timed out"],
            [[r["variant"], _round(r["offered_rate"]), _round(r["capacity"]),
              _round(r["goodput"]), _round(r["success_ratio"]),
              _round(r["p99_latency"]), r["rejected"], r["timed_out"]]
             for r in results])
        _print_data("traffic: overload", {"results": results})
        held = next(r for r in results if r["variant"] == "admission")
        if held["goodput_vs_capacity"] < 0.8:
            _progress(f"\nTRAFFIC GATE: FAIL (admission goodput at "
                      f"{held['goodput_vs_capacity']:.0%} of capacity)")
            _emit_gate_incident(
                "traffic-overload",
                {"variant": "admission", "horizon": horizon},
                out, gate="traffic-overload",
                detail={"goodput_vs_capacity": held["goodput_vs_capacity"]})
            return 1
        _progress(f"\nTRAFFIC GATE: OK (admission control holds goodput at "
                  f"{held['goodput_vs_capacity']:.0%} of capacity)")
        return 0

    horizon = 35.0 if quick else RETRY_STORM_HORIZON
    results = []
    for variant in RETRY_STORM_VARIANTS:
        _progress(f"running retry-storm variant {variant!r}...")
        results.append(run_retry_storm(variant, horizon=horizon))
    _print_table(
        f"traffic: retry storm across an 8s edge crash (horizon {horizon:g}s)",
        ["variant", "offered/s", "recovered/s", "recovery", "retries",
         "short-circuited", "breaker trips"],
        [[r["variant"], _round(r["offered_rate"]),
          _round(r["recovered_goodput"]), _round(r["recovery_ratio"]),
          r["retries"], r["short_circuited"],
          r.get("breaker", {}).get("trips", "-")]
         for r in results])
    _print_data("traffic: retry-storm", {"results": results})
    resilient = next(r for r in results if r["variant"] == "resilient")
    if resilient["recovery_ratio"] < 0.9:
        _progress(f"\nTRAFFIC GATE: FAIL (post-heal goodput recovered only "
                  f"{resilient['recovery_ratio']:.0%} of offered)")
        _emit_gate_incident(
            "traffic-retry-storm",
            {"variant": "resilient", "horizon": horizon},
            out, gate="traffic-retry-storm",
            detail={"recovery_ratio": resilient["recovery_ratio"]})
        return 1
    _progress(f"\nTRAFFIC GATE: OK (budget+breaker recover "
              f"{resilient['recovery_ratio']:.0%} of offered goodput)")
    return 0


# --------------------------------------------------------------------------- #
# security: resilience against an active adversary
# --------------------------------------------------------------------------- #
SECURITY_SCENARIOS = ("byzantine-gossip", "sybil-flood", "raft-equivocation")


def cmd_security(quick: bool, scenario: str = "byzantine-gossip",
                 out: str = "trace-out") -> int:
    """Run every variant of a security scenario; gate naive-fails/defended-holds.

    ``byzantine-gossip`` fails unless the naive mesh never converges while
    the defended mesh converges within 2x the clean run and quarantines
    the equivocator.  ``sybil-flood`` fails unless the naive run collapses
    below 50% of clean goodput while the defended run holds >=90% with
    zero sybil members.  ``raft-equivocation`` fails unless the naive run
    elects two leaders in one term while the defended run keeps exactly
    one safe leader.
    """
    from repro.security.scenarios import (
        BYZANTINE_GOSSIP_HORIZON,
        BYZANTINE_GOSSIP_VARIANTS,
        RAFT_EQUIVOCATION_VARIANTS,
        SYBIL_FLOOD_VARIANTS,
        run_byzantine_gossip,
        run_raft_equivocation,
        run_sybil_flood,
    )

    def _round(value: object) -> object:
        return round(value, 4) if isinstance(value, float) else value

    if scenario == "byzantine-gossip":
        horizon = 12.0 if quick else BYZANTINE_GOSSIP_HORIZON
        results = []
        for variant in BYZANTINE_GOSSIP_VARIANTS:
            _progress(f"running byzantine-gossip variant {variant!r}...")
            results.append(run_byzantine_gossip(variant, horizon=horizon))
        _print_table(
            f"security: byzantine gossip (horizon {horizon:g}s)",
            ["variant", "converged", "converged at (s)", "honest values",
             "quarantined", "auth drops"],
            [[r["variant"], r["converged"], _round(r["converged_at"]),
              len(r["honest_values"]), ",".join(r["quarantined"]) or "-",
              r["security"]["dropped_auth"]] for r in results])
        _print_data("security: byzantine-gossip", {"results": results})
        by = {r["variant"]: r for r in results}
        clean, naive, defended = (by[v] for v in BYZANTINE_GOSSIP_VARIANTS)
        failures = []
        if naive["converged"]:
            failures.append("naive mesh converged despite the equivocator")
        if not defended["converged"]:
            failures.append("defended mesh never converged")
        elif defended["converged_at"] > 2.0 * clean["converged_at"]:
            failures.append(
                f"defended convergence {defended['converged_at']:.1f}s "
                f"exceeds 2x clean ({clean['converged_at']:.1f}s)")
        if naive["attacker"] not in defended["quarantined"]:
            failures.append("defended run did not quarantine the attacker")
        if failures:
            _progress("\nSECURITY GATE: FAIL (" + "; ".join(failures) + ")")
            _emit_gate_incident(
                "security-byzantine-gossip",
                {"variant": "defended", "horizon": horizon},
                out, gate="security-byzantine-gossip",
                detail={"failures": failures})
            return 1
        _progress(f"\nSECURITY GATE: OK (defended converges at "
                  f"{defended['converged_at']:.1f}s vs clean "
                  f"{clean['converged_at']:.1f}s; naive never converges)")
        return 0

    if scenario == "sybil-flood":
        results = []
        for variant in SYBIL_FLOOD_VARIANTS:
            _progress(f"running sybil-flood variant {variant!r}...")
            results.append(run_sybil_flood(variant))
        _print_table(
            "security: sybil flood against an edge server",
            ["variant", "offered/s", "goodput/s", "success", "sybils",
             "attacker msgs", "quarantined"],
            [[r["variant"], _round(r["offered_rate"]), _round(r["goodput"]),
              _round(r["success_ratio"]), r["sybil_count"],
              r["attacker_messages"], ",".join(r["quarantined"]) or "-"]
             for r in results])
        _print_data("security: sybil-flood", {"results": results})
        by = {r["variant"]: r for r in results}
        clean, naive, defended = (by[v] for v in SYBIL_FLOOD_VARIANTS)
        failures = []
        if naive["goodput"] >= 0.5 * clean["goodput"]:
            failures.append("naive run did not collapse under the flood")
        if defended["goodput"] < 0.9 * clean["goodput"]:
            failures.append(
                f"defended goodput {defended['goodput']:.1f}/s is below "
                f"90% of clean ({clean['goodput']:.1f}/s)")
        if defended["sybil_count"]:
            failures.append(
                f"defended membership admitted {defended['sybil_count']} "
                "sybil identities")
        if not naive["sybil_count"]:
            failures.append("naive membership rejected the sybils "
                            "(attack had no teeth)")
        if failures:
            _progress("\nSECURITY GATE: FAIL (" + "; ".join(failures) + ")")
            _emit_gate_incident(
                "security-sybil-flood", {"variant": "defended"},
                out, gate="security-sybil-flood",
                detail={"failures": failures})
            return 1
        _progress(f"\nSECURITY GATE: OK (defended holds "
                  f"{defended['goodput'] / clean['goodput']:.0%} of clean "
                  f"goodput; naive collapses to "
                  f"{naive['goodput'] / clean['goodput']:.0%})")
        return 0

    results = []
    for variant in RAFT_EQUIVOCATION_VARIANTS:
        _progress(f"running raft-equivocation variant {variant!r}...")
        results.append(run_raft_equivocation(variant))
    _print_table(
        "security: raft equivocation with f=2 of n=5 compromised",
        ["variant", "elections won", "double-win terms", "safety",
         "final leaders", "quarantined"],
        [[r["variant"], r["elections_won"],
          ",".join(str(t) for t in r["double_wins"]) or "-",
          "VIOLATED" if r["safety_violated"] else "safe",
          ",".join(r["final_leaders"]) or "-",
          ",".join(r["quarantined"]) or "-"] for r in results])
    _print_data("security: raft-equivocation", {"results": results})
    by = {r["variant"]: r for r in results}
    naive, defended = (by[v] for v in RAFT_EQUIVOCATION_VARIANTS)
    failures = []
    if not naive["safety_violated"]:
        failures.append("naive run never double-elected "
                        "(attack had no teeth)")
    if defended["safety_violated"]:
        failures.append("defended run elected two leaders in one term")
    if not defended["leader_elected"]:
        failures.append("defended run never elected a leader")
    if failures:
        _progress("\nSECURITY GATE: FAIL (" + "; ".join(failures) + ")")
        _emit_gate_incident(
            "security-raft-equivocation", {"variant": "defended"},
            out, gate="security-raft-equivocation",
            detail={"failures": failures})
        return 1
    _progress(f"\nSECURITY GATE: OK (naive double-elects in "
              f"{len(naive['double_wins'])} term(s); defended keeps one "
              f"safe leader and quarantines "
              f"{','.join(defended['quarantined'])})")
    return 0


# --------------------------------------------------------------------------- #
# profile: subsystem cost attribution and differential profiling
# --------------------------------------------------------------------------- #
PROFILE_VERBS = ("run", "diff")
PROFILE_SCENARIOS = ("smart-city-partition", "mape-outage",
                     "traffic-overload", "traffic-retry-storm")


def cmd_profile_run(quick: bool, scenario: str = "smart-city-partition",
                    out: str = "prof-out",
                    seed: Optional[int] = None) -> int:
    """Run a scenario fully observed and capture a profile snapshot.

    Artifacts under ``out``: ``profile.json`` (the snapshot ``profile
    diff`` consumes), ``kernel.folded`` / ``spans.folded`` (collapsed
    stacks for flamegraph.pl / speedscope), and ``profile.chrome.json``
    (per-plane Perfetto track view).
    """
    from repro.observability.overhead import telemetry_health
    from repro.observability.profile import (
        collapsed_kernel_stacks,
        collapsed_span_stacks,
        profile_plane_rows,
        save_profile,
        write_flamegraph,
        write_profile_chrome_trace,
    )
    from repro.persistence import ScenarioSpec, prepare

    params: Dict[str, object] = {}
    if scenario == "smart-city-partition":
        params["quick"] = quick
    elif quick and scenario == "traffic-overload":
        params["horizon"] = 15.0
    elif quick and scenario == "traffic-retry-storm":
        params["horizon"] = 35.0
    spec = ScenarioSpec(name=scenario, seed=seed, params=params)
    _progress(f"profiling scenario {scenario!r}...")
    prepared = prepare(spec)
    system = prepared.system
    system.enable_observability(meter=True)
    system.run(until=prepared.horizon)
    system.spans.finish_open(system.sim.now)
    profile = system.profile_snapshot(meta={
        "scenario": scenario, "horizon": prepared.horizon,
        "quick": bool(quick)})

    os.makedirs(out, exist_ok=True)
    profile_path = os.path.join(out, "profile.json")
    kernel_folded = os.path.join(out, "kernel.folded")
    span_folded = os.path.join(out, "spans.folded")
    chrome_path = os.path.join(out, "profile.chrome.json")
    save_profile(profile, profile_path)
    n_kernel = write_flamegraph(kernel_folded, collapsed_kernel_stacks(profile))
    n_spans = write_flamegraph(
        span_folded, collapsed_span_stacks(system.spans, now=system.sim.now))
    n_chrome = write_profile_chrome_trace(chrome_path, system.spans,
                                          now=system.sim.now)
    _print_table(
        f"profile: artifacts ({scenario}, horizon {system.sim.now:.0f}s)",
        ["artifact", "path", "records"],
        [["profile snapshot", profile_path, profile["kernel"]["events"]],
         ["kernel flamegraph (collapsed)", kernel_folded, n_kernel],
         ["span flamegraph (collapsed)", span_folded, n_spans],
         ["Chrome trace (planes)", chrome_path, n_chrome]])
    _print_table(
        "profile: subsystem cost attribution",
        ["plane", "events", "wall (ms)", "share", "mean (us)",
         "queue lag (s)"],
        profile_plane_rows(profile))
    critical = profile.get("critical_path")
    if critical:
        _print_table(
            "profile: request critical path",
            ["segment", "summed (s)", "dominant"],
            [[segment, critical["segments"][segment],
              "<-" if segment == critical["dominant_segment"] else ""]
             for segment in ("queue", "service", "network", "retry")])
    health = telemetry_health(system)
    overhead = (health.get("overhead") or {}).get("recording_fraction")
    if overhead is not None:
        _progress(f"\ntelemetry overhead: {overhead:.2%} of run wall time "
                  "(budget: 10%)")
    _print_data("profile", profile)
    _progress(f"\ndiff against another run with: python -m repro profile "
              f"diff {profile_path} <other-profile.json>")
    return 0


def _profiles_in(data: Dict[str, object]) -> Dict[str, Dict[str, object]]:
    """Named profiles inside a loaded JSON file.

    Accepts either a bare ``capture_profile`` snapshot or a regress.py
    BENCH snapshot (whose ``profiles`` section holds one per scenario).
    """
    from repro.observability.profile import profiles_from_bench

    if "benches" in data:
        return profiles_from_bench(data)
    return {"profile": data}


def cmd_profile_diff(path_a: str, path_b: str) -> int:
    """Attribute the delta between two profile snapshots to subsystems."""
    from repro.observability.profile import (
        diff_profiles,
        load_profile,
        render_profile_diff,
    )

    try:
        before, after = load_profile(path_a), load_profile(path_b)
    except (OSError, json.JSONDecodeError) as exc:
        _progress(f"profile: cannot load snapshot: {exc}")
        return 2
    a_profiles, b_profiles = _profiles_in(before), _profiles_in(after)
    common = sorted(set(a_profiles) & set(b_profiles))
    if not common and len(a_profiles) == 1 and len(b_profiles) == 1:
        # One profile on each side under different names: compare them.
        common = [next(iter(a_profiles))]
        b_profiles = {common[0]: next(iter(b_profiles.values()))}
    if not common:
        _progress("profile: the snapshots share no profiled scenarios "
                  f"({sorted(a_profiles)} vs {sorted(b_profiles)})")
        return 2
    for name in common:
        diff = diff_profiles(a_profiles[name], b_profiles[name])
        _print_block(f"profile diff: {name}",
                     f"\n== profile diff: {name} ==\n"
                     + render_profile_diff(diff))
        _print_data(f"profile diff: {name}", diff)
    return 0


# --------------------------------------------------------------------------- #
# incident: inspect and replay captured incident bundles
# --------------------------------------------------------------------------- #
INCIDENT_VERBS = ("show", "replay")


def cmd_incident_show(path: str) -> int:
    """Print a bundle's trigger, causal chain and evidence inventory."""
    from repro.observability.diagnosis import Diagnosis
    from repro.observability.flight import FlightError, load_manifest

    try:
        manifest = load_manifest(path)
    except FlightError as exc:
        _progress(f"incident: {exc}")
        return 2
    trigger = manifest["trigger"]
    barrier = manifest["barrier"]
    scenario = manifest.get("scenario") or {}
    rows = [
        ["bundle", path],
        ["trigger", trigger["reason"]],
        ["trigger time (s)", trigger["time"]],
        ["trigger detail", json.dumps(trigger.get("detail", {}),
                                      sort_keys=True, default=str)],
        ["scenario", scenario.get("name", "-")],
        ["barrier time (s)", barrier["time"]],
        ["barrier events", barrier["fired"]],
        ["barrier digest", barrier["digest"][:16] + "..."],
        ["replayable", "yes" if manifest.get("evidence", {}).get("checkpoint")
         else "no (no checkpoint)"],
    ]
    for extra in manifest.get("additional_triggers", []):
        rows.append([f"also triggered ({extra['reason']})",
                     f"t={extra['time']:g}s"])
    _print_table("incident: summary", ["field", "value"], rows)
    diagnosis = Diagnosis.from_dict(manifest.get("diagnosis", {}))
    if diagnosis.chain:
        _print_table(
            f"incident: ranked causal chain (window {diagnosis.window:g}s)",
            ["rank", "kind", "subject", "t (s)", "score", "summary"],
            diagnosis.table_rows())
    evidence = manifest.get("evidence", {})
    if evidence:
        _print_table("incident: evidence inventory", ["artifact", "records"],
                     [[key, value] for key, value in sorted(evidence.items())])
    _print_data("incident: manifest", manifest)
    return 0


def cmd_incident_replay(path: str) -> int:
    """Deterministically reproduce a bundle's triggering window."""
    from repro.observability.flight import FlightError, replay_incident
    from repro.persistence import CheckpointError

    _progress(f"replaying incident bundle {path!r}...")
    try:
        result = replay_incident(path)
    except FlightError as exc:
        _progress(f"incident: {exc}")
        return 2
    except CheckpointError as exc:
        _progress(f"\nINCIDENT REPLAY: DIVERGED ({exc})")
        return 1
    _print_table(
        "incident replay: deterministic verification",
        ["field", "value"],
        [["scenario", result["spec"].name],
         ["barrier time (s)", result["barrier_time"]],
         ["events fast-forwarded", result["barrier_fired"]],
         ["state digest", result["digest"][:16] + "..."],
         ["replay wall time (s)", result["replay_wall_s"]],
         ["verdict", "MATCH"]])
    _print_data("incident replay", {
        "scenario": result["spec"].to_dict(),
        "barrier_time": result["barrier_time"],
        "barrier_fired": result["barrier_fired"],
        "digest": result["digest"],
    })
    _progress("\nINCIDENT REPLAY: MATCH (triggering window reproduced "
              "bit-for-bit)")
    return 0


# --------------------------------------------------------------------------- #
# chaos: seeded spec-space search, shrinking and the replay corpus
# --------------------------------------------------------------------------- #
CHAOS_VERBS = ("run", "shrink", "corpus")
SCENARIOS_VERBS = ("list",)

#: The documented demo seed (EXPERIMENTS.md CHAOS-1): this campaign
#: rediscovers the retry-storm metastable collapse on a naive config.
CHAOS_DEMO_SEED = 84
CHAOS_DEMO_RUNS = 6


def cmd_chaos_run(quick: bool, seed: Optional[int] = None,
                  runs: Optional[int] = None, out: str = "chaos-out",
                  corpus: str = "corpus") -> int:
    """Run a seeded campaign; shrink and bundle every violation."""
    from repro.chaos import ChaosCampaign
    from repro.observability.export import write_chaos_report

    seed = CHAOS_DEMO_SEED if seed is None else seed
    if runs is None:
        runs = 3 if quick else CHAOS_DEMO_RUNS
    _progress(f"chaos campaign: seed {seed}, {runs} sampled specs, "
              f"corpus -> {corpus!r}...")
    campaign = ChaosCampaign(seed=seed, runs=runs, shrink=True,
                             corpus_dir=corpus, progress=_progress)
    result = campaign.run()
    payload = result.to_dict()
    _print_table(
        "chaos campaign: cases",
        ["case", "spec", "digest", "events", "verdict"],
        [[index, case.spec.describe(), case.spec.digest(), case.events,
          ", ".join(case.violations) if case.violated else "ok"]
         for index, case in enumerate(result.cases)])
    if result.findings:
        _print_table(
            "chaos campaign: shrunk findings",
            ["found", "shrunk to", "attempts", "violations", "bundle"],
            [[f.case.spec.describe(), f.shrunk.describe(),
              f.shrink_attempts, ", ".join(f.shrunk_violations),
              f.bundle or "-"] for f in result.findings])
    _print_data("chaos campaign", payload)
    os.makedirs(out, exist_ok=True)
    report_path = os.path.join(out, "chaos-report.html")
    write_chaos_report(report_path, f"Chaos campaign (seed {seed})",
                       campaign=payload)
    _progress(f"\nchaos: {result.violation_count}/{len(result.cases)} "
              f"specs violated in {result.wall_s:.1f}s; "
              f"report: {report_path}")
    return 0


def cmd_chaos_shrink(path: str, out: str = "chaos-out") -> int:
    """Minimize one failing spec (a spec.json file or a bundle dir)."""
    from repro.chaos import ChaosSpec, shrink_spec

    spec_path = (os.path.join(path, "spec.json")
                 if os.path.isdir(path) else path)
    try:
        with open(spec_path, encoding="utf-8") as fh:
            spec = ChaosSpec.from_json(fh.read())
    except (OSError, ValueError, KeyError) as exc:
        _progress(f"chaos shrink: cannot load a spec from {path!r} ({exc})")
        return 2
    _progress(f"shrinking {spec.describe()} ({spec.axis_count()} axes)...")
    try:
        report = shrink_spec(spec)
    except ValueError as exc:
        _progress(f"chaos shrink: {exc}")
        return 1
    os.makedirs(out, exist_ok=True)
    shrunk_path = os.path.join(out, f"chaos-shrunk-{report.spec.digest()}.json")
    with open(shrunk_path, "w", encoding="utf-8") as fh:
        fh.write(report.spec.to_json() + "\n")
    _print_table(
        "chaos shrink: minimal failing spec",
        ["field", "value"],
        [["found", spec.describe()],
         ["found axes", spec.axis_count()],
         ["shrunk", report.spec.describe()],
         ["shrunk axes", report.spec.axis_count()],
         ["attempts", report.attempts],
         ["violations", ", ".join(report.violations)],
         ["spec", shrunk_path]])
    _print_data("chaos shrink", {
        "found": spec.to_dict(), "shrunk": report.spec.to_dict(),
        "shrunk_digest": report.spec.digest(),
        "attempts": report.attempts,
        "violations": list(report.violations),
        "accepted": list(report.accepted), "spec_path": shrunk_path})
    return 0


def cmd_chaos_corpus(corpus: str = "corpus") -> int:
    """Replay every corpus bundle; exit nonzero on any divergence."""
    from repro.chaos import replay_corpus

    _progress(f"replaying failure corpus {corpus!r}...")
    verdicts, ok = replay_corpus(corpus)
    payload = {"bundles": [v.to_dict() for v in verdicts], "ok": ok}
    _print_data("chaos corpus", payload)
    if not verdicts:
        _progress("chaos corpus: empty (nothing to replay)")
        return 0
    _print_table(
        "chaos corpus: replay verification",
        ["bundle", "barrier (s)", "events", "verdict"],
        [[os.path.basename(v.bundle),
          "-" if v.barrier_time is None else v.barrier_time,
          "-" if v.barrier_fired is None else v.barrier_fired,
          "MATCH" if v.ok else (v.error or "FAILED")] for v in verdicts])
    if ok:
        _progress(f"\nCHAOS CORPUS: MATCH ({len(verdicts)} bundle(s) "
                  "reproduced bit-for-bit)")
        return 0
    failed = sum(1 for v in verdicts if not v.ok)
    _progress(f"\nCHAOS CORPUS: DIVERGED ({failed}/{len(verdicts)} "
              "bundle(s) failed to reproduce)")
    return 1


def cmd_scenarios_list() -> int:
    """Print the unified cross-plane scenario registry."""
    from repro.scenarios import catalog

    infos = catalog()
    _print_table(
        "scenarios: unified registry",
        ["name", "plane", "variants", "description"],
        [[info.name, info.plane,
          ", ".join(info.variants) if info.variants else "-",
          info.description] for info in infos])
    _print_data("scenarios",
                {"scenarios": [info.to_dict() for info in infos]})
    return 0


# --------------------------------------------------------------------------- #
# shard: parallel multi-domain federation runs
# --------------------------------------------------------------------------- #
SHARD_VERBS = ("run", "verify", "resume")


def _shard_report(title: str, result, out: str) -> int:
    """Print a federation result; write the metrics/report artifacts."""
    from repro.observability.export import write_html_report, write_prometheus
    from repro.simulation.metrics import MetricsRecorder

    _print_table(
        f"{title}: per-shard statistics",
        ["shard", "domains", "events", "wall (s)", "sync wait (s)",
         "mailbox peak", "injected", "digest"],
        [[row["shard"], ", ".join(row["domains"]), row["events"],
          f"{row['wall_s']:.2f}", f"{row['sync_wait_s']:.2f}",
          row["mailbox_peak"], row["injected"],
          (row["digest"] or "-")[:16]] for row in result.shard_rows()])
    _print_data(title, result.to_dict())
    if not result.complete:
        _progress(f"\n{title}: stopped mid-run (emulated kill); resume with "
                  f"'python -m repro shard resume --out {out}'")
        return 0
    summary = result.report_summary()
    prom_path = os.path.join(out, "metrics.prom")
    html_path = os.path.join(out, "report.html")
    # A federation has no single-system recorder: the shard families
    # carry the whole exposition, over an empty recorder.
    write_prometheus(MetricsRecorder(), prom_path, shards=summary)
    write_html_report(html_path, f"Federation: {result.spec.name}", None,
                      shards=summary)
    resumed = ("" if result.resumed_from_window is None
               else f" (resumed from window {result.resumed_from_window})")
    _progress(f"\n{title}: {result.shards} shard(s) x {result.windows} "
              f"window(s), {result.events} events, "
              f"{result.devices:,} devices in {result.wall_s:.1f}s "
              f"wall{resumed}")
    _progress(f"federation digest: {result.federation_digest}")
    _progress(f"report: {html_path}; metrics: {prom_path}; verify with "
              f"'python -m repro shard verify --out {out}'")
    return 0


def cmd_shard_run(quick: bool, scenario: str = "smart-city-federated",
                  shards: int = 4, workers: Optional[int] = None,
                  out: str = "shard-out", seed: Optional[int] = None,
                  checkpoint_every: int = 10,
                  stop_after: Optional[int] = None) -> int:
    """Run a federated scenario partitioned across shard processes."""
    from repro.persistence import ScenarioSpec
    from repro.shard import ShardedSimulator

    params: Dict[str, object] = {}
    if quick:
        params["quick"] = True
    spec = ScenarioSpec(name=scenario, seed=seed, params=params)
    driver = ShardedSimulator(spec, shards=shards, workers=workers,
                              out_dir=out, checkpoint_every=checkpoint_every,
                              stop_after_window=stop_after)
    _progress(f"shard run: {scenario} across {driver.shards} shard(s), "
              f"{driver.workers} worker process(es) -> {out!r}...")
    result = driver.run()
    return _shard_report("shard run", result, out)


def cmd_shard_resume(out: str = "shard-out",
                     workers: Optional[int] = None) -> int:
    """Resume a killed federation run from its shard checkpoints."""
    from repro.persistence import CheckpointError
    from repro.shard import ShardedSimulator

    _progress(f"shard resume: fast-forwarding shards in {out!r}...")
    try:
        result = ShardedSimulator.resume(out, workers=workers)
    except CheckpointError as exc:
        _progress(f"shard resume: {exc}")
        return 2
    return _shard_report("shard resume", result, out)


def cmd_shard_verify(out: str = "shard-out",
                     workers: Optional[int] = None) -> int:
    """Replay every shard journal; verify the federation digest chain."""
    from repro.persistence import CheckpointError
    from repro.shard import verify_federation

    _progress(f"shard verify: replaying shards in {out!r}...")
    try:
        report = verify_federation(out, workers=workers or 1)
    except (CheckpointError, OSError, ValueError, KeyError) as exc:
        _progress(f"shard verify: {exc}")
        return 2
    _print_table(
        "shard verify: per-shard replay",
        ["shard", "records", "events", "digest", "verdict"],
        [[r["shard"], r["records_checked"], r["events"],
          (r["digest"] or "-")[:16],
          "MATCH" if r["ok"] else "DIVERGED"] for r in report["reports"]])
    _print_data("shard verify", report)
    if report["ok"]:
        _progress(f"\nSHARD VERIFY: MATCH ({report['shards']} shard(s) "
                  "reproduced bit-for-bit; federation digest chain intact)")
        return 0
    _progress("\nSHARD VERIFY: DIVERGED (see per-shard verdicts above)")
    return 1


def cmd_live(quick: bool, scenario: str = "traffic-retry-storm",
             out: str = "live-out", speed: float = 1.0,
             port: int = 8321, checkpoint_every: float = 10.0,
             reload_dir: Optional[str] = None,
             until: Optional[float] = None,
             seed: Optional[int] = None) -> int:
    """Run a scenario as a long-lived, operable service.

    Pacing, serving and checkpointing are all telemetry-only: the
    journal in ``--out`` stays byte-identical to a batch
    ``run_scenario`` of the same spec.  SIGINT/SIGTERM drain cleanly
    (final checkpoint + incident flush, exit ``128 + signum``); a
    SIGKILL'd service restarted on the same ``--out`` resumes from its
    last periodic checkpoint.
    """
    from repro.live import LiveService
    from repro.persistence import ScenarioSpec

    params: Dict[str, object] = {}
    if quick and scenario == "smart-city-partition":
        params["quick"] = True
    spec = ScenarioSpec(name=scenario, seed=seed, params=params)
    service = LiveService(spec, out, speed=speed, port=port,
                          checkpoint_every=checkpoint_every,
                          reload_dir=reload_dir, until=until)
    service.start(log=_progress)
    _progress(f"live: {scenario} at speed {speed:g} "
              f"(horizon {service.horizon:g}s); Ctrl-C drains cleanly")

    # The batch handlers raise out of the run; a service instead drains
    # at the next event boundary so no checkpoint ever captures a
    # half-executed event.
    received: Dict[str, int] = {}

    def _drain_handler(signum: int, _frame: object) -> None:
        received["signum"] = signum
        service.request_drain()

    previous = []
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            previous.append((signum, signal.signal(signum, _drain_handler)))
        except (ValueError, OSError):  # pragma: no cover - non-main thread
            pass
    try:
        outcome = service.run()
    finally:
        for signum, handler in previous:
            signal.signal(signum, handler)

    stats = service.executor.stats
    _print_table(
        f"live: {scenario} ({outcome})",
        ["signal", "value"],
        [["outcome", outcome],
         ["resumed from checkpoint", "yes" if service.resumed else "no"],
         ["simulated time (s)", service.system.sim.now],
         ["events fired", service.system.sim.fired_count],
         ["speed factor", speed],
         ["wall time (s)", stats.wall_s],
         ["pacing sleep (s)", stats.slept_s],
         ["max pacing lag (s)", stats.max_lag_s],
         ["checkpoints written", service.checkpoints_written],
         ["hot loads applied", len(service.hot_loads_applied)]])
    _print_data("live", {
        "outcome": outcome,
        "resumed": service.resumed,
        "checkpoints": service.checkpoints_written,
        "hot_loads": service.hot_loads_applied,
        "pacing": stats.to_dict(),
    })
    if outcome == "drained" and "signum" in received:
        return 128 + received["signum"]
    return 0


COMMANDS: Dict[str, Callable[[bool], None]] = {
    "maturity": cmd_maturity,
    "landscape": cmd_landscape,
    "verify": cmd_verify,
    "control": cmd_control,
    "dataflows": cmd_dataflows,
    "mape": cmd_mape,
}


def main(argv: List[str] = None) -> int:
    global _JSON_COLLECTOR
    from repro.persistence import UnknownScenarioError, scenario_names

    persistence_scenarios = tuple(scenario_names())
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Run the resilient-IoT reproduction experiments.",
    )
    parser.add_argument("command",
                        choices=sorted(COMMANDS) + ["all", "trace", "monitor",
                                                    "report", "checkpoint",
                                                    "resume", "replay",
                                                    "traffic", "security",
                                                    "incident", "profile",
                                                    "chaos", "scenarios",
                                                    "live", "shard"],
                        help="which experiment to run")
    parser.add_argument("scenario", nargs="?",
                        choices=sorted(set(TRACE_SCENARIOS)
                                       | set(persistence_scenarios)
                                       | set(TRAFFIC_SCENARIOS)
                                       | set(SECURITY_SCENARIOS)
                                       | set(INCIDENT_VERBS)
                                       | set(PROFILE_VERBS)
                                       | set(CHAOS_VERBS)
                                       | set(SCENARIOS_VERBS)
                                       | set(SHARD_VERBS)),
                        default=None,
                        help="scenario for the trace/monitor/report/"
                             "checkpoint/traffic/security commands, "
                             "show|replay for the incident command, "
                             "run|diff for the profile command, "
                             "run|shrink|corpus for the chaos command, "
                             "list for the scenarios command, or "
                             "run|verify|resume for the shard command")
    parser.add_argument("path", nargs="?", default=None,
                        help="incident: path to a captured incident bundle; "
                             "profile run / shard run: scenario name; "
                             "profile diff: first snapshot")
    parser.add_argument("path2", nargs="?", default=None,
                        help="profile diff: second snapshot")
    parser.add_argument("--quick", action="store_true",
                        help="smaller/faster variants of the experiments")
    parser.add_argument("--json", action="store_true",
                        help="emit tables as JSON instead of text")
    parser.add_argument("--out", default=None,
                        help="output directory for trace/report/checkpoint "
                             "artifacts")
    parser.add_argument("--strict", action="store_true",
                        help="monitor/report: add strict SLOs (cloud "
                             "availability) that sustained outages breach")
    parser.add_argument("--at", type=float, default=None,
                        help="checkpoint: simulated time to checkpoint at "
                             "(default: the scenario's crash point or "
                             "mid-horizon)")
    parser.add_argument("--seed", type=int, default=None,
                        help="checkpoint / profile run: override the "
                             "scenario seed")
    parser.add_argument("--until", type=float, default=None,
                        help="resume/replay: stop at this simulated time "
                             "instead of the scenario horizon")
    parser.add_argument("--runs", type=int, default=None,
                        help="chaos run: number of sampled specs "
                             f"(default {CHAOS_DEMO_RUNS}, 3 with --quick)")
    parser.add_argument("--corpus", default="corpus",
                        help="chaos: failure-corpus directory "
                             "(default 'corpus')")
    parser.add_argument("--speed", type=float, default=1.0,
                        help="live: simulated seconds per wall second "
                             "(default 1.0 = real time, 0 = unpaced)")
    parser.add_argument("--port", type=int, default=8321,
                        help="live: telemetry server port (default 8321, "
                             "0 = ephemeral)")
    parser.add_argument("--checkpoint-every", type=float, default=10.0,
                        dest="checkpoint_every",
                        help="live: wall seconds between periodic "
                             "checkpoints; shard run: lookahead windows "
                             "between barrier checkpoints (default 10)")
    parser.add_argument("--reload-dir", default=None, dest="reload_dir",
                        help="live: directory polled for hot-load payload "
                             "JSON files (fault schedules, chaos specs)")
    parser.add_argument("--shards", type=int, default=4,
                        help="shard run: number of domain shards "
                             "(default 4; 1 = unsharded reference)")
    parser.add_argument("--workers", type=int, default=None,
                        help="shard: worker processes (default: one per "
                             "shard for run/resume, serial for verify)")
    parser.add_argument("--stop-after", type=int, default=None,
                        dest="stop_after",
                        help="shard run: abort after this lookahead window "
                             "(emulated mid-run kill; resume with "
                             "'shard resume')")
    args = parser.parse_args(argv)
    if args.command in ("trace", "monitor", "report"):
        if args.scenario is None:
            args.scenario = "smart-city-partition"
        elif args.scenario not in TRACE_SCENARIOS:
            parser.error(f"scenario {args.scenario!r} is not available for "
                         f"{args.command!r} (choose from {TRACE_SCENARIOS})")
    elif args.command == "checkpoint":
        if args.scenario is None:
            args.scenario = "control-outage"
        elif args.scenario not in persistence_scenarios:
            parser.error(f"scenario {args.scenario!r} is not available for "
                         "'checkpoint' (choose from "
                         f"{persistence_scenarios})")
    elif args.command == "traffic":
        if args.scenario is None:
            args.scenario = "overload"
        elif args.scenario not in TRAFFIC_SCENARIOS:
            parser.error(f"scenario {args.scenario!r} is not available for "
                         f"'traffic' (choose from {TRAFFIC_SCENARIOS})")
    elif args.command == "security":
        if args.scenario is None:
            args.scenario = "byzantine-gossip"
        elif args.scenario not in SECURITY_SCENARIOS:
            parser.error(f"scenario {args.scenario!r} is not available for "
                         f"'security' (choose from {SECURITY_SCENARIOS})")
    elif args.command == "incident":
        if args.scenario not in INCIDENT_VERBS:
            parser.error("incident needs a verb: "
                         f"choose from {INCIDENT_VERBS}")
        if args.path is None:
            parser.error(f"incident {args.scenario} needs a bundle path")
    elif args.command == "profile":
        if args.scenario not in PROFILE_VERBS:
            parser.error(f"profile needs a verb: choose from {PROFILE_VERBS}")
        if args.scenario == "run":
            if args.path is None:
                args.path = "smart-city-partition"
            elif args.path not in PROFILE_SCENARIOS:
                parser.error(f"scenario {args.path!r} is not available for "
                             f"'profile run' (choose from {PROFILE_SCENARIOS})")
        elif args.path is None or args.path2 is None:
            parser.error("profile diff needs two snapshot paths")
    elif args.command == "chaos":
        if args.scenario is None:
            args.scenario = "run"
        elif args.scenario not in CHAOS_VERBS:
            parser.error(f"chaos needs a verb: choose from {CHAOS_VERBS}")
        if args.scenario == "shrink" and args.path is None:
            parser.error("chaos shrink needs a spec.json (or bundle) path")
    elif args.command == "scenarios":
        if args.scenario is None:
            args.scenario = "list"
        elif args.scenario not in SCENARIOS_VERBS:
            parser.error("scenarios needs a verb: "
                         f"choose from {SCENARIOS_VERBS}")
    elif args.command == "live":
        if args.scenario is None:
            args.scenario = "traffic-retry-storm"
        elif args.scenario not in persistence_scenarios:
            parser.error(f"scenario {args.scenario!r} is not available for "
                         f"'live' (choose from {persistence_scenarios})")
    elif args.command == "shard":
        if args.scenario is None:
            args.scenario = "run"
        elif args.scenario not in SHARD_VERBS:
            parser.error(f"shard needs a verb: choose from {SHARD_VERBS}")
        if args.scenario == "run":
            if args.path is None:
                args.path = "smart-city-federated"
            elif args.path not in persistence_scenarios:
                parser.error(f"scenario {args.path!r} is not available for "
                             "'shard run' (choose from "
                             f"{persistence_scenarios})")
    if args.out is None:
        args.out = ("checkpoint-out"
                    if args.command in ("checkpoint", "resume", "replay")
                    else "prof-out" if args.command == "profile"
                    else "chaos-out" if args.command == "chaos"
                    else "live-out" if args.command == "live"
                    else "shard-out" if args.command == "shard"
                    else "trace-out")
    if args.json:
        _JSON_COLLECTOR = []
    _install_signal_handlers()
    exit_code = 0
    try:
        if args.command == "all":
            for name in ("maturity", "landscape", "verify", "control",
                         "dataflows", "mape"):
                COMMANDS[name](args.quick)
        elif args.command == "trace":
            cmd_trace(args.quick, scenario=args.scenario, out=args.out)
        elif args.command == "monitor":
            exit_code = cmd_monitor(args.quick, scenario=args.scenario,
                                    strict=args.strict, out=args.out)
        elif args.command == "report":
            exit_code = cmd_report(args.quick, scenario=args.scenario,
                                   out=args.out, strict=args.strict)
        elif args.command == "checkpoint":
            exit_code = cmd_checkpoint(args.quick, scenario=args.scenario,
                                       out=args.out, at=args.at,
                                       seed=args.seed)
        elif args.command == "resume":
            exit_code = cmd_resume(args.quick, out=args.out, until=args.until)
        elif args.command == "replay":
            exit_code = cmd_replay(args.quick, out=args.out, until=args.until)
        elif args.command == "traffic":
            exit_code = cmd_traffic(args.quick, scenario=args.scenario,
                                    out=args.out)
        elif args.command == "security":
            exit_code = cmd_security(args.quick, scenario=args.scenario,
                                     out=args.out)
        elif args.command == "incident":
            exit_code = (cmd_incident_show(args.path)
                         if args.scenario == "show"
                         else cmd_incident_replay(args.path))
        elif args.command == "profile":
            exit_code = (cmd_profile_run(args.quick, scenario=args.path,
                                         out=args.out, seed=args.seed)
                         if args.scenario == "run"
                         else cmd_profile_diff(args.path, args.path2))
        elif args.command == "chaos":
            if args.scenario == "run":
                exit_code = cmd_chaos_run(args.quick, seed=args.seed,
                                          runs=args.runs, out=args.out,
                                          corpus=args.corpus)
            elif args.scenario == "shrink":
                exit_code = cmd_chaos_shrink(args.path, out=args.out)
            else:
                exit_code = cmd_chaos_corpus(args.corpus)
        elif args.command == "scenarios":
            exit_code = cmd_scenarios_list()
        elif args.command == "live":
            exit_code = cmd_live(args.quick, scenario=args.scenario,
                                 out=args.out, speed=args.speed,
                                 port=args.port,
                                 checkpoint_every=args.checkpoint_every,
                                 reload_dir=args.reload_dir,
                                 until=args.until, seed=args.seed)
        elif args.command == "shard":
            if args.scenario == "run":
                exit_code = cmd_shard_run(
                    args.quick, scenario=args.path, shards=args.shards,
                    workers=args.workers, out=args.out, seed=args.seed,
                    checkpoint_every=int(args.checkpoint_every),
                    stop_after=args.stop_after)
            elif args.scenario == "verify":
                exit_code = cmd_shard_verify(out=args.out,
                                             workers=args.workers)
            else:
                exit_code = cmd_shard_resume(out=args.out,
                                             workers=args.workers)
        else:
            COMMANDS[args.command](args.quick)
        if _JSON_COLLECTOR is not None:
            print(json.dumps({"tables": _JSON_COLLECTOR,
                              "exit_code": exit_code}, indent=2,
                             default=str))
    except _HarnessSignal as exc:
        # A batch command was interrupted (SIGINT/SIGTERM).  Flush any
        # armed flight recorder as a harness-crash incident before
        # exiting with the conventional 128+signum code.
        exit_code = 128 + exc.signum
        bundles = _flush_signal_incidents(exc.signum)
        _progress(f"interrupted by signal {exc.signum}; exiting "
                  f"{exit_code}")
        for bundle in bundles:
            _progress(f"  harness-crash incident captured: {bundle}")
        _print_data("interrupted", {"signal": exc.signum,
                                    "exit_code": exit_code,
                                    "bundles": bundles})
        if _JSON_COLLECTOR is not None:
            print(json.dumps({"tables": _JSON_COLLECTOR,
                              "exit_code": exit_code}, indent=2,
                             default=str))
    except UnknownScenarioError as exc:
        # Journals, checkpoints and bundles can name scenarios this
        # checkout no longer registers; list what *is* available instead
        # of dumping a KeyError traceback.
        exit_code = 2
        _progress(f"error: unknown scenario {exc.name!r}")
        _progress("available scenarios (python -m repro scenarios list):")
        for name in exc.available:
            _progress(f"  {name}")
        _print_data("error", {"error": f"unknown scenario {exc.name!r}",
                              "available": list(exc.available)})
        if _JSON_COLLECTOR is not None:
            print(json.dumps({"tables": _JSON_COLLECTOR,
                              "exit_code": exit_code}, indent=2,
                             default=str))
    finally:
        _JSON_COLLECTOR = None
    return exit_code


if __name__ == "__main__":
    raise SystemExit(main())

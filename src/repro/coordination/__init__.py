"""Decentralized coordination (paper §V, Fig. 3).

"For resilient IoT, coordination presupposes a general absence of
centralized control, instead leveraging cooperation between software
components, in a peer-to-peer fashion."  This package provides the
distributed-systems mechanisms §V.B says must be adopted:

* failure detection -- heartbeat and phi-accrual detectors
  (:mod:`repro.coordination.failure_detector`);
* membership -- SWIM-style dissemination of join/leave/suspect
  (:mod:`repro.coordination.membership`);
* epidemic state dissemination -- push-pull gossip
  (:mod:`repro.coordination.gossip`);
* leader election -- bully algorithm (:mod:`repro.coordination.election`);
* consensus -- Raft with leader election, log replication and commit
  (:mod:`repro.coordination.raft`);
* service registry -- replicated, gossip-backed service discovery
  (:mod:`repro.coordination.registry`).
"""

from repro.coordination.failure_detector import (
    HeartbeatFailureDetector,
    PhiAccrualFailureDetector,
)
from repro.coordination.membership import MemberState, MembershipProtocol
from repro.coordination.gossip import GossipNode, GossipValue
from repro.coordination.election import BullyElection
from repro.coordination.raft import RaftNode, RaftRole, RaftCluster
from repro.coordination.registry import ServiceRegistry, ServiceRecord
from repro.coordination.lease import (
    LeaseKeeper,
    LeaseManager,
    LeaseState,
    start_lease_keeper,
)

__all__ = [
    "BullyElection",
    "GossipNode",
    "GossipValue",
    "HeartbeatFailureDetector",
    "LeaseKeeper",
    "LeaseManager",
    "LeaseState",
    "MemberState",
    "MembershipProtocol",
    "PhiAccrualFailureDetector",
    "RaftCluster",
    "RaftNode",
    "RaftRole",
    "ServiceRecord",
    "ServiceRegistry",
    "start_lease_keeper",
]

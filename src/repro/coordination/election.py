"""Bully leader election.

Garcia-Molina's bully algorithm over the datagram transport: the highest
node id that answers wins.  Elections trigger on demand (typically from a
failure-detector suspicion of the current leader).  Used by the ML3
archetype, where each edge site elects a local coordinator, and contrasted
with Raft (which elects by quorum and tolerates partitions safely).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.network.transport import Message, Network
from repro.persistence.snapshot import event_ref, restore_event_ref
from repro.simulation.kernel import Simulator


class BullyElection:
    """One node's participation in bully elections among ``peers``.

    Parameters
    ----------
    response_timeout:
        How long to wait for higher-id nodes to answer before declaring
        ourselves leader.
    on_leader:
        Callback ``(leader_id)`` whenever this node learns a new leader.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        node_id: str,
        peers: List[str],
        response_timeout: float = 1.0,
        on_leader: Optional[Callable[[str], None]] = None,
    ) -> None:
        self.sim = sim
        self.network = network
        self.node_id = node_id
        self.peers = sorted(p for p in peers if p != node_id)
        self.response_timeout = response_timeout
        self.on_leader = on_leader
        self.leader: Optional[str] = None
        self.elections_started = 0
        self._election_round = 0
        self._awaiting_round: Optional[int] = None
        self._got_answer = False
        self._deadline_event = None
        self._deadline_round: Optional[int] = None
        network.register(node_id, "bully.election", self._on_election)
        network.register(node_id, "bully.answer", self._on_answer)
        network.register(node_id, "bully.coordinator", self._on_coordinator)

    # -- public API ------------------------------------------------------ #
    def start_election(self) -> None:
        """Challenge all higher-id nodes; become leader if none answers."""
        if not self.network.node_up(self.node_id):
            return
        self.elections_started += 1
        self._election_round += 1
        round_id = self._election_round
        self._awaiting_round = round_id
        self._got_answer = False
        higher = [p for p in self.peers if p > self.node_id]
        if not higher:
            self._become_leader()
            return
        for peer in higher:
            self.network.send(self.node_id, peer, "bully.election",
                              payload={"from": self.node_id}, size_bytes=48)
        self._deadline_round = round_id
        self._deadline_event = self.sim.schedule(
            self.response_timeout,
            lambda _s, r=round_id: self._response_deadline(r),
            label=f"bully-timeout:{self.node_id}",
        )

    @property
    def is_leader(self) -> bool:
        return self.leader == self.node_id

    # -- internals ----------------------------------------------------------- #
    def _response_deadline(self, round_id: int) -> None:
        if self._awaiting_round != round_id:
            return
        self._awaiting_round = None
        if not self._got_answer:
            self._become_leader()
        # If an answer arrived, a higher node has taken over the election;
        # we wait for its coordinator announcement (or re-elect later on
        # suspicion).

    def _become_leader(self) -> None:
        self._set_leader(self.node_id)
        for peer in self.peers:
            self.network.send(self.node_id, peer, "bully.coordinator",
                              payload={"leader": self.node_id}, size_bytes=48)

    def _set_leader(self, leader: str) -> None:
        changed = leader != self.leader
        self.leader = leader
        if changed and self.on_leader is not None:
            self.on_leader(leader)

    def _on_election(self, message: Message) -> None:
        challenger = message.payload["from"]
        if challenger < self.node_id:
            self.network.send(self.node_id, challenger, "bully.answer",
                              payload={"from": self.node_id}, size_bytes=48)
            # A lower node thinks the leader is gone; take over the election.
            if self._awaiting_round is None:
                self.start_election()

    def _on_answer(self, _message: Message) -> None:
        self._got_answer = True

    def _on_coordinator(self, message: Message) -> None:
        self._awaiting_round = None
        self._set_leader(message.payload["leader"])

    # -- persistence ----------------------------------------------------------#
    def snapshot_state(self) -> Dict[str, Any]:
        """Election state including any pending response deadline.

        The deadline callback closes over its round id, which cannot be
        serialized -- so the round id rides along in the snapshot and
        ``restore_state`` rebuilds an equivalent closure.
        """
        return {
            "leader": self.leader,
            "elections_started": self.elections_started,
            "election_round": self._election_round,
            "awaiting_round": self._awaiting_round,
            "got_answer": self._got_answer,
            "deadline": event_ref(self._deadline_event),
            "deadline_round": self._deadline_round,
        }

    def restore_state(self, state: Dict[str, Any]) -> None:
        self.leader = state["leader"]
        self.elections_started = int(state["elections_started"])
        self._election_round = int(state["election_round"])
        self._awaiting_round = state["awaiting_round"]
        self._got_answer = bool(state["got_answer"])
        self._deadline_round = state["deadline_round"]
        round_id = self._deadline_round
        self._deadline_event = restore_event_ref(
            self.sim, state["deadline"],
            lambda _s, r=round_id: self._response_deadline(r))

"""Failure detectors.

Two classic detectors, both purely message-driven so they work over the
unreliable datagram transport:

* :class:`HeartbeatFailureDetector` -- fixed timeout on periodic
  heartbeats; simple and predictable, used inside Raft and bully election.
* :class:`PhiAccrualFailureDetector` -- Hayashibara et al.'s accrual
  detector: instead of a boolean, it outputs a suspicion level ``phi``
  computed from the distribution of observed inter-arrival times, which
  adapts to varying link latency (the paper's "latency" resilience factor).
"""

from __future__ import annotations

import math
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional

from repro.network.transport import Network
from repro.persistence.snapshot import event_ref, restore_event_ref
from repro.simulation.kernel import Simulator


class HeartbeatFailureDetector:
    """Timeout-based detector over periodic heartbeats.

    The owner node sends heartbeats to all monitored peers every
    ``period``; a peer that has not been heard from for ``timeout`` is
    suspected.  Callbacks fire on suspect and on recovery (un-suspect).
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        node_id: str,
        peers: List[str],
        period: float = 1.0,
        timeout: float = 3.0,
        on_suspect: Optional[Callable[[str], None]] = None,
        on_alive: Optional[Callable[[str], None]] = None,
    ) -> None:
        if timeout <= period:
            raise ValueError("timeout must exceed heartbeat period")
        self.sim = sim
        self.network = network
        self.node_id = node_id
        self.peers = [p for p in peers if p != node_id]
        self.period = period
        self.timeout = timeout
        self.on_suspect = on_suspect
        self.on_alive = on_alive
        self._last_heard: Dict[str, float] = {}
        self._suspected: Dict[str, bool] = {p: False for p in self.peers}
        self._running = False
        self._tick_event = None
        network.register(node_id, "fd.heartbeat", self._on_heartbeat)

    def start(self) -> None:
        """Begin emitting heartbeats and checking peer liveness."""
        if self._running:
            return
        self._running = True
        now = self.sim.now
        for peer in self.peers:
            self._last_heard.setdefault(peer, now)
        self._tick(self.sim)

    def stop(self) -> None:
        self._running = False

    def _tick(self, sim: Simulator) -> None:
        if not self._running:
            return
        if self.network.node_up(self.node_id):
            spans = self.network.spans
            if spans is not None:
                # One span per heartbeat round; the pings sent nest under it.
                span = spans.start(
                    f"fd:{self.node_id}", "coordination", sim.now,
                    node=self.node_id, suspected=sorted(
                        p for p, s in self._suspected.items() if s),
                )
                with spans.use(span):
                    self.network.broadcast(
                        self.node_id, self.peers, "fd.heartbeat",
                        payload={"from": self.node_id}, size_bytes=32,
                    )
                    self._check(sim.now)
                spans.finish(span, sim.now)
            else:
                self.network.broadcast(
                    self.node_id, self.peers, "fd.heartbeat",
                    payload={"from": self.node_id}, size_bytes=32,
                )
                self._check(sim.now)
        self._tick_event = sim.schedule(self.period, self._tick,
                                        label=f"fd:{self.node_id}")

    def _on_heartbeat(self, message) -> None:
        peer = message.payload["from"]
        self._last_heard[peer] = self.sim.now
        if self._suspected.get(peer):
            self._suspected[peer] = False
            if self.on_alive is not None:
                self.on_alive(peer)

    def _check(self, now: float) -> None:
        for peer in self.peers:
            silent_for = now - self._last_heard.get(peer, now)
            if silent_for > self.timeout and not self._suspected.get(peer):
                self._suspected[peer] = True
                if self.on_suspect is not None:
                    self.on_suspect(peer)

    def suspects(self, peer: str) -> bool:
        return bool(self._suspected.get(peer))

    @property
    def alive_peers(self) -> List[str]:
        return [p for p in self.peers if not self._suspected.get(p)]

    # -- persistence ----------------------------------------------------------#
    def snapshot_state(self) -> Dict[str, Any]:
        return {
            "running": self._running,
            "peers": list(self.peers),
            "last_heard": dict(self._last_heard),
            "suspected": dict(self._suspected),
            "tick": event_ref(self._tick_event),
        }

    def restore_state(self, state: Dict[str, Any]) -> None:
        self._running = bool(state["running"])
        self.peers = list(state["peers"])
        self._last_heard = {p: float(t) for p, t in state["last_heard"].items()}
        self._suspected = {p: bool(s) for p, s in state["suspected"].items()}
        self._tick_event = restore_event_ref(self.sim, state["tick"], self._tick)


class PhiAccrualFailureDetector:
    """Accrual failure detector (Hayashibara et al., SRDS 2004).

    Maintains a sliding window of heartbeat inter-arrival times per peer
    and computes ``phi = -log10 P(no heartbeat for this long | history)``
    under a normal approximation.  ``phi`` crossing ``threshold``
    constitutes suspicion.  Unlike the timeout detector, suspicion adapts
    to each link's observed latency distribution.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        node_id: str,
        peers: List[str],
        period: float = 1.0,
        threshold: float = 8.0,
        window_size: int = 100,
        min_std: float = 0.05,
        on_suspect: Optional[Callable[[str], None]] = None,
        on_alive: Optional[Callable[[str], None]] = None,
    ) -> None:
        self.sim = sim
        self.network = network
        self.node_id = node_id
        self.peers = [p for p in peers if p != node_id]
        self.period = period
        self.threshold = threshold
        self.window_size = window_size
        self.min_std = min_std
        self.on_suspect = on_suspect
        self.on_alive = on_alive
        self._intervals: Dict[str, Deque[float]] = {p: deque(maxlen=window_size) for p in self.peers}
        self._last_arrival: Dict[str, float] = {}
        self._suspected: Dict[str, bool] = {p: False for p in self.peers}
        self._running = False
        self._tick_event = None
        network.register(node_id, "fd.phi_heartbeat", self._on_heartbeat)

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._tick(self.sim)

    def stop(self) -> None:
        self._running = False

    def _tick(self, sim: Simulator) -> None:
        if not self._running:
            return
        if self.network.node_up(self.node_id):
            spans = self.network.spans
            if spans is not None:
                span = spans.start(
                    f"phi:{self.node_id}", "coordination", sim.now,
                    node=self.node_id,
                )
                with spans.use(span):
                    self.network.broadcast(
                        self.node_id, self.peers, "fd.phi_heartbeat",
                        payload={"from": self.node_id}, size_bytes=32,
                    )
                    self._evaluate(sim.now)
                spans.finish(span, sim.now)
            else:
                self.network.broadcast(
                    self.node_id, self.peers, "fd.phi_heartbeat",
                    payload={"from": self.node_id}, size_bytes=32,
                )
                self._evaluate(sim.now)
        self._tick_event = sim.schedule(self.period, self._tick,
                                        label=f"phi:{self.node_id}")

    def _on_heartbeat(self, message) -> None:
        peer = message.payload["from"]
        now = self.sim.now
        last = self._last_arrival.get(peer)
        if last is not None:
            self._intervals[peer].append(now - last)
        self._last_arrival[peer] = now
        if self._suspected.get(peer):
            self._suspected[peer] = False
            if self.on_alive is not None:
                self.on_alive(peer)

    def phi(self, peer: str, now: Optional[float] = None) -> float:
        """Current suspicion level for ``peer`` (0 = just heard from)."""
        now = self.sim.now if now is None else now
        last = self._last_arrival.get(peer)
        intervals = self._intervals.get(peer)
        if last is None or not intervals:
            # No history yet: stay optimistic until the first interval.
            return 0.0
        mean = sum(intervals) / len(intervals)
        variance = sum((x - mean) ** 2 for x in intervals) / len(intervals)
        std = max(math.sqrt(variance), self.min_std)
        elapsed = now - last
        # P(interval > elapsed) under N(mean, std), via the survival
        # function of the normal distribution.
        z = (elapsed - mean) / std
        survival = 0.5 * math.erfc(z / math.sqrt(2.0))
        survival = max(survival, 1e-300)
        return -math.log10(survival)

    def _evaluate(self, now: float) -> None:
        for peer in self.peers:
            suspicious = self.phi(peer, now) > self.threshold
            if suspicious and not self._suspected.get(peer):
                self._suspected[peer] = True
                if self.on_suspect is not None:
                    self.on_suspect(peer)

    def suspects(self, peer: str) -> bool:
        return bool(self._suspected.get(peer))

    @property
    def alive_peers(self) -> List[str]:
        return [p for p in self.peers if not self._suspected.get(p)]

    # -- persistence ----------------------------------------------------------#
    def snapshot_state(self) -> Dict[str, Any]:
        return {
            "running": self._running,
            "peers": list(self.peers),
            "intervals": {p: list(d) for p, d in sorted(self._intervals.items())},
            "last_arrival": dict(self._last_arrival),
            "suspected": dict(self._suspected),
            "tick": event_ref(self._tick_event),
        }

    def restore_state(self, state: Dict[str, Any]) -> None:
        self._running = bool(state["running"])
        self.peers = list(state["peers"])
        self._intervals = {
            p: deque((float(x) for x in xs), maxlen=self.window_size)
            for p, xs in state["intervals"].items()
        }
        self._last_arrival = {p: float(t)
                              for p, t in state["last_arrival"].items()}
        self._suspected = {p: bool(s) for p, s in state["suspected"].items()}
        self._tick_event = restore_event_ref(self.sim, state["tick"], self._tick)

"""Push-pull epidemic gossip.

Gossip is the paper's archetype of coordination without central control:
every node periodically exchanges its key-value state with a random peer,
and versioned entries (Lamport-style per-key versions with owner
tie-break) converge epidemically.  The registry, the edge coordination
experiments and the ablation study all build on this node.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.network.transport import Message, Network
from repro.persistence.snapshot import event_ref, restore_event_ref
from repro.simulation.kernel import Simulator
from repro.simulation.rng import restore_rng_state, serialize_rng_state


@dataclass(frozen=True)
class GossipValue:
    """A versioned entry: higher version wins; owner id breaks ties."""

    value: object
    version: int
    owner: str

    def dominates(self, other: "GossipValue") -> bool:
        if self.version != other.version:
            return self.version > other.version
        return self.owner > other.owner


class GossipNode:
    """One participant in the epidemic exchange.

    State is a ``key -> GossipValue`` map.  ``set`` bumps the key's version
    and stamps ownership; the anti-entropy round merges maps in both
    directions (push-pull), so information spreads in O(log n) expected
    rounds.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        node_id: str,
        peers: List[str],
        rng: random.Random,
        period: float = 1.0,
        fanout: int = 1,
        on_update: Optional[Callable[[str, GossipValue], None]] = None,
        evidence: Optional[Callable[[str, str], None]] = None,
    ) -> None:
        if fanout < 1:
            raise ValueError("fanout must be >= 1")
        self.sim = sim
        self.network = network
        self.node_id = node_id
        self.peers = [p for p in peers if p != node_id]
        self.rng = rng
        self.period = period
        self.fanout = fanout
        self.on_update = on_update
        # Optional security hook: called as ``evidence(subject, kind)``
        # when a merge observes an owner equivocating (two different
        # values at the same version from the same owner).
        self.evidence = evidence
        self._state: Dict[str, GossipValue] = {}
        self._running = False
        self._tick_event = None
        self.rounds = 0
        network.register(node_id, "gossip.push", self._on_push)
        network.register(node_id, "gossip.pull", self._on_pull)

    # -- local state -------------------------------------------------------- #
    def set(self, key: str, value: object) -> GossipValue:
        """Write a key locally; the update spreads on subsequent rounds."""
        current = self._state.get(key)
        version = (current.version + 1) if current else 1
        entry = GossipValue(value=value, version=version, owner=self.node_id)
        self._state[key] = entry
        return entry

    def get(self, key: str) -> Optional[object]:
        entry = self._state.get(key)
        return entry.value if entry else None

    def entry(self, key: str) -> Optional[GossipValue]:
        return self._state.get(key)

    @property
    def keys(self) -> List[str]:
        return sorted(self._state)

    def snapshot(self) -> Dict[str, GossipValue]:
        return dict(self._state)

    # -- rounds -------------------------------------------------------------- #
    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._round(self.sim)

    def stop(self) -> None:
        self._running = False

    def add_peer(self, peer: str) -> None:
        if peer != self.node_id and peer not in self.peers:
            self.peers.append(peer)

    def remove_peer(self, peer: str) -> None:
        if peer in self.peers:
            self.peers.remove(peer)

    def _round(self, sim: Simulator) -> None:
        if not self._running:
            return
        if self.peers and self.network.node_up(self.node_id):
            self.rounds += 1
            targets = self.rng.sample(sorted(self.peers), min(self.fanout, len(self.peers)))
            digest = self._serialize()
            spans = self.network.spans
            if spans is not None:
                # One span per anti-entropy round; the push (and, via
                # message-context propagation, the pull reply) nest under it.
                span = spans.start(
                    f"gossip:{self.node_id}", "coordination", sim.now,
                    node=self.node_id, round=self.rounds,
                    targets=list(targets),
                )
                with spans.use(span):
                    self._push(targets, digest)
                spans.finish(span, sim.now)
            else:
                self._push(targets, digest)
        self._tick_event = sim.schedule(self.period, self._round,
                                        label=f"gossip:{self.node_id}")

    def _push(self, targets: List[str], digest) -> None:
        for target in targets:
            self.network.send(
                self.node_id, target, "gossip.push",
                payload={"from": self.node_id, "state": digest},
                size_bytes=64 + 48 * len(digest),
            )

    # -- message handling ------------------------------------------------------#
    def _on_push(self, message: Message) -> None:
        payload = message.payload or {}
        self._merge(payload.get("state", ()))
        # Pull phase: reply with our (post-merge) state so the exchange is
        # symmetric.
        digest = self._serialize()
        self.network.send(
            self.node_id, message.src, "gossip.pull",
            payload={"from": self.node_id, "state": digest},
            size_bytes=64 + 48 * len(digest),
        )

    def _on_pull(self, message: Message) -> None:
        payload = message.payload or {}
        self._merge(payload.get("state", ()))

    def _serialize(self) -> List[Tuple[str, object, int, str]]:
        return [
            (key, entry.value, entry.version, entry.owner)
            for key, entry in sorted(self._state.items())
        ]

    def _merge(self, remote_state) -> None:
        for key, value, version, owner in remote_state:
            incoming = GossipValue(value=value, version=version, owner=owner)
            current = self._state.get(key)
            if (self.evidence is not None and current is not None
                    and incoming.version == current.version
                    and incoming.owner == current.owner
                    and incoming.value != current.value):
                # Two values, one version, one owner: the owner told
                # different peers different stories.  The CRDT-ish merge
                # below keeps our copy (neither dominates), so without
                # this hook the split-brain would be silent.
                self.evidence(owner, "equivocation")
            if current is None or incoming.dominates(current):
                self._state[key] = incoming
                if self.on_update is not None:
                    self.on_update(key, incoming)

    # -- persistence ----------------------------------------------------------#
    def snapshot_state(self) -> Dict[str, Any]:
        """Checkpointable state, including the pending round tick."""
        return {
            "running": self._running,
            "rounds": self.rounds,
            "peers": list(self.peers),
            "state": [[k, e.value, e.version, e.owner]
                      for k, e in sorted(self._state.items())],
            "rng": serialize_rng_state(self.rng),
            "tick": event_ref(self._tick_event),
        }

    def restore_state(self, state: Dict[str, Any]) -> None:
        """Rebuild state and re-register the round tick (Snapshottable)."""
        self._running = bool(state["running"])
        self.rounds = int(state["rounds"])
        self.peers = list(state["peers"])
        self._state = {k: GossipValue(value=v, version=ver, owner=owner)
                       for k, v, ver, owner in state["state"]}
        restore_rng_state(self.rng, state["rng"])
        self._tick_event = restore_event_ref(self.sim, state["tick"], self._round)

"""Raft-backed leases: safe, expiring leadership grants.

Bully election (used by the ML4 orchestrator for simplicity) can
transiently disagree during partitions; when mutual exclusion actually
matters -- "exactly one orchestrator may reconcile placements" -- the
textbook mechanism is a *lease* decided by consensus: acquire/renew
commands go through the Raft log, every replica applies them in the same
order, and expiry is judged against the holder's renewals rather than
wall-clock trust in any single node.

:class:`LeaseManager` is a state machine over a :class:`~repro.coordination.raft.RaftNode`'s
applied commands.  All replicas converge on the same holder because they
apply the same log; a holder that stops renewing (crash, partition from
the quorum) loses the lease after ``duration`` of log-time silence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.coordination.raft import RaftNode
from repro.persistence.snapshot import event_ref, restore_event_ref
from repro.simulation.kernel import Simulator


@dataclass
class LeaseState:
    """Current grant of one named lease."""

    holder: Optional[str] = None
    granted_at: float = 0.0
    expires_at: float = 0.0


class LeaseManager:
    """Lease state machine replicated through a Raft node.

    Each participant wraps its own :class:`RaftNode` with a manager; all
    managers apply identical command sequences, so their views agree.
    ``acquire``/``renew``/``release`` are *proposals*: they only take
    effect if this node's Raft instance is the leader and the command
    commits.  ``holder_of`` answers from the locally applied state.

    The Raft log carries logical timestamps (the proposer's sim time);
    expiry compares those against the local clock -- safe in the
    simulator where clocks are exact, and an explicit, documented
    assumption (bounded clock skew) for any real deployment.
    """

    def __init__(self, sim: Simulator, raft: RaftNode,
                 duration: float = 10.0,
                 on_change: Optional[Callable[[str, Optional[str]], None]] = None) -> None:
        if duration <= 0:
            raise ValueError("lease duration must be positive")
        self.sim = sim
        self.raft = raft
        self.duration = duration
        self.on_change = on_change
        self._leases: Dict[str, LeaseState] = {}
        self.commands_applied = 0
        # Chain onto any existing apply callback so RaftCluster ledgers
        # keep working alongside the lease state machine.
        previous_apply = raft.apply

        def apply(index: int, command) -> None:
            if previous_apply is not None:
                previous_apply(index, command)
            self._apply(command)

        raft.apply = apply

    # -- proposals ---------------------------------------------------------- #
    def acquire(self, lease: str) -> bool:
        """Propose taking the lease (succeeds later iff it commits and the
        lease is free/expired at apply time).  Returns False if this node
        cannot currently propose (not the Raft leader)."""
        return self._propose({"op": "acquire", "lease": lease,
                              "node": self.raft.node_id, "t": self.sim.now})

    def renew(self, lease: str) -> bool:
        return self._propose({"op": "renew", "lease": lease,
                              "node": self.raft.node_id, "t": self.sim.now})

    def release(self, lease: str) -> bool:
        return self._propose({"op": "release", "lease": lease,
                              "node": self.raft.node_id, "t": self.sim.now})

    def _propose(self, command: dict) -> bool:
        return self.raft.propose(command) is not None

    # -- state machine ------------------------------------------------------- #
    def _apply(self, command) -> None:
        if not isinstance(command, dict) or "op" not in command:
            return
        op = command["op"]
        lease = command.get("lease")
        node = command.get("node")
        time = command.get("t", 0.0)
        if lease is None or node is None:
            return
        state = self._leases.setdefault(lease, LeaseState())
        self.commands_applied += 1
        if op == "acquire":
            if state.holder is None or time >= state.expires_at \
                    or state.holder == node:
                self._grant(lease, state, node, time)
        elif op == "renew":
            if state.holder == node and time < state.expires_at:
                state.expires_at = time + self.duration
        elif op == "release":
            if state.holder == node:
                state.holder = None
                state.expires_at = time
                if self.on_change is not None:
                    self.on_change(lease, None)

    def _grant(self, lease: str, state: LeaseState, node: str, time: float) -> None:
        changed = state.holder != node
        state.holder = node
        state.granted_at = time
        state.expires_at = time + self.duration
        if changed and self.on_change is not None:
            self.on_change(lease, node)

    # -- queries ----------------------------------------------------------------#
    def holder_of(self, lease: str, now: Optional[float] = None) -> Optional[str]:
        """The currently valid holder, or None if free/expired."""
        state = self._leases.get(lease)
        if state is None or state.holder is None:
            return None
        now = self.sim.now if now is None else now
        if now >= state.expires_at:
            return None
        return state.holder

    def i_hold(self, lease: str) -> bool:
        return self.holder_of(lease) == self.raft.node_id

    def remaining(self, lease: str) -> float:
        state = self._leases.get(lease)
        if state is None or state.holder is None:
            return 0.0
        return max(0.0, state.expires_at - self.sim.now)

    # -- persistence ----------------------------------------------------------#
    def snapshot_state(self) -> Dict[str, Any]:
        """Lease state machine only; the underlying RaftNode snapshots
        itself separately."""
        return {
            "leases": {
                name: {"holder": s.holder, "granted_at": s.granted_at,
                       "expires_at": s.expires_at}
                for name, s in sorted(self._leases.items())
            },
            "commands_applied": self.commands_applied,
        }

    def restore_state(self, state: Dict[str, Any]) -> None:
        self._leases = {
            name: LeaseState(holder=s["holder"],
                             granted_at=float(s["granted_at"]),
                             expires_at=float(s["expires_at"]))
            for name, s in state["leases"].items()
        }
        self.commands_applied = int(state["commands_applied"])


class LeaseKeeper:
    """Background routine: try to acquire the lease when free, renew while
    held.  Run one keeper per participant and exactly one valid holder
    emerges (ties are serialized by the Raft log)."""

    def __init__(self, sim: Simulator, manager: LeaseManager, lease: str,
                 period: float = 2.0) -> None:
        self.sim = sim
        self.manager = manager
        self.lease = lease
        self.period = period
        self._tick_event = None
        self._running = False

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._tick_event = self.sim.schedule(
            self.period, self._tick,
            label=f"lease-keeper:{self.manager.raft.node_id}")

    def stop(self) -> None:
        self._running = False
        if self._tick_event is not None:
            self.sim.cancel(self._tick_event)
            self._tick_event = None

    def _tick(self, sim: Simulator) -> None:
        if not self._running:
            return
        manager = self.manager
        if manager.raft.is_leader:
            holder = manager.holder_of(self.lease)
            if holder is None:
                manager.acquire(self.lease)
            elif holder == manager.raft.node_id:
                manager.renew(self.lease)
        self._tick_event = sim.schedule(
            self.period, self._tick,
            label=f"lease-keeper:{manager.raft.node_id}")

    # -- persistence ----------------------------------------------------------#
    def snapshot_state(self) -> Dict[str, Any]:
        return {"running": self._running, "tick": event_ref(self._tick_event)}

    def restore_state(self, state: Dict[str, Any]) -> None:
        self._running = bool(state["running"])
        self._tick_event = restore_event_ref(self.sim, state["tick"], self._tick)


def start_lease_keeper(
    sim: Simulator,
    manager: LeaseManager,
    lease: str,
    period: float = 2.0,
) -> LeaseKeeper:
    """Start (and return) a :class:`LeaseKeeper` for one participant."""
    keeper = LeaseKeeper(sim, manager, lease, period=period)
    keeper.start()
    return keeper

"""SWIM-style membership protocol.

Implements the structure of SWIM (Das et al., DSN 2002): periodic random
probing with indirect probes through ``k`` proxies before suspicion, and
piggybacked dissemination of membership updates on protocol messages.
Versioned updates (incarnation numbers) let a falsely suspected node refute
suspicion -- the property that makes membership robust to the transient
latency spikes the fault injector produces.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.network.transport import Message, Network
from repro.persistence.snapshot import event_ref, restore_event_ref
from repro.simulation.kernel import Simulator
from repro.simulation.rng import restore_rng_state, serialize_rng_state


class MemberState(enum.Enum):
    ALIVE = "alive"
    SUSPECT = "suspect"
    DEAD = "dead"


@dataclass
class _MemberInfo:
    state: MemberState
    incarnation: int
    since: float


class MembershipProtocol:
    """One node's view of cluster membership, SWIM-style.

    Parameters
    ----------
    probe_period:
        Interval between probe rounds.
    probe_timeout:
        How long to wait for an ack (direct or indirect) before suspecting.
    suspicion_timeout:
        How long a member stays SUSPECT before being declared DEAD.
    indirect_probes:
        Number of proxy nodes asked to ping on our behalf.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        node_id: str,
        seeds: List[str],
        rng: random.Random,
        probe_period: float = 1.0,
        probe_timeout: float = 0.5,
        suspicion_timeout: float = 4.0,
        indirect_probes: int = 2,
        piggyback_count: int = 6,
        on_change: Optional[Callable[[str, MemberState], None]] = None,
        update_filter: Optional[Callable[[Optional[str], str, str, int], bool]] = None,
        evidence: Optional[Callable[[str, str], None]] = None,
        max_incarnation_jump: Optional[int] = None,
    ) -> None:
        self.sim = sim
        self.network = network
        self.node_id = node_id
        self.rng = rng
        self.probe_period = probe_period
        self.probe_timeout = probe_timeout
        self.suspicion_timeout = suspicion_timeout
        self.indirect_probes = indirect_probes
        self.piggyback_count = piggyback_count
        self.on_change = on_change
        # Security hooks (all optional, default-off): ``update_filter``
        # gates adoption of unknown members, ``evidence`` reports
        # suspicious carriers to a trust registry, ``max_incarnation_jump``
        # rejects forged sequence numbers.
        self.update_filter = update_filter
        self.evidence = evidence
        self.max_incarnation_jump = max_incarnation_jump
        self.incarnation = 0
        self._members: Dict[str, _MemberInfo] = {
            node_id: _MemberInfo(MemberState.ALIVE, 0, sim.now)
        }
        for seed in seeds:
            if seed != node_id:
                self._members[seed] = _MemberInfo(MemberState.ALIVE, 0, sim.now)
        # Updates pending dissemination: name -> (state, incarnation).
        self._updates: Dict[str, Tuple[str, int]] = {}
        self._pending_acks: Dict[int, str] = {}
        self._probe_seq = 0
        self._running = False
        # Pending timer bookkeeping for checkpointing: probe tick, per-seq
        # probe timeouts (phase, target, event) and suspicion timers
        # (node, incarnation, event).  Entries for already-fired timers are
        # pruned when they fire (timeouts) or lazily (suspicions); no-op
        # timers (e.g. a timeout whose ack already arrived) stay tracked
        # until they fire, because they are still part of the event stream.
        self._tick_event = None
        self._timeouts: Dict[int, Tuple[str, str, Any]] = {}
        self._suspicion_timers: List[Tuple[str, int, Any]] = []
        for kind in ("swim.ping", "swim.ack", "swim.ping_req", "swim.indirect_ack"):
            network.register(node_id, kind, self._dispatch)

    # -- public API ---------------------------------------------------------- #
    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._probe_round(self.sim)

    def stop(self) -> None:
        self._running = False

    def evict(self, node: str) -> bool:
        """Administratively declare ``node`` dead (intrusion response).

        The eviction disseminates through normal piggybacking at a bumped
        incarnation, so peers adopt it over the member's last ALIVE state.
        """
        info = self._members.get(node)
        if node == self.node_id or info is None or info.state == MemberState.DEAD:
            return False
        self._set_state(node, MemberState.DEAD, info.incarnation + 1)
        return True

    def members(self, state: Optional[MemberState] = None) -> List[str]:
        if state is None:
            return sorted(self._members)
        return sorted(n for n, info in self._members.items() if info.state == state)

    def alive_members(self) -> List[str]:
        return self.members(MemberState.ALIVE)

    def state_of(self, node: str) -> Optional[MemberState]:
        info = self._members.get(node)
        return info.state if info else None

    def considers_alive(self, node: str) -> bool:
        return self.state_of(node) == MemberState.ALIVE

    # -- probe rounds -------------------------------------------------------- #
    def _probe_round(self, sim: Simulator) -> None:
        if not self._running:
            return
        if self.network.node_up(self.node_id):
            target = self._pick_probe_target()
            if target is not None:
                self._probe(target)
        self._tick_event = sim.schedule(self.probe_period, self._probe_round,
                                        label=f"swim:{self.node_id}")

    def _pick_probe_target(self) -> Optional[str]:
        candidates = [
            n for n, info in self._members.items()
            if n != self.node_id and info.state != MemberState.DEAD
        ]
        if not candidates:
            return None
        return self.rng.choice(sorted(candidates))

    def _probe(self, target: str) -> None:
        self._probe_seq += 1
        seq = self._probe_seq
        self._pending_acks[seq] = target
        self._send(target, "swim.ping", {"seq": seq, "from": self.node_id})
        event = self.sim.schedule(
            self.probe_timeout,
            lambda _s, s=seq, t=target: self._direct_timeout(s, t),
            label=f"swim-timeout:{self.node_id}",
        )
        self._timeouts[seq] = ("direct", target, event)

    def _direct_timeout(self, seq: int, target: str) -> None:
        self._timeouts.pop(seq, None)
        if seq not in self._pending_acks:
            return
        # Direct probe failed; try indirect probes through k proxies.
        proxies = [
            n for n in self.alive_members()
            if n not in (self.node_id, target)
        ]
        self.rng.shuffle(proxies)
        proxies = proxies[: self.indirect_probes]
        if not proxies:
            self._finish_probe(seq, target, acked=False)
            return
        for proxy in proxies:
            self._send(proxy, "swim.ping_req",
                       {"seq": seq, "from": self.node_id, "target": target})
        event = self.sim.schedule(
            self.probe_timeout * 2,
            lambda _s, s=seq, t=target: self._indirect_timeout(s, t),
            label=f"swim-indirect-timeout:{self.node_id}",
        )
        self._timeouts[seq] = ("indirect", target, event)

    def _indirect_timeout(self, seq: int, target: str) -> None:
        self._timeouts.pop(seq, None)
        self._finish_probe(seq, target, acked=False)

    def _finish_probe(self, seq: int, target: str, acked: bool) -> None:
        if seq not in self._pending_acks:
            return
        del self._pending_acks[seq]
        if not acked:
            self._suspect(target)

    # -- state transitions ----------------------------------------------------#
    def _suspect(self, node: str) -> None:
        info = self._members.get(node)
        if info is None or info.state != MemberState.ALIVE:
            return
        self._set_state(node, MemberState.SUSPECT, info.incarnation)
        event = self.sim.schedule(
            self.suspicion_timeout,
            lambda _s, n=node, inc=info.incarnation: self._confirm_dead(n, inc),
            label=f"swim-suspicion:{self.node_id}",
        )
        # Prune fired timers, then track the new one for checkpointing.
        self._suspicion_timers = [x for x in self._suspicion_timers
                                  if x[2].pending]
        self._suspicion_timers.append((node, info.incarnation, event))

    def _confirm_dead(self, node: str, incarnation: int) -> None:
        info = self._members.get(node)
        if info is not None and info.state == MemberState.SUSPECT and info.incarnation == incarnation:
            self._set_state(node, MemberState.DEAD, incarnation)

    def _set_state(self, node: str, state: MemberState, incarnation: int) -> None:
        info = self._members.get(node)
        changed = info is None or info.state != state or info.incarnation != incarnation
        self._members[node] = _MemberInfo(state, incarnation, self.sim.now)
        self._updates[node] = (state.value, incarnation)
        if changed and self.on_change is not None and node != self.node_id:
            self.on_change(node, state)

    # -- messaging --------------------------------------------------------- #
    def _send(self, dst: str, kind: str, payload: dict) -> None:
        payload = dict(payload)
        payload["updates"] = self._collect_piggyback()
        self.network.send(self.node_id, dst, kind, payload=payload, size_bytes=128)

    def _collect_piggyback(self) -> List[Tuple[str, str, int]]:
        items = sorted(self._updates.items())[: self.piggyback_count]
        return [(node, state, inc) for node, (state, inc) in items]

    def _dispatch(self, message: Message) -> None:
        payload = message.payload or {}
        self._apply_updates(payload.get("updates", ()), src=message.src)
        kind = message.kind
        if kind == "swim.ping":
            # Echo proxy bookkeeping so the proxy can route the ack home.
            ack = {"seq": payload["seq"], "from": self.node_id}
            if "proxy_for" in payload:
                ack["proxy_for"] = payload["proxy_for"]
                ack["orig_seq"] = payload["orig_seq"]
            self._send(message.src, "swim.ack", ack)
        elif kind == "swim.ack":
            requester = payload.get("proxy_for")
            if requester is not None:
                # We proxied this ping; relay the good news to the requester.
                self._send(requester, "swim.indirect_ack",
                           {"seq": payload["orig_seq"], "from": self.node_id,
                            "target": message.src})
                self._mark_alive(message.src)
                return
            seq = payload["seq"]
            target = self._pending_acks.get(seq)
            if target is not None:
                self._finish_probe(seq, target, acked=True)
                self._mark_alive(message.src)
        elif kind == "swim.ping_req":
            # Probe the target on the requester's behalf.
            self._send(payload["target"], "swim.ping",
                       {"seq": self._next_proxy_seq(), "from": self.node_id,
                        "proxy_for": payload["from"], "orig_seq": payload["seq"]})
        elif kind == "swim.indirect_ack":
            seq = payload["seq"]
            target = self._pending_acks.get(seq)
            if target is not None:
                self._finish_probe(seq, target, acked=True)
                self._mark_alive(payload.get("target", message.src))

    def _next_proxy_seq(self) -> int:
        self._probe_seq += 1
        return self._probe_seq

    def _mark_alive(self, node: str) -> None:
        info = self._members.get(node)
        if info is None or info.state != MemberState.ALIVE:
            inc = info.incarnation if info else 0
            self._set_state(node, MemberState.ALIVE, inc)

    def _apply_updates(self, updates, src: Optional[str] = None) -> None:
        for node, state_str, incarnation in updates:
            if node == self.node_id:
                # Refute suspicion of ourselves with a higher incarnation.
                if state_str in (MemberState.SUSPECT.value, MemberState.DEAD.value) \
                        and incarnation >= self.incarnation:
                    self.incarnation = incarnation + 1
                    self._set_state(self.node_id, MemberState.ALIVE, self.incarnation)
                    if self.evidence is not None and src is not None:
                        # Someone is spreading rumors of our demise; the
                        # carrier earns distrust whether it originated the
                        # forgery or merely relayed it.
                        self.evidence(src, "refuted-piggyback")
                continue
            incoming = MemberState(state_str)
            info = self._members.get(node)
            if info is None:
                # Unknown member: a join.  With an update filter installed,
                # joins are trust-gated (known identity, trusted carrier);
                # rejected joins are simply not adopted.
                if self.update_filter is not None and not self.update_filter(
                        src, node, state_str, incarnation):
                    continue
                self._set_state(node, incoming, incarnation)
                continue
            if self.max_incarnation_jump is not None and \
                    incarnation > info.incarnation + self.max_incarnation_jump:
                # Incarnations advance by one per refutation; a huge jump
                # is a forged sequence number, not a fast node.
                if self.evidence is not None and src is not None:
                    self.evidence(src, "impossible-incarnation")
                continue
            if incarnation > info.incarnation:
                self._set_state(node, incoming, incarnation)
            elif incarnation == info.incarnation and _precedence(incoming) > _precedence(info.state):
                self._set_state(node, incoming, incarnation)

    # -- persistence ----------------------------------------------------------#
    def snapshot_state(self) -> Dict[str, Any]:
        """Membership view plus every pending timer (probe tick, probe
        timeouts with their phase, suspicion timers with incarnations).

        No-op timers -- e.g. a probe timeout whose ack already arrived --
        are captured too: they still occupy slots in the event stream, so
        dropping them would make a restored run diverge from the original.
        """
        return {
            "running": self._running,
            "incarnation": self.incarnation,
            "probe_seq": self._probe_seq,
            "members": {n: [i.state.value, i.incarnation, i.since]
                        for n, i in sorted(self._members.items())},
            "updates": {n: [s, inc]
                        for n, (s, inc) in sorted(self._updates.items())},
            "pending_acks": {str(seq): target
                             for seq, target in sorted(self._pending_acks.items())},
            "rng": serialize_rng_state(self.rng),
            "tick": event_ref(self._tick_event),
            "timeouts": [[seq, phase, target, event_ref(ev)]
                         for seq, (phase, target, ev)
                         in sorted(self._timeouts.items()) if ev.pending],
            "suspicions": [[node, inc, event_ref(ev)]
                           for node, inc, ev in self._suspicion_timers
                           if ev.pending],
        }

    def restore_state(self, state: Dict[str, Any]) -> None:
        self._running = bool(state["running"])
        self.incarnation = int(state["incarnation"])
        self._probe_seq = int(state["probe_seq"])
        self._members = {
            n: _MemberInfo(MemberState(s), int(inc), float(since))
            for n, (s, inc, since) in state["members"].items()
        }
        self._updates = {n: (s, int(inc))
                         for n, (s, inc) in state["updates"].items()}
        self._pending_acks = {int(seq): target
                              for seq, target in state["pending_acks"].items()}
        restore_rng_state(self.rng, state["rng"])
        self._tick_event = restore_event_ref(self.sim, state["tick"],
                                             self._probe_round)
        self._timeouts = {}
        for seq, phase, target, ref in state["timeouts"]:
            seq = int(seq)
            if phase == "direct":
                callback = (lambda _s, s=seq, t=target:
                            self._direct_timeout(s, t))
            else:
                callback = (lambda _s, s=seq, t=target:
                            self._indirect_timeout(s, t))
            event = restore_event_ref(self.sim, ref, callback)
            self._timeouts[seq] = (phase, target, event)
        self._suspicion_timers = []
        for node, inc, ref in state["suspicions"]:
            inc = int(inc)
            event = restore_event_ref(
                self.sim, ref,
                lambda _s, n=node, i=inc: self._confirm_dead(n, i))
            self._suspicion_timers.append((node, inc, event))


def _precedence(state: MemberState) -> int:
    """SWIM update precedence at equal incarnation: dead > suspect > alive."""
    return {MemberState.ALIVE: 0, MemberState.SUSPECT: 1, MemberState.DEAD: 2}[state]

"""Raft consensus (Ongaro & Ousterhout, USENIX ATC 2014).

A faithful implementation of Raft's core: randomized-timeout leader
election, log replication with the log-matching property, quorum commit,
and state-machine application.  Snapshotting and joint-consensus membership
change are deliberately out of scope (DESIGN.md §5) -- no experiment needs
them.

Raft is the mechanism behind the ML4 archetype's coordination plane:
a replicated control log among edge nodes survives any minority of
failures and any partition that leaves a majority connected, which is
exactly the property the maturity-level experiment measures.
"""

from __future__ import annotations

import enum
import random
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.network.transport import Message, Network
from repro.persistence.snapshot import event_ref, restore_event_ref
from repro.simulation.kernel import Simulator
from repro.simulation.rng import restore_rng_state, serialize_rng_state

_NULL_CONTEXT = nullcontext()


class RaftRole(enum.Enum):
    FOLLOWER = "follower"
    CANDIDATE = "candidate"
    LEADER = "leader"


@dataclass
class LogEntry:
    term: int
    command: Any


class RaftNode:
    """One Raft participant.

    Parameters
    ----------
    heartbeat_interval:
        Leader's AppendEntries cadence.
    election_timeout:
        ``(min, max)`` range for the randomized follower timeout; must
        comfortably exceed round-trip latency plus heartbeat interval.
    apply:
        State-machine callback ``(index, command)`` invoked exactly once
        per committed entry, in log order.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        node_id: str,
        peers: List[str],
        rng: random.Random,
        heartbeat_interval: float = 0.5,
        election_timeout: tuple = (1.5, 3.0),
        apply: Optional[Callable[[int, Any], None]] = None,
        evidence: Optional[Callable[[str, str], None]] = None,
    ) -> None:
        if election_timeout[0] <= heartbeat_interval * 2:
            raise ValueError("election timeout must be well above heartbeat interval")
        self.sim = sim
        self.network = network
        self.node_id = node_id
        self.peers = sorted(p for p in peers if p != node_id)
        self.rng = rng
        self.heartbeat_interval = heartbeat_interval
        self.election_timeout = election_timeout
        self.apply = apply

        # Persistent state (would survive restarts on a real deployment;
        # crash-recovery faults in the simulator keep the object alive, so
        # the persistence contract holds).
        self.current_term = 0
        self.voted_for: Optional[str] = None
        self.log: List[LogEntry] = []

        # Volatile state.
        self.role = RaftRole.FOLLOWER
        self.commit_index = 0   # 1-based index of highest committed entry
        self.last_applied = 0
        self.leader_id: Optional[str] = None

        # Leader state.
        self.next_index: Dict[str, int] = {}
        self.match_index: Dict[str, int] = {}

        self._votes_received: set = set()
        self._election_deadline = 0.0
        self._running = False
        self._tick_event = None
        self.elections_won = 0
        # Terms this node won an election in: the post-hoc leader-safety
        # record (any term appearing in two nodes' lists is a violation).
        self.won_terms: List[int] = []
        # Optional security hook: ``evidence(subject, kind)`` on a second
        # leadership claim in the current term.
        self.evidence = evidence
        self._election_span = None

        for kind in ("raft.request_vote", "raft.vote_reply",
                     "raft.append_entries", "raft.append_reply"):
            network.register(node_id, kind, self._dispatch)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._reset_election_timer()
        self._timer_loop(self.sim)

    def stop(self) -> None:
        self._running = False

    def _timer_loop(self, sim: Simulator) -> None:
        """Single periodic driver for both election and heartbeat timers.

        Polling at heartbeat_interval/2 keeps the event count linear in
        simulated time regardless of how many elections occur.
        """
        if not self._running:
            return
        if self.network.node_up(self.node_id):
            if self.role == RaftRole.LEADER:
                self._broadcast_append_entries()
            elif sim.now >= self._election_deadline:
                self._start_election()
        else:
            # While crashed we neither campaign nor vote; on recovery the
            # stale deadline immediately triggers a fresh election attempt.
            pass
        self._tick_event = sim.schedule(self.heartbeat_interval / 2,
                                        self._timer_loop,
                                        label=f"raft-timer:{self.node_id}")

    def _reset_election_timer(self) -> None:
        low, high = self.election_timeout
        self._election_deadline = self.sim.now + self.rng.uniform(low, high)

    # ------------------------------------------------------------------ #
    # Elections
    # ------------------------------------------------------------------ #
    def _start_election(self) -> None:
        self.current_term += 1
        self.role = RaftRole.CANDIDATE
        self.voted_for = self.node_id
        self._votes_received = {self.node_id}
        self.leader_id = None
        self._reset_election_timer()
        last_index = len(self.log)
        last_term = self.log[-1].term if self.log else 0
        spans = self.network.spans
        if spans is not None:
            # An election span lives from campaign start until won/lost;
            # a re-campaign closes the stale one as timed out.
            self._close_election_span("timeout")
            self._election_span = spans.start(
                f"election:{self.node_id}", "coordination", self.sim.now,
                node=self.node_id, term=self.current_term,
            )
        with (spans.use(self._election_span) if spans is not None
              else _NULL_CONTEXT):
            for peer in self.peers:
                self.network.send(
                    self.node_id, peer, "raft.request_vote",
                    payload={
                        "term": self.current_term,
                        "candidate": self.node_id,
                        "last_log_index": last_index,
                        "last_log_term": last_term,
                    },
                    size_bytes=96,
                )
            self._maybe_win()

    def _close_election_span(self, status: str) -> None:
        span, self._election_span = self._election_span, None
        spans = self.network.spans
        if span is not None and spans is not None:
            spans.finish(span, self.sim.now, status=status)

    def _maybe_win(self) -> None:
        if self.role != RaftRole.CANDIDATE:
            return
        if len(self._votes_received) >= self._quorum():
            self.role = RaftRole.LEADER
            self.leader_id = self.node_id
            self.elections_won += 1
            self.won_terms.append(self.current_term)
            self._close_election_span("won")
            next_idx = len(self.log) + 1
            self.next_index = {p: next_idx for p in self.peers}
            self.match_index = {p: 0 for p in self.peers}
            self._broadcast_append_entries()

    def _quorum(self) -> int:
        return (len(self.peers) + 1) // 2 + 1

    # ------------------------------------------------------------------ #
    # Log replication
    # ------------------------------------------------------------------ #
    def propose(self, command: Any) -> Optional[int]:
        """Append a command if leader; returns its (1-based) log index."""
        if self.role != RaftRole.LEADER or not self.network.node_up(self.node_id):
            return None
        self.log.append(LogEntry(term=self.current_term, command=command))
        index = len(self.log)
        self._broadcast_append_entries()
        return index

    def _broadcast_append_entries(self) -> None:
        for peer in self.peers:
            self._send_append_entries(peer)

    def _send_append_entries(self, peer: str) -> None:
        next_idx = self.next_index.get(peer, len(self.log) + 1)
        prev_index = next_idx - 1
        prev_term = self.log[prev_index - 1].term if prev_index >= 1 and prev_index <= len(self.log) else 0
        entries = [
            {"term": e.term, "command": e.command}
            for e in self.log[next_idx - 1:]
        ]
        self.network.send(
            self.node_id, peer, "raft.append_entries",
            payload={
                "term": self.current_term,
                "leader": self.node_id,
                "prev_log_index": prev_index,
                "prev_log_term": prev_term,
                "entries": entries,
                "leader_commit": self.commit_index,
            },
            size_bytes=96 + 64 * len(entries),
        )

    # ------------------------------------------------------------------ #
    # Message handling
    # ------------------------------------------------------------------ #
    def _dispatch(self, message: Message) -> None:
        if not self._running or not self.network.node_up(self.node_id):
            return
        payload = message.payload
        term = payload.get("term", 0)
        if term > self.current_term:
            self._step_down(term)
        handler = {
            "raft.request_vote": self._on_request_vote,
            "raft.vote_reply": self._on_vote_reply,
            "raft.append_entries": self._on_append_entries,
            "raft.append_reply": self._on_append_reply,
        }[message.kind]
        handler(message)

    def _step_down(self, term: int) -> None:
        self.current_term = term
        self.role = RaftRole.FOLLOWER
        self.voted_for = None
        self._close_election_span("lost")
        self._reset_election_timer()

    def _on_request_vote(self, message: Message) -> None:
        payload = message.payload
        term = payload["term"]
        candidate = payload["candidate"]
        granted = False
        if term >= self.current_term:
            log_ok = self._candidate_log_ok(
                payload["last_log_index"], payload["last_log_term"]
            )
            if (self.voted_for is None or self.voted_for == candidate) and log_ok:
                granted = True
                self.voted_for = candidate
                self._reset_election_timer()
        self.network.send(
            self.node_id, candidate, "raft.vote_reply",
            payload={"term": self.current_term, "granted": granted,
                     "from": self.node_id},
            size_bytes=48,
        )

    def _candidate_log_ok(self, last_index: int, last_term: int) -> bool:
        """Raft's election restriction: candidate log must be up to date."""
        my_last_term = self.log[-1].term if self.log else 0
        if last_term != my_last_term:
            return last_term > my_last_term
        return last_index >= len(self.log)

    def _on_vote_reply(self, message: Message) -> None:
        payload = message.payload
        if self.role != RaftRole.CANDIDATE or payload["term"] != self.current_term:
            return
        if payload["granted"]:
            self._votes_received.add(payload["from"])
            self._maybe_win()

    def _on_append_entries(self, message: Message) -> None:
        payload = message.payload
        term = payload["term"]
        if term < self.current_term:
            self._reply_append(payload["leader"], success=False, match_index=0)
            return
        if (self.evidence is not None and term == self.current_term
                and self.leader_id not in (None, payload["leader"])):
            # A second node claims leadership of the term we already have
            # a leader for -- somebody's quorum was forged.  Report the
            # observation; which claimant lied is for the trust layer to
            # weigh across vantage points.
            self.evidence(payload["leader"], "conflicting-leader")
        # Valid leader for this term.
        self.role = RaftRole.FOLLOWER
        self.leader_id = payload["leader"]
        self._reset_election_timer()

        prev_index = payload["prev_log_index"]
        prev_term = payload["prev_log_term"]
        if prev_index > len(self.log):
            self._reply_append(payload["leader"], success=False, match_index=0)
            return
        if prev_index >= 1 and self.log[prev_index - 1].term != prev_term:
            # Conflict: truncate from the mismatch and report failure so the
            # leader backs up next_index.
            del self.log[prev_index - 1:]
            self._reply_append(payload["leader"], success=False, match_index=0)
            return
        # Append/overwrite entries after prev_index.
        for offset, entry in enumerate(payload["entries"]):
            index = prev_index + offset + 1
            if index <= len(self.log):
                if self.log[index - 1].term != entry["term"]:
                    del self.log[index - 1:]
                    self.log.append(LogEntry(entry["term"], entry["command"]))
            else:
                self.log.append(LogEntry(entry["term"], entry["command"]))
        if payload["leader_commit"] > self.commit_index:
            self.commit_index = min(payload["leader_commit"], len(self.log))
            self._apply_committed()
        self._reply_append(payload["leader"], success=True,
                           match_index=prev_index + len(payload["entries"]))

    def _reply_append(self, leader: str, success: bool, match_index: int) -> None:
        self.network.send(
            self.node_id, leader, "raft.append_reply",
            payload={"term": self.current_term, "success": success,
                     "from": self.node_id, "match_index": match_index},
            size_bytes=48,
        )

    def _on_append_reply(self, message: Message) -> None:
        payload = message.payload
        if self.role != RaftRole.LEADER or payload["term"] != self.current_term:
            return
        peer = payload["from"]
        if payload["success"]:
            self.match_index[peer] = max(self.match_index.get(peer, 0),
                                         payload["match_index"])
            self.next_index[peer] = self.match_index[peer] + 1
            self._advance_commit_index()
        else:
            # Back up and retry immediately.
            self.next_index[peer] = max(1, self.next_index.get(peer, 1) - 1)
            self._send_append_entries(peer)

    def _advance_commit_index(self) -> None:
        """Commit the highest index replicated on a quorum in current term."""
        for index in range(len(self.log), self.commit_index, -1):
            if self.log[index - 1].term != self.current_term:
                # §5.4.2: only commit current-term entries by counting.
                continue
            replicas = 1 + sum(
                1 for p in self.peers if self.match_index.get(p, 0) >= index
            )
            if replicas >= self._quorum():
                self.commit_index = index
                self._apply_committed()
                break

    def _apply_committed(self) -> None:
        while self.last_applied < self.commit_index:
            self.last_applied += 1
            if self.apply is not None:
                self.apply(self.last_applied, self.log[self.last_applied - 1].command)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def is_leader(self) -> bool:
        return self.role == RaftRole.LEADER

    def committed_commands(self) -> List[Any]:
        return [e.command for e in self.log[: self.commit_index]]

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #
    def snapshot_state(self) -> Dict[str, Any]:
        """Full Raft state: persistent, volatile, leader and timer state.

        Includes the node's private RNG position (randomized election
        timeouts) so a restored node draws the same future deadlines.
        """
        return {
            "current_term": self.current_term,
            "voted_for": self.voted_for,
            "log": [[e.term, e.command] for e in self.log],
            "role": self.role.value,
            "commit_index": self.commit_index,
            "last_applied": self.last_applied,
            "leader_id": self.leader_id,
            "next_index": dict(self.next_index),
            "match_index": dict(self.match_index),
            "votes_received": sorted(self._votes_received),
            "election_deadline": self._election_deadline,
            "elections_won": self.elections_won,
            "won_terms": list(self.won_terms),
            "running": self._running,
            "rng": serialize_rng_state(self.rng),
            "tick": event_ref(self._tick_event),
        }

    def restore_state(self, state: Dict[str, Any]) -> None:
        self.current_term = int(state["current_term"])
        self.voted_for = state["voted_for"]
        self.log = [LogEntry(term=t, command=c) for t, c in state["log"]]
        self.role = RaftRole(state["role"])
        self.commit_index = int(state["commit_index"])
        self.last_applied = int(state["last_applied"])
        self.leader_id = state["leader_id"]
        self.next_index = {p: int(i) for p, i in state["next_index"].items()}
        self.match_index = {p: int(i) for p, i in state["match_index"].items()}
        self._votes_received = set(state["votes_received"])
        self._election_deadline = float(state["election_deadline"])
        self.elections_won = int(state["elections_won"])
        self.won_terms = [int(t) for t in state.get("won_terms", ())]
        self._running = bool(state["running"])
        restore_rng_state(self.rng, state["rng"])
        self._tick_event = restore_event_ref(self.sim, state["tick"],
                                             self._timer_loop)


class RaftCluster:
    """Convenience: build and drive a cluster of :class:`RaftNode`.

    The cluster shares one ``apply`` ledger per node so tests and
    experiments can check the state-machine-safety invariant (all nodes
    apply identical command sequences).
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        node_ids: List[str],
        rng: random.Random,
        heartbeat_interval: float = 0.5,
        election_timeout: tuple = (1.5, 3.0),
    ) -> None:
        if len(node_ids) < 1:
            raise ValueError("cluster needs at least one node")
        self.sim = sim
        self.applied: Dict[str, List[Any]] = {n: [] for n in node_ids}
        self.nodes: Dict[str, RaftNode] = {}
        for node_id in node_ids:
            node_rng = random.Random(rng.getrandbits(64))
            self.nodes[node_id] = RaftNode(
                sim, network, node_id, list(node_ids), node_rng,
                heartbeat_interval=heartbeat_interval,
                election_timeout=election_timeout,
                apply=self._make_apply(node_id),
            )

    def _make_apply(self, node_id: str) -> Callable[[int, Any], None]:
        def apply(_index: int, command: Any) -> None:
            self.applied[node_id].append(command)

        return apply

    def start(self) -> None:
        for node in self.nodes.values():
            node.start()

    def leader(self) -> Optional[RaftNode]:
        """The leader of the highest term, if any node currently leads."""
        leaders = [n for n in self.nodes.values() if n.is_leader]
        if not leaders:
            return None
        return max(leaders, key=lambda n: n.current_term)

    def propose(self, command: Any) -> bool:
        """Propose via the current leader; False if there is none."""
        node = self.leader()
        if node is None:
            return False
        return node.propose(command) is not None

    def state_machine_consistent(self) -> bool:
        """True if every node's applied sequence is a prefix of the longest."""
        sequences = sorted(self.applied.values(), key=len, reverse=True)
        longest = sequences[0]
        return all(seq == longest[: len(seq)] for seq in sequences[1:])

    # -- persistence ----------------------------------------------------------#
    def snapshot_state(self) -> Dict[str, Any]:
        return {
            "applied": {n: list(cmds) for n, cmds in sorted(self.applied.items())},
            "nodes": {n: node.snapshot_state()
                      for n, node in sorted(self.nodes.items())},
        }

    def restore_state(self, state: Dict[str, Any]) -> None:
        for node_id, commands in state["applied"].items():
            self.applied[node_id] = list(commands)
        for node_id in sorted(state["nodes"]):
            self.nodes[node_id].restore_state(state["nodes"][node_id])

"""Decentralized service registry.

Service discovery without a central directory: each node advertises the
services it hosts into a :class:`~repro.coordination.gossip.GossipNode`;
lookups are answered from the local (eventually consistent) view.  This is
the "some shared services exist, services are partly managed" ML3 step
made concrete, and the substrate the orchestrator uses to find capacity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.coordination.gossip import GossipNode


@dataclass(frozen=True)
class ServiceRecord:
    """An advertisement: service instance hosted on a device."""

    service_name: str
    device_id: str
    capabilities: tuple = ()
    healthy: bool = True
    version: str = "1.0.0"

    def key(self) -> str:
        return f"svc/{self.service_name}@{self.device_id}"


class ServiceRegistry:
    """A node-local registry view backed by gossip dissemination."""

    def __init__(self, gossip: GossipNode) -> None:
        self.gossip = gossip

    @property
    def node_id(self) -> str:
        return self.gossip.node_id

    # -- advertisement -------------------------------------------------------- #
    def advertise(self, record: ServiceRecord) -> None:
        """Publish (or refresh) a service instance advertisement."""
        self.gossip.set(record.key(), _encode(record))

    def withdraw(self, service_name: str, device_id: str) -> None:
        """Mark an instance unhealthy (tombstone-style: entry remains,
        flagged down, so the update still dominates older 'healthy' ones)."""
        record = ServiceRecord(service_name=service_name, device_id=device_id,
                               healthy=False)
        self.gossip.set(record.key(), _encode(record))

    # -- lookup ------------------------------------------------------------- #
    def instances(self, service_name: str, healthy_only: bool = True) -> List[ServiceRecord]:
        """All known instances of a service, from the local gossip view."""
        prefix = f"svc/{service_name}@"
        out = []
        for key in self.gossip.keys:
            if key.startswith(prefix):
                record = _decode(self.gossip.get(key))
                if record is not None and (record.healthy or not healthy_only):
                    out.append(record)
        return sorted(out, key=lambda r: r.device_id)

    def lookup(self, service_name: str) -> Optional[ServiceRecord]:
        """A healthy instance of the service (deterministic pick), or None."""
        instances = self.instances(service_name)
        return instances[0] if instances else None

    def by_capability(self, capability: str) -> List[ServiceRecord]:
        """All healthy instances advertising ``capability``."""
        out = []
        for key in self.gossip.keys:
            if key.startswith("svc/"):
                record = _decode(self.gossip.get(key))
                if record is not None and record.healthy and capability in record.capabilities:
                    out.append(record)
        return sorted(out, key=lambda r: (r.service_name, r.device_id))

    def known_services(self) -> List[str]:
        names = set()
        for key in self.gossip.keys:
            if key.startswith("svc/"):
                names.add(key[len("svc/"):].split("@", 1)[0])
        return sorted(names)


def _encode(record: ServiceRecord) -> dict:
    return {
        "service_name": record.service_name,
        "device_id": record.device_id,
        "capabilities": list(record.capabilities),
        "healthy": record.healthy,
        "version": record.version,
    }


def _decode(value: object) -> Optional[ServiceRecord]:
    if not isinstance(value, dict):
        return None
    return ServiceRecord(
        service_name=value["service_name"],
        device_id=value["device_id"],
        capabilities=tuple(value.get("capabilities", ())),
        healthy=bool(value.get("healthy", True)),
        version=value.get("version", "1.0.0"),
    )

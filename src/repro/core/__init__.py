"""The resilience framework: the paper's primary contribution made executable.

Resilience is "the persistence of reliable requirements satisfaction when
facing change" (§I).  Accordingly this package provides:

* :mod:`repro.core.system` -- the :class:`IoTSystem` facade bundling the
  substrate (simulator, network, fleet, faults, trace, metrics);
* :mod:`repro.core.requirements` -- quantifiable requirement types
  (availability, latency, freshness, privacy, coverage, control);
* :mod:`repro.core.resilience` -- the resilience metric: per-requirement
  satisfaction signals evaluated inside and outside disruption windows,
  recovery times, and an aggregate score;
* :mod:`repro.core.vectors` -- the five disruption vectors and four
  maturity levels of Tables 1-2, as data;
* :mod:`repro.core.maturity` -- runnable ML1-ML4 system archetypes over a
  common workload (the executable form of Tables 1-2);
* :mod:`repro.core.assessment` -- report construction and rendering.
"""

from repro.core.system import IoTSystem
from repro.core.requirements import (
    AvailabilityRequirement,
    ControlAvailabilityRequirement,
    CoverageRequirement,
    FreshnessRequirement,
    LatencyRequirement,
    PrivacyRequirement,
    Requirement,
)
from repro.core.resilience import (
    RequirementAssessment,
    ResilienceAnalyzer,
    ResilienceReport,
)
from repro.core.vectors import (
    DISRUPTION_VECTORS,
    MATURITY_TABLE,
    DisruptionVector,
    MaturityLevel,
)
from repro.core.maturity import MaturityScenario, ScenarioParams, run_maturity_comparison

__all__ = [
    "AvailabilityRequirement",
    "ControlAvailabilityRequirement",
    "CoverageRequirement",
    "DISRUPTION_VECTORS",
    "DisruptionVector",
    "FreshnessRequirement",
    "IoTSystem",
    "LatencyRequirement",
    "MATURITY_TABLE",
    "MaturityLevel",
    "MaturityScenario",
    "PrivacyRequirement",
    "Requirement",
    "RequirementAssessment",
    "ResilienceAnalyzer",
    "ResilienceReport",
    "ScenarioParams",
    "run_maturity_comparison",
]

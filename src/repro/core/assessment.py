"""Report rendering: comparison tables for experiments.

Turns :class:`~repro.core.resilience.ResilienceReport` objects into the
plain-text tables EXPERIMENTS.md records -- one row per requirement, one
column per system under comparison, plus the aggregate resilience score.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Sequence

from repro.core.resilience import ResilienceReport


def _fmt(value: Optional[float], width: int = 8) -> str:
    if value is None:
        return "-".rjust(width)
    if math.isinf(value):
        return "inf".rjust(width)
    return f"{value:.3f}".rjust(width)


def comparison_table(reports: Sequence[ResilienceReport],
                     metric: str = "under_disruption") -> str:
    """Requirements x systems table of the chosen per-requirement metric.

    ``metric`` is one of ``"under_disruption"``, ``"baseline"``,
    ``"mean_recovery_time"``.
    """
    if not reports:
        return "(no reports)"
    names = [a.name for a in reports[0].assessments]
    label_width = max(len(n) for n in names + ["resilience score"]) + 2
    header = "".ljust(label_width) + "".join(r.label.rjust(10) for r in reports)
    lines = [header, "-" * len(header)]
    for name in names:
        row = name.ljust(label_width)
        for report in reports:
            assessment = report.assessment(name)
            value = getattr(assessment, metric)
            row += _fmt(value, 10)
        lines.append(row)
    lines.append("-" * len(header))
    score_row = "resilience score".ljust(label_width)
    for report in reports:
        score_row += _fmt(report.resilience_score, 10)
    lines.append(score_row)
    return "\n".join(lines)


def recovery_table(reports: Sequence[ResilienceReport]) -> str:
    """Mean recovery time (s) per requirement per system."""
    return comparison_table(reports, metric="mean_recovery_time")


def report_dict(report: ResilienceReport) -> Dict[str, object]:
    """A JSON-serializable dump of one report (for bench output files)."""
    return {
        "label": report.label,
        "horizon": report.horizon,
        "resilience_score": report.resilience_score,
        "baseline_score": report.baseline_score,
        "disruption_windows": [list(w) for w in report.disruption_windows],
        "requirements": report.summary_rows(),
    }

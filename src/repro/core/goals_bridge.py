"""Bridging measured resilience into goal models.

§IV's methodology runs: characterize resilience -> represent requirements
-> validate.  The goal model (:mod:`repro.modeling.goals`) is the
requirements representation; the resilience report
(:mod:`repro.core.resilience`) is the measurement.  This bridge closes
the loop: each requirement becomes a leaf goal whose status is set from
its measured satisfaction, disruption windows become obstacles, and the
root goal answers "is the system resilient" at the goals level --
including which obstacle classes are critical (single points of failure
in the goal graph).
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.resilience import RequirementAssessment, ResilienceReport
from repro.modeling.goals import Goal, GoalModel, GoalStatus, Obstacle, Refinement


def goal_model_from_report(
    report: ResilienceReport,
    satisfied_threshold: float = 0.9,
    denied_threshold: float = 0.5,
    root_name: str = "resilient-system",
) -> GoalModel:
    """Build a goal model whose leaves mirror the report's requirements.

    Leaf status per requirement, from its *under-disruption* satisfaction:

    * >= ``satisfied_threshold`` -> SATISFIED (the requirement persisted);
    * <  ``denied_threshold``    -> DENIED;
    * in between (or unmeasured) -> UNKNOWN.

    One obstacle per disruption window is attached to the requirements it
    demonstrably dented (satisfaction under disruption below baseline by
    more than 0.05) -- obstacle analysis then reports which disruptions
    are critical to the root goal.
    """
    if not 0.0 <= denied_threshold <= satisfied_threshold <= 1.0:
        raise ValueError("thresholds must satisfy 0 <= denied <= satisfied <= 1")
    model = GoalModel(root_name)
    model.add_goal(Goal(root_name,
                        description="persistence of requirements satisfaction"))
    leaf_names: List[str] = []
    for assessment in report.assessments:
        leaf = f"req:{assessment.name}"
        model.add_goal(Goal(leaf, description=assessment.name,
                            priority=int(assessment.weight)))
        leaf_names.append(leaf)
        model.set_leaf_status(leaf, _status_of(assessment,
                                               satisfied_threshold,
                                               denied_threshold))
    model.refine(root_name, leaf_names, refinement=Refinement.AND)
    for index, (start, end) in enumerate(report.disruption_windows):
        dented = [
            f"req:{a.name}" for a in report.assessments
            if _dented(a)
        ]
        model.add_obstacle(Obstacle(
            name=f"disruption[{start:.0f}s-{end:.0f}s]#{index}",
            obstructs=dented,
            description=f"disruption window {start:.1f}..{end:.1f}s",
        ))
    return model


def _status_of(assessment: RequirementAssessment,
               satisfied_threshold: float,
               denied_threshold: float) -> GoalStatus:
    value = assessment.under_disruption
    if value is None:
        return GoalStatus.UNKNOWN
    if value >= satisfied_threshold:
        return GoalStatus.SATISFIED
    if value < denied_threshold:
        return GoalStatus.DENIED
    return GoalStatus.UNKNOWN


def _dented(assessment: RequirementAssessment) -> bool:
    if assessment.baseline is None or assessment.under_disruption is None:
        return False
    return assessment.baseline - assessment.under_disruption > 0.05


def resilience_verdict(model: GoalModel) -> Dict[str, object]:
    """Summarize a bridged goal model for reporting."""
    leaves = model.leaves()
    return {
        "root_status": model.status().value,
        "satisfied_leaves": sorted(
            g.name for g in leaves
            if model.status(g.name) == GoalStatus.SATISFIED),
        "denied_leaves": sorted(
            g.name for g in leaves
            if model.status(g.name) == GoalStatus.DENIED),
        "critical_obstacles": sorted(
            o.name for o in model.critical_obstacles()),
    }

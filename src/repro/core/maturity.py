"""Runnable maturity-level archetypes (the executable Tables 1-2).

One common smart-city-style workload -- per-site sensor fleets feeding a
per-site processing service, a global dashboard consuming aggregates, and
an identical scripted disruption schedule -- run under four architectures
that differ exactly along the five disruption vectors:

ML1 (silo)
    Processing bundled on a leaf device per site; no cloud; no automated
    operations (a "technician" sweep restarts failed services every
    ``technician_period``); data never leaves the site.
ML2 (IoT-Cloud)
    Processing and the single MAPE loop on the cloud; raw readings stream
    unidirectionally to the cloud (ungoverned -- sensitive readings leaving
    their privacy scope are audited as violations); everything stalls
    during cloud outages.
ML3 (edge-centric)
    Processing and a MAPE loop per edge site; bidirectional edge-cloud
    aggregate push; governance enforced (raw data stays in-site), but
    domain transfers are not sanitized.
ML4 (resilient IoT)
    ML3 plus: deviceless scheduling with failure-driven re-placement
    coordinated by a bully-elected edge orchestrator, CRDT-replicated
    aggregates among edge peers (dashboard survives cloud outage), and
    governed domain transfers with edge anonymization.

The scenario measures five requirements (availability, latency, coverage,
dashboard freshness, privacy, control) and produces a
:class:`~repro.core.resilience.ResilienceReport` per level; the expected
shape is strictly increasing resilience ML1 -> ML4 (EXPERIMENTS.md T1/T2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.adaptation import (
    DeviceLivenessAnalyzer,
    Executor,
    MapeLoop,
    RuleBasedPlanner,
    ServiceHealthAnalyzer,
    StaleKnowledgeAnalyzer,
)
from repro.coordination.election import BullyElection
from repro.core.requirements import (
    AvailabilityRequirement,
    ControlAvailabilityRequirement,
    CoverageRequirement,
    EvaluationContext,
    FreshnessRequirement,
    LatencyRequirement,
    PrivacyRequirement,
)
from repro.core.resilience import ResilienceAnalyzer, ResilienceReport
from repro.core.system import IoTSystem
from repro.core.vectors import MaturityFeatures, MaturityLevel, features_of
from repro.data.crdt import LWWMap
from repro.data.sync import ReplicaStore, SyncProtocol
from repro.devices.base import DeviceClass
from repro.devices.software import Service, ServiceState
from repro.faults.models import CrashRecoveryFault, Fault, LatencySpikeFault, PartitionFault
from repro.faults.schedule import DisruptionSchedule


@dataclass
class ScenarioParams:
    """Knobs of the common workload."""

    n_sites: int = 3
    sensors_per_site: int = 4
    horizon: float = 120.0
    seed: int = 42
    sensor_period: float = 1.0
    latency_deadline: float = 0.15      # a realistic end-to-end SLA; the
    # *stringent* (<30ms) latency story -- where cloud paths structurally
    # fail -- is measured separately in the Fig. 1 landscape benchmark.
    freshness_max_age: float = 6.0
    probe_period: float = 0.5
    aggregate_push_period: float = 2.0
    control_staleness: float = 3.0
    mape_period: float = 1.0
    technician_period: float = 80.0     # ML1's manual ops cadence (on-site dispatch)
    disruption: bool = True
    # When set, replaces the scripted schedule with a seeded stochastic one
    # of this intensity (expected faults per second) -- used by the
    # disruption-intensity sweep bench.
    disruption_rate: Optional[float] = None
    disruption_mean_duration: float = 15.0


@dataclass
class _ProcServiceFailure(Fault):
    """Service failure resolved against the proc host *at injection time*.

    The processing service lives on different devices per maturity level,
    so a scripted schedule addresses it by site and the scenario resolves
    the host when the fault fires -- keeping the schedule identical across
    architectures.

    ``duration`` here is the *nominal assessment window* only (it shapes
    the disruption intervals the resilience metric uses); the faulted
    state itself persists until a repair mechanism -- MAPE, orchestrator,
    or ML1's technician -- fixes it.  ``revert`` is therefore a no-op.
    """

    site: int = 0
    scenario: Optional["MaturityScenario"] = None

    def revert(self, injector) -> None:
        """No self-healing from the fault itself; see class docstring."""

    def apply(self, injector) -> None:
        host = self.scenario.proc_host(self.site)
        if host is None:
            return
        device = injector.fleet.get(host)
        name = self.scenario.proc_name(self.site)
        if device.stack.has_service(name):
            device.stack.mark_failed(name)
            injector.trace_emit("fault", "service-failure", subject=host, service=name)


class MaturityScenario:
    """One maturity level running the common workload."""

    def __init__(self, level: MaturityLevel, params: Optional[ScenarioParams] = None) -> None:
        self.level = level
        self.params = params or ScenarioParams()
        self.features: MaturityFeatures = features_of(level)
        self.system = IoTSystem.with_edge_cloud_landscape(
            self.params.n_sites, self.params.sensors_per_site,
            seed=self.params.seed, device_class=DeviceClass.GATEWAY,
            mesh_sites=True, domain_per_site=True,
        )
        self._proc_hosts: Dict[int, str] = {}
        self._aggregates: Dict[int, Tuple[int, float, float]] = {}  # site -> (count, mean, t)
        self._dashboard_view: Dict[int, float] = {}   # site -> produced_at of newest aggregate seen
        self._loops: Dict[str, MapeLoop] = {}
        self._scheduler = None
        self._orchestrator_election: Dict[str, BullyElection] = {}
        self._edge_stores: Dict[str, ReplicaStore] = {}
        self._edge_syncs: Dict[str, SyncProtocol] = {}
        self.schedule = DisruptionSchedule()
        self._wire()

    # ------------------------------------------------------------------ #
    # Identifiers
    # ------------------------------------------------------------------ #
    def site_edge(self, site: int) -> str:
        return f"edge{site}"

    def site_devices(self, site: int) -> List[str]:
        return self.system.sites[self.site_edge(site)]

    def proc_name(self, site: int) -> str:
        return f"proc{site}"

    def proc_host(self, site: int) -> Optional[str]:
        if self.features.service_placement == "deviceless" and self._scheduler is not None:
            return self._scheduler.placement_of(self.proc_name(site))
        return self._proc_hosts.get(site)

    @property
    def all_leaf_devices(self) -> List[str]:
        out: List[str] = []
        for site in range(self.params.n_sites):
            out.extend(self.site_devices(site))
        return out

    # ------------------------------------------------------------------ #
    # Wiring
    # ------------------------------------------------------------------ #
    def _wire(self) -> None:
        self._place_services()
        self._wire_sensing()
        self._wire_self_healing()
        self._wire_data_plane()
        self._wire_probes()
        if self.params.disruption:
            self._build_disruption_schedule()
            self.schedule.install(self.system.injector)

    def _make_proc_service(self, site: int) -> Service:
        return Service(self.proc_name(site), runtime="python",
                       cpu=200.0, memory=128.0, storage=32.0,
                       provides={f"processing:site{site}"})

    def _place_services(self) -> None:
        placement = self.features.service_placement
        if placement == "deviceless":
            from repro.orchestration import DevicelessScheduler

            self._scheduler = DevicelessScheduler(
                self.system.sim, self.system.fleet, self.system.topology,
                candidate_tiers=("edge", "gateway"), trace=self.system.trace,
            )
            for site in range(self.params.n_sites):
                decision = self._scheduler.submit(
                    self._make_proc_service(site),
                    clients=self.site_devices(site),
                )
                self._proc_hosts[site] = decision.device_id
            return
        for site in range(self.params.n_sites):
            if placement == "bundled":
                host = self.site_devices(site)[0]
            elif placement == "cloud":
                host = "cloud"
            else:  # "edge"
                host = self.site_edge(site)
            self.system.fleet.get(host).host(self._make_proc_service(site))
            self._proc_hosts[site] = host

    # -- sensing ----------------------------------------------------------- #
    def _wire_sensing(self) -> None:
        sim = self.system.sim
        network = self.system.network
        rng = self.system.rngs.stream("sensing")
        for site in range(self.params.n_sites):
            for index, device_id in enumerate(self.site_devices(site)):
                sensitive = index % 2 == 1
                offset = rng.uniform(0.0, self.params.sensor_period)
                self._start_sensor(site, device_id, sensitive, offset)
            # The proc host handles deliveries for its site.
        for site in range(self.params.n_sites):
            self._register_proc_handler(site)

    def _start_sensor(self, site: int, device_id: str, sensitive: bool, offset: float) -> None:
        sim = self.system.sim
        params = self.params

        def tick(s) -> None:
            device = self.system.fleet.get(device_id)
            if device.up:
                host = self.proc_host(site)
                if host is not None:
                    self.system.network.send(
                        device_id, host, f"reading:{site}",
                        payload={
                            "site": site, "device": device_id,
                            "sensitive": sensitive, "t": s.now,
                        },
                        size_bytes=64,
                    )
            s.schedule(params.sensor_period, tick, label=f"sense:{device_id}")

        sim.schedule(offset, tick, label=f"sense:{device_id}")

    def _register_proc_handler(self, site: int) -> None:
        """Deliveries go wherever the proc service currently runs, so the
        handler is registered on every potential host and checks locally
        whether it currently hosts a *running* proc instance."""
        kind = f"reading:{site}"

        def handle(message) -> None:
            host = message.dst
            device = self.system.fleet.get(host)
            service = device.stack.service(self.proc_name(site))
            if not device.up or service is None or service.state != ServiceState.RUNNING:
                return
            now = self.system.sim.now
            payload = message.payload
            self.system.metrics.record("ingest", now, 1.0)
            self.system.metrics.record(f"ingest:site{site}", now, 1.0)
            self.system.metrics.record("reading.latency", now, now - payload["t"])
            self._update_aggregate(site, now)
            self._audit_privacy(payload, host, now)

        for candidate in self._potential_hosts(site):
            self.system.network.register(candidate, kind, handle)

    def _potential_hosts(self, site: int) -> List[str]:
        hosts = set(self.site_devices(site))
        hosts.add(self.site_edge(site))
        hosts.add("cloud")
        for other in range(self.params.n_sites):
            hosts.add(self.site_edge(other))
        return sorted(hosts)

    def _audit_privacy(self, payload: dict, host: str, now: float) -> None:
        """Ungoverned levels leak: a sensitive reading delivered outside
        its site scope is a privacy violation (audited post-hoc, exactly
        because ML1/ML2 have no enforcement to stop it)."""
        if not payload["sensitive"]:
            return
        site = payload["site"]
        scope = set(self.site_devices(site)) | {self.site_edge(site)}
        if host in scope:
            return
        if self.features.governance_enforced:
            # Enforced levels never send raw sensitive readings out of
            # scope (see _start_sensor routing); reaching here would be a
            # real leak, so still record it -- honesty over flattery.
            pass
        self.system.trace.emit(
            now, "governance", "privacy-violation", subject=payload["device"],
            host=host, site=site,
        )

    # -- self healing ------------------------------------------------------------#
    def _wire_self_healing(self) -> None:
        mode = self.features.self_healing
        if mode == "none":
            self._wire_technician()
            return
        if mode == "cloud":
            scope = self.all_leaf_devices + ["cloud"]
            self._add_loop("cloud", scope)
        else:  # "edge"
            for site in range(self.params.n_sites):
                edge = self.site_edge(site)
                scope = self.site_devices(site) + [edge]
                self._add_loop(edge, scope)
        if self.features.failover_replacement:
            self._wire_orchestrator()

    def _add_loop(self, host: str, scope: List[str]) -> None:
        system = self.system
        loop = MapeLoop(
            system.sim, system.network, system.fleet, host, scope,
            analyzers=[
                ServiceHealthAnalyzer(),
                DeviceLivenessAnalyzer(),
                StaleKnowledgeAnalyzer(self.params.control_staleness * 2),
            ],
            planner=RuleBasedPlanner(),
            executor=Executor(system.sim, system.network, system.fleet, host,
                              system.rngs.stream(f"executor:{host}"),
                              trace=system.trace),
            period=self.params.mape_period,
            metrics=system.metrics, trace=system.trace,
        )
        self._loops[host] = loop
        loop.start()

    def _wire_technician(self) -> None:
        """ML1's manual operations: an on-site sweep that restarts every
        failed service, once per ``technician_period``."""
        sim = self.system.sim

        def sweep(s) -> None:
            for device in self.system.fleet.devices:
                if not device.up:
                    self.system.fleet.recover(device.device_id)
                for service in device.stack.services:
                    if service.state == ServiceState.FAILED:
                        device.stack.start(service.name)
                        self.system.trace.emit(
                            s.now, "recovery", "technician-repair",
                            subject=device.device_id, service=service.name,
                        )
            s.schedule(self.params.technician_period, sweep, label="technician")

        sim.schedule(self.params.technician_period, sweep, label="technician")

    def _wire_orchestrator(self) -> None:
        """ML4: bully-elected edge orchestrator reconciles placements."""
        edges = [self.site_edge(s) for s in range(self.params.n_sites)]
        for edge in edges:
            self._orchestrator_election[edge] = BullyElection(
                self.system.sim, self.system.network, edge, edges,
            )
        if edges:
            self._orchestrator_election[edges[0]].start_election()
        sim = self.system.sim

        def reconcile(s) -> None:
            leader = self._current_orchestrator(edges)
            if leader is not None and self._scheduler is not None:
                self._scheduler.reconcile()
            s.schedule(2.0, reconcile, label="orchestrator-reconcile")

        sim.schedule(2.0, reconcile, label="orchestrator-reconcile")

    def _current_orchestrator(self, edges: List[str]) -> Optional[str]:
        alive = [e for e in edges if self.system.fleet.get(e).up]
        if not alive:
            return None
        # The highest-id live edge acts (bully semantics); elections keep
        # the `leader` fields eventually right, the liveness filter keeps
        # reconciliation running even mid-election.
        return max(alive)

    # -- data plane -------------------------------------------------------------- #
    def _update_aggregate(self, site: int, now: float) -> None:
        count, mean, _ = self._aggregates.get(site, (0, 0.0, 0.0))
        self._aggregates[site] = (count + 1, mean, now)
        placement = self.features.service_placement
        if placement == "cloud":
            # Aggregation happens ON the cloud; the dashboard (also on the
            # cloud) sees it immediately.
            self._dashboard_view[site] = now
        elif self.features.data_replication and self._edge_stores:
            store = self._replica_store_for(site)
            if store is not None:
                aggregate_map: LWWMap = store.get("aggregates")
                aggregate_map.set(str(site), {"count": count + 1, "t": now}, now)
        # ML1: isolated -- the dashboard never hears about it.

    def _replica_store_for(self, site: int) -> Optional[ReplicaStore]:
        """The replica the site's proc pushes aggregates into: its own
        edge when up, otherwise the nearest up edge (the proc may have
        been re-placed onto a gateway after an edge crash)."""
        preferred = self.site_edge(site)
        if self.system.fleet.get(preferred).up:
            return self._edge_stores.get(preferred)
        for other in range(self.params.n_sites):
            candidate = self.site_edge(other)
            if self.system.fleet.get(candidate).up:
                return self._edge_stores.get(candidate)
        return None

    def _wire_data_plane(self) -> None:
        if self.features.data_replication:
            # ML4: CRDT-replicated aggregates among edges (+ cloud replica).
            nodes = [self.site_edge(s) for s in range(self.params.n_sites)] + ["cloud"]
            for node in nodes:
                store = ReplicaStore(node)
                store.register("aggregates", LWWMap(node))
                self._edge_stores[node] = store
            for node in nodes:
                sync = SyncProtocol(
                    self.system.sim, self.system.network,
                    self._edge_stores[node],
                    peers=[n for n in nodes if n != node],
                    rng=self.system.rngs.stream(f"sync:{node}"),
                    period=1.0, trace=self.system.trace,
                )
                self._edge_syncs[node] = sync
                sync.start()
        elif self.features.data_flows == "bidirectional":
            # ML3: periodic aggregate push edge -> cloud.
            self._wire_aggregate_push()

    def _wire_aggregate_push(self) -> None:
        sim = self.system.sim

        def handle_push(message) -> None:
            payload = message.payload
            site = payload["site"]
            produced_at = payload["t"]
            if produced_at > self._dashboard_view.get(site, -1.0):
                self._dashboard_view[site] = produced_at

        self.system.network.register("cloud", "aggregate.push", handle_push)

        def push(s) -> None:
            for site in range(self.params.n_sites):
                edge = self.site_edge(site)
                if not self.system.fleet.get(edge).up:
                    continue
                aggregate = self._aggregates.get(site)
                if aggregate is None:
                    continue
                self.system.network.send(
                    edge, "cloud", "aggregate.push",
                    payload={"site": site, "count": aggregate[0], "t": aggregate[2]},
                    size_bytes=64,
                )
            s.schedule(self.params.aggregate_push_period, push, label="aggregate-push")

        sim.schedule(self.params.aggregate_push_period, push, label="aggregate-push")

    # -- probes (requirement signals) ---------------------------------------------#
    def _wire_probes(self) -> None:
        sim = self.system.sim
        params = self.params

        def probe(s) -> None:
            now = s.now
            # Service health levels.
            for site in range(params.n_sites):
                self.system.metrics.set_level(
                    f"service.healthy:{self.proc_name(site)}", now,
                    1.0 if self._proc_healthy(site) else 0.0,
                )
            # Control levels.
            for device_id in self.all_leaf_devices:
                self.system.metrics.set_level(
                    f"controlled:{device_id}", now,
                    1.0 if self._device_controlled(device_id, now) else 0.0,
                )
            # Dashboard freshness.
            self.system.metrics.record(
                "data.freshness:dashboard", now, self._dashboard_age(now)
            )
            s.schedule(params.probe_period, probe, label="probe")

        sim.schedule(params.probe_period, probe, label="probe")

    def _proc_healthy(self, site: int) -> bool:
        host = self.proc_host(site)
        if host is None:
            return False
        try:
            device = self.system.fleet.get(host)
        except KeyError:
            return False
        service = device.stack.service(self.proc_name(site))
        if not device.up or service is None or service.state != ServiceState.RUNNING:
            return False
        # Consumers are the site's devices: at least one must reach the host.
        return any(
            self.system.topology.reachable(d, host)
            for d in self.site_devices(site)
            if self.system.fleet.get(d).up
        )

    def _device_controlled(self, device_id: str, now: float) -> bool:
        for loop in self._loops.values():
            if device_id in loop.scope:
                age = loop.knowledge.age_of(device_id, now)
                if age is not None and age <= self.params.control_staleness:
                    return True
        return False

    def _dashboard_age(self, now: float) -> float:
        """Age of the *stalest* site aggregate at the dashboard consumer.

        Consumer placement follows the architecture: cloud for ML2/ML3
        (operator connects to the cloud portal), the site-0 edge replica
        for ML4 (decentralized serving), nothing for ML1 (isolated flows).
        """
        if self.features.data_replication and self._edge_stores:
            consumer = self._edge_stores["edge0"]
            aggregate_map: LWWMap = consumer.get("aggregates")
            ages = []
            for site in range(self.params.n_sites):
                entry = aggregate_map.get(str(site))
                ages.append(now - entry["t"] if entry is not None else now)
            return max(ages)
        ages = [
            now - self._dashboard_view.get(site, 0.0)
            for site in range(self.params.n_sites)
        ]
        return max(ages) if ages else now

    # ------------------------------------------------------------------ #
    # Disruption schedule (identical across levels)
    # ------------------------------------------------------------------ #
    def _build_disruption_schedule(self) -> None:
        if self.params.disruption_rate is not None:
            self._build_random_schedule()
            return
        p = self.params
        s = self.schedule
        # A processing-service failure early on (permanent: only repair
        # mechanisms fix it).
        s.add(15.0, _ProcServiceFailure(name="svc-fail:proc0", site=0, scenario=self,
                                        duration=20.0))
        # A leaf device crash.
        victim = self.site_devices(0)[1]
        s.add(20.0, CrashRecoveryFault(name=f"crash:{victim}", duration=15.0,
                                       device_id=victim))
        # The canonical cloud outage.
        s.add(40.0, PartitionFault(name="cloud-outage", duration=25.0,
                                   isolate_node="cloud"))
        # A second service failure *during* the outage.
        if p.n_sites > 1:
            s.add(45.0, _ProcServiceFailure(name="svc-fail:proc1", site=1, scenario=self,
                                            duration=15.0))
        # An edge node crash.
        if p.n_sites > 1:
            s.add(70.0, CrashRecoveryFault(name="crash:edge1", duration=20.0,
                                           device_id="edge1"))
        # A latency spike on a device uplink.
        last_site = p.n_sites - 1
        device = self.site_devices(last_site)[0]
        s.add(95.0, LatencySpikeFault(name="latency-spike", duration=10.0,
                                      node_a=device, node_b=self.site_edge(last_site),
                                      factor=10.0))

    def _build_random_schedule(self) -> None:
        """Seeded stochastic disruption of configurable intensity.

        Service failures are addressed to the *initial* proc hosts; under
        ML4 a re-placed service simply escapes later occurrences (correct:
        the fault hits the old host, where the service no longer lives).
        """
        from repro.faults.schedule import RandomDisruptionGenerator

        p = self.params
        generator = RandomDisruptionGenerator(
            self.system.rngs.stream("disruption"),
            rate=p.disruption_rate,
            mean_duration=p.disruption_mean_duration,
            fault_mix={"crash": 0.35, "service": 0.3, "latency": 0.2,
                       "partition": 0.15},
        )
        service_targets = [
            (self.proc_host(site), self.proc_name(site))
            for site in range(p.n_sites)
            if self.proc_host(site) is not None
        ]
        link_targets = [
            (device, self.site_edge(site))
            for site in range(p.n_sites)
            for device in self.site_devices(site)
        ]
        generated = generator.generate(
            p.horizon,
            crash_targets=self.all_leaf_devices,
            service_targets=service_targets,
            link_targets=link_targets,
            partition_targets=["cloud"] + [self.site_edge(s)
                                           for s in range(p.n_sites)],
        )
        for entry in generated.entries:
            self.schedule.add(entry.time, entry.fault)

    # ------------------------------------------------------------------ #
    # Requirements and execution
    # ------------------------------------------------------------------ #
    def requirements(self) -> List:
        p = self.params
        n_leaves = p.n_sites * p.sensors_per_site
        return [
            AvailabilityRequirement(
                series_names=[f"service.healthy:{self.proc_name(s)}"
                              for s in range(p.n_sites)],
                target=0.99, name="service-availability",
            ),
            LatencyRequirement(
                series_name="reading.latency", deadline=p.latency_deadline,
                quantile=0.95, name="reading-latency",
            ),
            CoverageRequirement(
                series_name="ingest",
                target_rate=0.9 * n_leaves / p.sensor_period,
                name="sensing-coverage",
            ),
            FreshnessRequirement(
                series_name="data.freshness:dashboard",
                max_age=p.freshness_max_age, name="dashboard-freshness",
            ),
            PrivacyRequirement(name="privacy"),
            ControlAvailabilityRequirement(
                series_names=[f"controlled:{d}" for d in self.all_leaf_devices],
                target=0.95, name="control-availability",
            ),
        ]

    def run(self) -> ResilienceReport:
        p = self.params
        self.system.run(until=p.horizon)
        analyzer = ResilienceAnalyzer(self.requirements(), window=1.0)
        ctx = EvaluationContext(metrics=self.system.metrics, trace=self.system.trace)
        windows = self.schedule.disruption_windows(p.horizon) if p.disruption else []
        return analyzer.analyze(ctx, p.horizon, windows, label=f"ML{int(self.level)}")


def run_maturity_comparison(
    params: Optional[ScenarioParams] = None,
    levels: Optional[List[MaturityLevel]] = None,
) -> Dict[MaturityLevel, ResilienceReport]:
    """Run the common workload under each maturity level (the T1/T2 bench)."""
    levels = levels or list(MaturityLevel)
    out: Dict[MaturityLevel, ResilienceReport] = {}
    for level in levels:
        scenario = MaturityScenario(level, params)
        out[level] = scenario.run()
    return out

"""Quantifiable requirements.

A :class:`Requirement` maps a time window of a run to a satisfaction
value in [0, 1] computed from the system's metric series and trace.  The
types below cover the requirement concerns the paper enumerates --
"reliability to performance or privacy" (§I), "timeliness, availability
and privacy data characteristics ... expressed as quantitative logical
properties" (§IV.B).

Binary requirements (privacy) return {0, 1}; graded ones return the
achieved fraction toward their target, capped at 1 -- so the resilience
score degrades smoothly rather than cliff-edging.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.simulation.metrics import MetricsRecorder
from repro.simulation.trace import TraceLog


@dataclass
class EvaluationContext:
    """Everything a requirement may consult."""

    metrics: MetricsRecorder
    trace: TraceLog


class Requirement:
    """Interface: satisfaction of a requirement over ``[start, end)``."""

    name: str = "requirement"
    weight: float = 1.0

    def satisfaction(self, ctx: EvaluationContext, start: float, end: float) -> Optional[float]:
        """Degree of satisfaction in [0,1]; None if nothing observable."""
        raise NotImplementedError

    def describe(self) -> str:
        return self.name


def _ratio_toward(achieved: Optional[float], target: float) -> Optional[float]:
    """Graded satisfaction: achieved/target capped to [0, 1]."""
    if achieved is None:
        return None
    if target <= 0:
        return 1.0
    return max(0.0, min(1.0, achieved / target))


@dataclass
class AvailabilityRequirement(Requirement):
    """Time-weighted mean of level series must reach ``target``.

    ``series_names`` are level series (e.g. ``up:<device>`` or
    ``service.healthy:<name>``); satisfaction is the mean availability
    across them, graded against the target.
    """

    series_names: Sequence[str] = ()
    target: float = 0.99
    name: str = "availability"
    weight: float = 1.0

    def satisfaction(self, ctx: EvaluationContext, start: float, end: float) -> Optional[float]:
        values: List[float] = []
        for series_name in self.series_names:
            if not ctx.metrics.has_series(series_name):
                continue
            mean = ctx.metrics.series(series_name).time_weighted_mean(start, end)
            if mean is not None:
                values.append(mean)
        if not values:
            return None
        return _ratio_toward(sum(values) / len(values), self.target)


@dataclass
class LatencyRequirement(Requirement):
    """The ``quantile`` of a latency sample series must be <= ``deadline``.

    Satisfaction is the fraction of samples in the window meeting the
    deadline, graded against the quantile target (e.g. target 0.95 with
    93% of samples on time scores 0.93/0.95).
    """

    series_name: str = "latency"
    deadline: float = 0.1
    quantile: float = 0.95
    name: str = "latency"
    weight: float = 1.0

    def satisfaction(self, ctx: EvaluationContext, start: float, end: float) -> Optional[float]:
        if not ctx.metrics.has_series(self.series_name):
            return None
        samples = [v for _, v in ctx.metrics.series(self.series_name).window(start, end)]
        if not samples:
            return None
        on_time = sum(1 for s in samples if s <= self.deadline) / len(samples)
        return _ratio_toward(on_time, self.quantile)


@dataclass
class FreshnessRequirement(Requirement):
    """Mean of a freshness (age) sample series must be <= ``max_age``.

    Satisfaction is the fraction of freshness samples within the bound.
    """

    series_name: str = "data.freshness:key"
    max_age: float = 5.0
    name: str = "freshness"
    weight: float = 1.0

    def satisfaction(self, ctx: EvaluationContext, start: float, end: float) -> Optional[float]:
        if not ctx.metrics.has_series(self.series_name):
            return None
        samples = [v for _, v in ctx.metrics.series(self.series_name).window(start, end)]
        if not samples:
            return None
        return sum(1 for s in samples if s <= self.max_age) / len(samples)


@dataclass
class PrivacyRequirement(Requirement):
    """Zero privacy violations in the window (binary).

    Violations are trace events ``category="governance",
    name="privacy-violation"`` -- emitted by archetypes that *detect* (or
    post-hoc audit) flows breaching policy.  Enforced systems emit none.
    """

    name: str = "privacy"
    weight: float = 1.0

    def satisfaction(self, ctx: EvaluationContext, start: float, end: float) -> Optional[float]:
        violations = ctx.trace.select(
            category="governance", name="privacy-violation", start=start, end=end
        )
        return 0.0 if violations else 1.0


@dataclass
class CoverageRequirement(Requirement):
    """A counter-rate requirement: events/second must reach ``target_rate``.

    Used for sensing coverage -- expected readings delivered per second at
    the processing service.  Reads a sample series where each delivered
    reading appended 1.0.
    """

    series_name: str = "ingest"
    target_rate: float = 1.0
    name: str = "coverage"
    weight: float = 1.0

    def satisfaction(self, ctx: EvaluationContext, start: float, end: float) -> Optional[float]:
        if end <= start or not ctx.metrics.has_series(self.series_name):
            return None
        count = len(ctx.metrics.series(self.series_name).window(start, end))
        rate = count / (end - start)
        return _ratio_toward(rate, self.target_rate)


@dataclass
class ControlAvailabilityRequirement(Requirement):
    """Devices must be under *working* control (§V's control availability).

    Reads level series ``controlled:<device>`` (1 while some control loop
    has recently observed the device); satisfaction is the mean controlled
    fraction over the window, graded against the target.
    """

    series_names: Sequence[str] = ()
    target: float = 0.95
    name: str = "control-availability"
    weight: float = 1.0

    def satisfaction(self, ctx: EvaluationContext, start: float, end: float) -> Optional[float]:
        values = []
        for series_name in self.series_names:
            if not ctx.metrics.has_series(series_name):
                continue
            mean = ctx.metrics.series(series_name).time_weighted_mean(start, end)
            if mean is not None:
                values.append(mean)
        if not values:
            return None
        return _ratio_toward(sum(values) / len(values), self.target)

"""The resilience metric.

Operationalizes the paper's definition -- "persistence of reliable
requirements satisfaction when facing change" -- as follows (DESIGN.md §4):

For each requirement r, satisfaction s_r(w) is evaluated over consecutive
windows of the run.  Given the disruption intervals D (from the fault
schedule or the trace), we report per requirement:

* ``baseline``    -- mean satisfaction over windows outside D;
* ``under_disruption`` -- mean satisfaction over windows inside D (the
  *persistence* term: 1.0 means disruption never dented the requirement);
* ``recovery_time`` -- for each disruption interval, how long after its
  *end* satisfaction first returned to >= ``recovered_threshold`` (0 if it
  never dropped).

The system's **resilience score** is the weighted mean over requirements
of ``under_disruption`` -- bounded [0,1], 1.0 = fully resilient.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.requirements import EvaluationContext, Requirement
from repro.faults.schedule import merge_windows


@dataclass
class RequirementAssessment:
    """Per-requirement outcome of a resilience analysis."""

    name: str
    weight: float
    baseline: Optional[float]
    under_disruption: Optional[float]
    recovery_times: List[float] = field(default_factory=list)
    samples: List[Tuple[float, Optional[float]]] = field(default_factory=list)

    @property
    def overall(self) -> Optional[float]:
        """Mean satisfaction over the whole horizon (both regimes)."""
        values = [v for _, v in self.samples if v is not None]
        if not values:
            return None
        return sum(values) / len(values)

    @property
    def mean_recovery_time(self) -> Optional[float]:
        finite = [t for t in self.recovery_times if not math.isinf(t)]
        if not finite:
            return None
        return sum(finite) / len(finite)

    @property
    def unrecovered(self) -> int:
        return sum(1 for t in self.recovery_times if math.isinf(t))


@dataclass
class ResilienceReport:
    """Aggregate outcome for one system/run."""

    label: str
    horizon: float
    disruption_windows: List[Tuple[float, float]]
    assessments: List[RequirementAssessment]

    @property
    def resilience_score(self) -> float:
        """Weighted mean under-disruption satisfaction in [0, 1]."""
        weighted, total = 0.0, 0.0
        for assessment in self.assessments:
            if assessment.under_disruption is None:
                continue
            weighted += assessment.weight * assessment.under_disruption
            total += assessment.weight
        return weighted / total if total else 0.0

    @property
    def overall_score(self) -> float:
        """Weighted mean satisfaction over the whole horizon.

        Unlike :attr:`resilience_score` (which conditions on disruption
        windows and is therefore not comparable across different
        disruption *amounts*), this is the right y-axis when sweeping
        disruption intensity.
        """
        weighted, total = 0.0, 0.0
        for assessment in self.assessments:
            if assessment.overall is None:
                continue
            weighted += assessment.weight * assessment.overall
            total += assessment.weight
        return weighted / total if total else 0.0

    @property
    def baseline_score(self) -> float:
        weighted, total = 0.0, 0.0
        for assessment in self.assessments:
            if assessment.baseline is None:
                continue
            weighted += assessment.weight * assessment.baseline
            total += assessment.weight
        return weighted / total if total else 0.0

    def assessment(self, name: str) -> RequirementAssessment:
        for candidate in self.assessments:
            if candidate.name == name:
                return candidate
        raise KeyError(f"no assessment {name!r}")

    def summary_rows(self) -> List[Dict[str, object]]:
        rows = []
        for a in self.assessments:
            rows.append({
                "requirement": a.name,
                "baseline": a.baseline,
                "under_disruption": a.under_disruption,
                "mean_recovery_s": a.mean_recovery_time,
                "unrecovered": a.unrecovered,
            })
        return rows


class ResilienceAnalyzer:
    """Computes a :class:`ResilienceReport` from a completed run."""

    def __init__(
        self,
        requirements: Sequence[Requirement],
        window: float = 1.0,
        recovered_threshold: float = 0.95,
    ) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        self.requirements = list(requirements)
        self.window = window
        self.recovered_threshold = recovered_threshold

    def analyze(
        self,
        ctx: EvaluationContext,
        horizon: float,
        disruption_windows: Sequence[Tuple[float, float]],
        label: str = "system",
    ) -> ResilienceReport:
        windows = merge_windows(list(disruption_windows))
        assessments = [
            self._assess(requirement, ctx, horizon, windows)
            for requirement in self.requirements
        ]
        return ResilienceReport(
            label=label, horizon=horizon,
            disruption_windows=windows, assessments=assessments,
        )

    # -- per-requirement ---------------------------------------------------------#
    def _assess(
        self,
        requirement: Requirement,
        ctx: EvaluationContext,
        horizon: float,
        disruptions: List[Tuple[float, float]],
    ) -> RequirementAssessment:
        samples: List[Tuple[float, Optional[float]]] = []
        t = 0.0
        while t < horizon:
            end = min(t + self.window, horizon)
            satisfaction = requirement.satisfaction(ctx, t, end)
            samples.append((t, satisfaction))
            t = end
        inside: List[float] = []
        outside: List[float] = []
        for t, value in samples:
            if value is None:
                continue
            mid = t + self.window / 2
            if any(start <= mid < end for start, end in disruptions):
                inside.append(value)
            else:
                outside.append(value)
        recovery_times = [
            self._recovery_time(samples, end, horizon)
            for _start, end in disruptions
            if end < horizon
        ]
        return RequirementAssessment(
            name=requirement.name,
            weight=requirement.weight,
            baseline=sum(outside) / len(outside) if outside else None,
            under_disruption=sum(inside) / len(inside) if inside else None,
            recovery_times=recovery_times,
            samples=samples,
        )

    def _recovery_time(
        self,
        samples: List[Tuple[float, Optional[float]]],
        disruption_end: float,
        horizon: float,
    ) -> float:
        """Time after ``disruption_end`` until satisfaction recovers.

        If the requirement was already satisfied at the disruption's end,
        recovery is 0; if it never re-reaches the threshold before the
        horizon, recovery is inf (counted as ``unrecovered``).
        """
        for t, value in samples:
            if t + self.window <= disruption_end or value is None:
                continue
            if value >= self.recovered_threshold:
                return max(0.0, t - disruption_end)
        return math.inf

"""The IoTSystem facade.

One object bundling the substrate every experiment needs: simulator,
seeded RNG registry, trace, metrics, topology, network, device fleet,
partition manager and fault injector.  Archetype builders, examples and
benchmarks all start from here instead of hand-wiring eight objects.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.devices.base import Device, DeviceClass
from repro.devices.fleet import DeviceFleet
from repro.faults.injector import FaultInjector
from repro.network.partition import PartitionManager
from repro.network.topology import Topology, build_edge_cloud_topology
from repro.network.transport import Network
from repro.observability.instrument import Instrument
from repro.observability.spans import SpanRecorder
from repro.simulation.kernel import Simulator
from repro.simulation.metrics import MetricsRecorder
from repro.simulation.rng import RngRegistry
from repro.simulation.trace import TraceLog


class IoTSystem:
    """A fully wired simulated IoT system.

    Create empty and add topology/devices, or use
    :meth:`with_edge_cloud_landscape` for the canonical Fig. 1 layout.
    """

    def __init__(self, seed: int = 0) -> None:
        self.sim = Simulator()
        self.rngs = RngRegistry(seed=seed)
        self.trace = TraceLog()
        self.metrics = MetricsRecorder()
        self.topology = Topology(rng=self.rngs.stream("network"))
        self.network = Network(self.sim, self.topology, trace=self.trace)
        self.fleet = DeviceFleet(self.sim, network=self.network,
                                 metrics=self.metrics, trace=self.trace)
        self.partitions = PartitionManager(self.sim, self.topology, trace=self.trace)
        self.injector = FaultInjector(
            self.sim, self.fleet, self.topology,
            partitions=self.partitions, trace=self.trace,
        )
        # edge node id -> device ids under it (set by landscape builders).
        self.sites: Dict[str, List[str]] = {}
        self.cloud_node: Optional[str] = None
        # Observability is opt-in (enable_observability); None when off so
        # instrumented hot paths cost a single attribute check.
        self.spans: Optional[SpanRecorder] = None
        # Telemetry self-metering (attach_meter) and the flight recorder
        # (enable_flight_recorder); None until enabled.
        self.meter = None
        self.flight = None

    # -- observability ----------------------------------------------------------#
    def enable_observability(self, instrument: bool = True,
                             sample_rate: Optional[float] = None,
                             meter: bool = False) -> SpanRecorder:
        """Attach causal-span recording (and optionally a kernel profiler).

        Spans propagate through the transport, the fault injector, the
        partition manager, and every protocol that reads
        ``network.spans`` (MAPE loops, gossip, raft, failure detectors).
        Safe to call after the system is fully wired; returns the recorder.

        ``sample_rate`` (0..1) enables head-based span sampling: the
        keep/drop decision is derived deterministically from the system
        seed and the root-span ordinal, so sampled runs journal and
        digest bit-identically to full runs.  Fault arcs are always kept.
        ``meter`` attaches an :class:`~repro.observability.overhead.OverheadMeter`
        that self-accounts the wall-clock cost of telemetry recording.
        """
        if self.spans is None:
            sampler = None
            if sample_rate is not None:
                from repro.observability.overhead import SpanSampler

                sampler = SpanSampler(sample_rate, seed=self.rngs.seed)
            self.spans = SpanRecorder(sampler=sampler)
        self.network.spans = self.spans
        self.injector.spans = self.spans
        self.partitions.spans = self.spans
        if instrument and self.sim.instrument is None:
            self.sim.instrument = Instrument()
        if meter and self.meter is None:
            from repro.observability.overhead import attach_meter

            self.meter = attach_meter(self)
        return self.spans

    def enable_flight_recorder(self, spec=None, loops=None, **kwargs):
        """Arm an incident flight recorder over this system; returns it.

        ``spec`` (a :class:`~repro.persistence.scenarios.ScenarioSpec`)
        makes captured bundles replayable; ``loops`` adds MAPE knowledge
        snapshots to the evidence.  The armed recorder is also published
        under ``sim.context["flight"]`` so faults and gates can trigger
        it without holding a reference.
        """
        from repro.observability.flight import FlightRecorder

        if self.flight is None:
            self.flight = FlightRecorder(self, spec=spec, loops=loops,
                                         **kwargs)
            self.flight.arm()
            self.sim.context["flight"] = self.flight
        return self.flight

    def profile_snapshot(self, meta=None):
        """Capture a profiling-plane snapshot of this system's telemetry.

        A :func:`~repro.observability.profile.capture_profile` dict over
        the kernel instrument and span recorder as they stand -- pure
        read, so calling it mid-run perturbs nothing the digest sees.
        Requires :meth:`enable_observability` (returns a near-empty
        profile otherwise).
        """
        from repro.observability.profile import capture_profile

        merged = {"seed": self.rngs.seed}
        if meta:
            merged.update(meta)
        return capture_profile(
            instrument=self.sim.instrument, spans=self.spans,
            meta=merged, now=self.sim.now)

    # -- construction ----------------------------------------------------------#
    @classmethod
    def with_edge_cloud_landscape(
        cls,
        n_sites: int,
        devices_per_site: int,
        seed: int = 0,
        device_class: DeviceClass = DeviceClass.GATEWAY,
        mesh_sites: bool = True,
        domain_per_site: bool = False,
    ) -> "IoTSystem":
        """Build the Fig. 1 landscape: cloud, edge sites, local devices.

        ``device_class`` picks what the leaf devices are (gateways by
        default so they can host services; use SENSOR for pure sensing).
        With ``domain_per_site``, each site gets its own administrative
        domain ``dom{site}``; otherwise everything is in ``default``.
        """
        system = cls(seed=seed)
        topo, sites = build_edge_cloud_topology(
            n_sites, devices_per_site,
            rng=system.rngs.stream("network"),
            mesh_sites=mesh_sites,
        )
        # Adopt the built topology (the facade pre-made an empty one).
        system.topology = topo
        system.network = Network(system.sim, topo, trace=system.trace)
        system.fleet = DeviceFleet(system.sim, network=system.network,
                                   metrics=system.metrics, trace=system.trace)
        system.partitions = PartitionManager(system.sim, topo, trace=system.trace)
        system.injector = FaultInjector(
            system.sim, system.fleet, topo,
            partitions=system.partitions, trace=system.trace,
        )
        system.sites = sites
        system.cloud_node = "cloud"
        system.fleet.add(Device("cloud", DeviceClass.CLOUD, location="cloud"))
        for index, (edge, members) in enumerate(sorted(sites.items())):
            domain = f"dom{index}" if domain_per_site else "default"
            system.fleet.add(Device(edge, DeviceClass.EDGE,
                                    domain=domain, location=f"site{index}"))
            for member in members:
                system.fleet.add(Device(member, device_class,
                                        domain=domain, location=f"site{index}"))
        return system

    def kpi_report(self, horizon: Optional[float] = None):
        """Resilience KPIs derived from this system's recorded telemetry.

        See :mod:`repro.observability.kpis`; works with observability off
        (availability/violation KPIs only) or on (full arc/convergence
        breakdown).  ``horizon`` defaults to the current simulated time.
        """
        from repro.observability.kpis import kpi_report_for_system

        return kpi_report_for_system(self, horizon=horizon)

    # -- convenience ----------------------------------------------------------- #
    @property
    def edge_nodes(self) -> List[str]:
        return sorted(self.sites)

    def site_of(self, device_id: str) -> Optional[str]:
        for edge, members in self.sites.items():
            if device_id in members or device_id == edge:
                return edge
        return None

    def run(self, until: float) -> None:
        self.sim.run(until=until)

    def device(self, device_id: str) -> Device:
        return self.fleet.get(device_id)

"""Tables 1 and 2 as data: disruption vectors and maturity levels.

The paper's roadmap is a 5x4 matrix: five *disruption vectors* (the rows
implicit in Tables 1-2) by four *maturity levels* ML1-ML4.  This module
encodes the matrix verbatim (cell texts condensed from the paper) plus the
feature flags each level grants -- the flags are what the archetype
builders in :mod:`repro.core.maturity` consume, so the taxonomy and the
runnable systems cannot drift apart.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Tuple


class DisruptionVector(enum.Enum):
    """The five roadmap dimensions (§III.B)."""

    PERVASIVENESS = "pervasiveness"     # infrastructure openness / utility
    SERVICES = "services"               # service management / deviceless
    VERIFICATION = "verification"       # requirements validation
    OPERATIONS = "operations"           # automation of ops / self-*
    DATA = "data"                       # data flows and governance


class MaturityLevel(enum.IntEnum):
    """ML1-ML4 (§III.B); ordered, so ``ml >= MaturityLevel.ML3`` works."""

    ML1 = 1   # traditional vertically coupled IoT silos
    ML2 = 2   # hybrid IoT-Cloud systems
    ML3 = 3   # edge-centric systems
    ML4 = 4   # resilient IoT systems


#: Condensed cell texts of Tables 1 and 2, keyed (vector, level).
MATURITY_TABLE: Dict[Tuple[DisruptionVector, MaturityLevel], str] = {
    (DisruptionVector.PERVASIVENESS, MaturityLevel.ML1):
        "IoT silos - vertically closed and task-specific IoT infrastructure",
    (DisruptionVector.PERVASIVENESS, MaturityLevel.ML2):
        "Cloud-based platforms for brokering IoT data",
    (DisruptionVector.PERVASIVENESS, MaturityLevel.ML3):
        "Common access to specific types of resources (gateways, cloudlets, microclouds)",
    (DisruptionVector.PERVASIVENESS, MaturityLevel.ML4):
        "Edge infrastructure consumed as a full-fledged utility",
    (DisruptionVector.SERVICES, MaturityLevel.ML1):
        "Business logic bundled and shipped with IoT devices",
    (DisruptionVector.SERVICES, MaturityLevel.ML2):
        "Services decoupled, hard line between IoT and cloud responsibilities",
    (DisruptionVector.SERVICES, MaturityLevel.ML3):
        "Some shared services exist; services are partly managed",
    (DisruptionVector.SERVICES, MaturityLevel.ML4):
        "Deviceless - business logic fully managed and abstracted from infrastructure",
    (DisruptionVector.VERIFICATION, MaturityLevel.ML1):
        "Ad hoc requirements with little to no validation",
    (DisruptionVector.VERIFICATION, MaturityLevel.ML2):
        "Limited verification; parts of the system offer service-level agreements",
    (DisruptionVector.VERIFICATION, MaturityLevel.ML3):
        "Task-specific formal verification possible",
    (DisruptionVector.VERIFICATION, MaturityLevel.ML4):
        "Formally verifiable requirements of both infrastructure and application logic",
    (DisruptionVector.OPERATIONS, MaturityLevel.ML1):
        "Exclusively manual interactions with on-site presence",
    (DisruptionVector.OPERATIONS, MaturityLevel.ML2):
        "Partly automated operations processes, mainly on the Cloud side",
    (DisruptionVector.OPERATIONS, MaturityLevel.ML3):
        "Full automation of specific tasks; manual interactions handled remotely",
    (DisruptionVector.OPERATIONS, MaturityLevel.ML4):
        "Autonomous control, coordination and self-healing",
    (DisruptionVector.DATA, MaturityLevel.ML1):
        "Proprietary, task-specific protocols; isolated data flows",
    (DisruptionVector.DATA, MaturityLevel.ML2):
        "Unidirectional data flows, no explicit support for data governance",
    (DisruptionVector.DATA, MaturityLevel.ML3):
        "Bidirectional Edge-Cloud data flows; governance limited to specific domains",
    (DisruptionVector.DATA, MaturityLevel.ML4):
        "Unconstrained data flows; governance among administrative domains & trust levels",
}

DISRUPTION_VECTORS: List[DisruptionVector] = list(DisruptionVector)


@dataclass(frozen=True)
class MaturityFeatures:
    """The mechanism flags a maturity level grants.

    These are the *operational semantics* of each table row: archetype
    builders consult only this object, so each cell of the table maps to
    observable system behaviour.
    """

    level: MaturityLevel
    # pervasiveness
    has_cloud: bool
    edge_compute: bool
    # services
    service_placement: str          # "bundled" | "cloud" | "edge" | "deviceless"
    failover_replacement: bool      # deviceless re-placement on failure
    # verification
    runtime_monitoring: bool
    design_time_verification: bool
    # operations
    self_healing: str               # "none" | "cloud" | "edge"
    peer_coordination: bool         # gossip/membership/election among edges
    # data
    data_flows: str                 # "isolated" | "unidirectional" | "bidirectional" | "governed"
    data_replication: bool          # CRDT replication among edge peers
    governance_enforced: bool
    edge_anonymization: bool


MATURITY_FEATURES: Dict[MaturityLevel, MaturityFeatures] = {
    MaturityLevel.ML1: MaturityFeatures(
        level=MaturityLevel.ML1,
        has_cloud=False, edge_compute=False,
        service_placement="bundled", failover_replacement=False,
        runtime_monitoring=False, design_time_verification=False,
        self_healing="none", peer_coordination=False,
        data_flows="isolated", data_replication=False,
        governance_enforced=False, edge_anonymization=False,
    ),
    MaturityLevel.ML2: MaturityFeatures(
        level=MaturityLevel.ML2,
        has_cloud=True, edge_compute=False,
        service_placement="cloud", failover_replacement=False,
        runtime_monitoring=True, design_time_verification=False,
        self_healing="cloud", peer_coordination=False,
        data_flows="unidirectional", data_replication=False,
        governance_enforced=False, edge_anonymization=False,
    ),
    MaturityLevel.ML3: MaturityFeatures(
        level=MaturityLevel.ML3,
        has_cloud=True, edge_compute=True,
        service_placement="edge", failover_replacement=False,
        runtime_monitoring=True, design_time_verification=True,
        self_healing="edge", peer_coordination=False,
        data_flows="bidirectional", data_replication=False,
        governance_enforced=True, edge_anonymization=False,
    ),
    MaturityLevel.ML4: MaturityFeatures(
        level=MaturityLevel.ML4,
        has_cloud=True, edge_compute=True,
        service_placement="deviceless", failover_replacement=True,
        runtime_monitoring=True, design_time_verification=True,
        self_healing="edge", peer_coordination=True,
        data_flows="governed", data_replication=True,
        governance_enforced=True, edge_anonymization=True,
    ),
}


def features_of(level: MaturityLevel) -> MaturityFeatures:
    return MATURITY_FEATURES[level]


def table_row(vector: DisruptionVector) -> Dict[MaturityLevel, str]:
    """One row of the combined Tables 1-2."""
    return {ml: MATURITY_TABLE[(vector, ml)] for ml in MaturityLevel}

"""Inter-IoT data flows (paper §VI, Fig. 4).

Data in resilient IoT "flows from device to device in a bidirectional
manner, and among different data consumers and producers", traversing
"computational resources of diverse administrative domains and different
levels of trust".  This package provides:

* data items with provenance/lineage (:mod:`repro.data.item`,
  :mod:`repro.data.lineage`) -- "methodologically follow the data lineage
  within IoT";
* conflict-free replicated data types (:mod:`repro.data.crdt`) -- the
  decentralized synchronization substrate (no coordinator needed to merge);
* an anti-entropy replica synchronizer (:mod:`repro.data.sync`);
* topic-based publish/subscribe messaging (:mod:`repro.data.pubsub`);
* the three data-quality dimensions Fig. 4 highlights -- timeliness,
  availability, (and freshness as their operational proxy)
  (:mod:`repro.data.quality`).

Privacy -- the third Fig. 4 dimension -- is enforced by
:mod:`repro.governance` policies hooked into the synchronizer.
"""

from repro.data.item import DataItem, DataSensitivity
from repro.data.lineage import LineageEvent, LineageTracker
from repro.data.crdt import (
    Crdt,
    GCounter,
    GSet,
    LWWMap,
    LWWRegister,
    ORSet,
    PNCounter,
)
from repro.data.sync import ReplicaStore, SyncProtocol
from repro.data.pubsub import Broker, PubSubNode
from repro.data.quality import DataQualityMonitor
from repro.data.causal import CausalBroadcast, VectorClock
from repro.data.quorum import QuorumClient, QuorumReplica

__all__ = [
    "Broker",
    "CausalBroadcast",
    "Crdt",
    "DataItem",
    "DataQualityMonitor",
    "DataSensitivity",
    "GCounter",
    "GSet",
    "LWWMap",
    "LWWRegister",
    "LineageEvent",
    "LineageTracker",
    "ORSet",
    "PNCounter",
    "PubSubNode",
    "QuorumClient",
    "QuorumReplica",
    "ReplicaStore",
    "SyncProtocol",
    "VectorClock",
]

"""Vector clocks and causal broadcast.

§VI.B calls for "novel applications of data synchronization, network
storage, messaging and their supporting distributed protocols".  Causal
delivery is the classic middle ground between FIFO and total order that
decentralized (coordinator-free) systems can actually afford: a
:class:`CausalBroadcast` node delays incoming messages until all their
causal predecessors have been delivered, using :class:`VectorClock`
metadata -- no sequencer, no leader.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.network.transport import Message, Network
from repro.simulation.kernel import Simulator


class VectorClock:
    """A classic vector clock over string node ids."""

    def __init__(self, entries: Optional[Dict[str, int]] = None) -> None:
        self._entries: Dict[str, int] = dict(entries or {})

    def get(self, node: str) -> int:
        return self._entries.get(node, 0)

    def increment(self, node: str) -> "VectorClock":
        self._entries[node] = self.get(node) + 1
        return self

    def merge(self, other: "VectorClock") -> "VectorClock":
        """Pointwise maximum, in place."""
        for node, count in other._entries.items():
            if count > self.get(node):
                self._entries[node] = count
        return self

    def copy(self) -> "VectorClock":
        return VectorClock(self._entries)

    def as_dict(self) -> Dict[str, int]:
        return {n: c for n, c in self._entries.items() if c > 0}

    # -- causality relations ------------------------------------------------ #
    def happens_before(self, other: "VectorClock") -> bool:
        """Strictly precedes: <= everywhere and < somewhere."""
        at_most = all(count <= other.get(node)
                      for node, count in self._entries.items())
        strictly = any(count < other.get(node)
                       for node in set(self._entries) | set(other._entries)
                       for count in [self.get(node)])
        return at_most and strictly

    def concurrent_with(self, other: "VectorClock") -> bool:
        # Compare normalized state: explicit zero entries are equivalent
        # to absent ones, so they must not make equal clocks "concurrent".
        return (not self.happens_before(other)
                and not other.happens_before(self)
                and self.as_dict() != other.as_dict())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VectorClock):
            return NotImplemented
        return self.as_dict() == other.as_dict()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VC({self.as_dict()})"


@dataclass(frozen=True)
class CausalMessage:
    """A broadcast payload stamped with its causal context."""

    origin: str
    seq: int                      # origin's send counter (1-based)
    deps: Dict[str, int]          # vector clock at send time, minus own entry
    payload: Any = None


DeliveryHandler = Callable[[str, Any], None]   # (origin, payload)


class CausalBroadcast:
    """Causal-order broadcast over the datagram network.

    Implements the standard vector-clock algorithm: a message m from
    origin o with counter s is deliverable at node n once n has delivered
    s-1 messages from o and, for every other node q, at least
    ``m.deps[q]`` messages from q.  Undeliverable messages are buffered.
    The transport may drop messages; :meth:`missing` exposes the gap so a
    caller (or the periodic ``retransmit`` loop of the origin) can
    re-send -- delivery remains causal regardless.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        node_id: str,
        peers: List[str],
        on_deliver: Optional[DeliveryHandler] = None,
        retransmit_period: Optional[float] = None,
    ) -> None:
        self.sim = sim
        self.network = network
        self.node_id = node_id
        self.peers = [p for p in peers if p != node_id]
        self.on_deliver = on_deliver
        self.retransmit_period = retransmit_period
        # delivered[q] = number of q's broadcasts delivered here.
        self.delivered: Dict[str, int] = {p: 0 for p in self.peers}
        self.delivered[node_id] = 0
        self._send_seq = 0
        self._buffer: List[CausalMessage] = []
        self._log: List[Tuple[str, Any]] = []
        self._sent: List[CausalMessage] = []   # for retransmission
        network.register(node_id, "causal.msg", self._on_message)
        network.register(node_id, "causal.nack", self._on_nack)
        if retransmit_period is not None:
            self._retransmit_tick(sim)

    # -- sending ------------------------------------------------------------ #
    def broadcast(self, payload: Any) -> CausalMessage:
        """Causally broadcast ``payload`` to all peers (and deliver it
        locally, which is what makes local sends causally ordered)."""
        self._send_seq += 1
        deps = {q: n for q, n in self.delivered.items()
                if q != self.node_id and n > 0}
        message = CausalMessage(origin=self.node_id, seq=self._send_seq,
                                deps=deps, payload=payload)
        self._sent.append(message)
        self._deliver(message)
        for peer in self.peers:
            self._send_to(peer, message)
        return message

    def _send_to(self, peer: str, message: CausalMessage) -> None:
        self.network.send(self.node_id, peer, "causal.msg", payload=message,
                          size_bytes=96)

    # -- receiving ------------------------------------------------------------#
    def _on_message(self, network_message: Message) -> None:
        message: CausalMessage = network_message.payload
        if message.seq <= self.delivered.get(message.origin, 0):
            return   # duplicate
        self._buffer.append(message)
        self._drain()
        # If we detect a gap from this origin, ask for retransmission.
        expected = self.delivered.get(message.origin, 0) + 1
        if message.seq > expected:
            self.network.send(self.node_id, message.origin, "causal.nack",
                              payload={"from": self.node_id, "have": expected - 1},
                              size_bytes=48)

    def _on_nack(self, network_message: Message) -> None:
        payload = network_message.payload
        requester, have = payload["from"], payload["have"]
        for message in self._sent[have:]:
            self._send_to(requester, message)

    def _deliverable(self, message: CausalMessage) -> bool:
        if message.seq != self.delivered.get(message.origin, 0) + 1:
            return False
        return all(self.delivered.get(q, 0) >= n for q, n in message.deps.items())

    def _drain(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            for message in list(self._buffer):
                if self._deliverable(message):
                    self._buffer.remove(message)
                    self._deliver(message)
                    progressed = True

    def _deliver(self, message: CausalMessage) -> None:
        self.delivered[message.origin] = message.seq
        self._log.append((message.origin, message.payload))
        if self.on_deliver is not None:
            self.on_deliver(message.origin, message.payload)

    # -- retransmission loop --------------------------------------------------#
    def _retransmit_tick(self, sim: Simulator) -> None:
        if self.network.node_up(self.node_id) and self._sent:
            # Periodically re-offer our full history; receivers drop
            # duplicates, so this is a crude but correct anti-entropy.
            for peer in self.peers:
                self._send_to(peer, self._sent[-1])
        sim.schedule(self.retransmit_period, self._retransmit_tick,
                     label=f"causal-retransmit:{self.node_id}")

    # -- introspection ------------------------------------------------------ #
    @property
    def delivery_log(self) -> List[Tuple[str, Any]]:
        return list(self._log)

    @property
    def buffered_count(self) -> int:
        return len(self._buffer)

    def missing(self, origin: str) -> Optional[int]:
        """The next seq we are waiting for from ``origin`` if something
        from it is buffered, else None."""
        if any(m.origin == origin for m in self._buffer):
            return self.delivered.get(origin, 0) + 1
        return None


def causally_consistent(logs: List[List[Tuple[str, Any]]]) -> bool:
    """Check the causal-delivery invariant across nodes' delivery logs:
    for any two deliveries (a then b) at one node where a's origin-seq
    pair causally precedes b's, no other node delivers b before a.

    Simplified check used by tests: per-origin delivery order must be the
    origin's send order at every node (FIFO per origin), and any pair
    delivered in the same order by the origin itself must not be inverted
    elsewhere when one depends on the other.
    """
    for log in logs:
        per_origin: Dict[str, List[int]] = {}
        counters: Dict[str, int] = {}
        for origin, _payload in log:
            counters[origin] = counters.get(origin, 0) + 1
            per_origin.setdefault(origin, []).append(counters[origin])
        for origin, seqs in per_origin.items():
            if seqs != sorted(seqs):
                return False
    return True

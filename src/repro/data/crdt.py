"""Conflict-free replicated data types.

CRDTs are the concrete answer to §VI.B's call for "novel applications of
data synchronization ... in a decentralized manner": replicas accept local
writes while partitioned and merge deterministically on reconnection,
with no coordinator.  All types here are state-based (CvRDTs); ``merge``
is a join on the respective semilattice, so it is idempotent, commutative
and associative -- properties the hypothesis test-suite checks directly.

Implemented types:

* :class:`GCounter` / :class:`PNCounter` -- grow-only / up-down counters;
* :class:`GSet` / :class:`ORSet` -- grow-only set and observed-remove set
  (remove wins only over *observed* adds);
* :class:`LWWRegister` / :class:`LWWMap` -- last-writer-wins register and
  map with (timestamp, replica-id) total order.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Generic, Iterator, Optional, Set, Tuple, TypeVar

T = TypeVar("T")


class Crdt:
    """Common interface: ``merge`` joins another replica's state in place."""

    def merge(self, other: "Crdt") -> None:
        raise NotImplementedError

    def copy(self) -> "Crdt":
        raise NotImplementedError


class GCounter(Crdt):
    """Grow-only counter: per-replica increment slots, value = sum, merge = slot-wise max."""

    def __init__(self, replica_id: str) -> None:
        self.replica_id = replica_id
        self._slots: Dict[str, int] = {}

    def increment(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("GCounter cannot decrease; use PNCounter")
        if amount == 0:
            # No-op: creating a zero slot would make structurally unequal
            # states that are semantically identical, breaking merge laws.
            return
        self._slots[self.replica_id] = self._slots.get(self.replica_id, 0) + amount

    @property
    def value(self) -> int:
        return sum(self._slots.values())

    def merge(self, other: "GCounter") -> None:
        for replica, count in other._slots.items():
            if count > self._slots.get(replica, 0):
                self._slots[replica] = count

    def copy(self) -> "GCounter":
        clone = GCounter(self.replica_id)
        clone._slots = dict(self._slots)
        return clone

    def __eq__(self, other: object) -> bool:
        return isinstance(other, GCounter) and self._slots == other._slots

    def __repr__(self) -> str:  # pragma: no cover
        return f"GCounter({self.value})"


class PNCounter(Crdt):
    """Increment/decrement counter as a pair of GCounters."""

    def __init__(self, replica_id: str) -> None:
        self.replica_id = replica_id
        self._pos = GCounter(replica_id)
        self._neg = GCounter(replica_id)

    def increment(self, amount: int = 1) -> None:
        self._pos.increment(amount)

    def decrement(self, amount: int = 1) -> None:
        self._neg.increment(amount)

    @property
    def value(self) -> int:
        return self._pos.value - self._neg.value

    def merge(self, other: "PNCounter") -> None:
        self._pos.merge(other._pos)
        self._neg.merge(other._neg)

    def copy(self) -> "PNCounter":
        clone = PNCounter(self.replica_id)
        clone._pos = self._pos.copy()
        clone._neg = self._neg.copy()
        return clone

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, PNCounter)
            and self._pos == other._pos
            and self._neg == other._neg
        )

    def __repr__(self) -> str:  # pragma: no cover
        return f"PNCounter({self.value})"


class GSet(Crdt, Generic[T]):
    """Grow-only set; merge = union."""

    def __init__(self) -> None:
        self._items: Set[T] = set()

    def add(self, item: T) -> None:
        self._items.add(item)

    def __contains__(self, item: T) -> bool:
        return item in self._items

    def __iter__(self) -> Iterator[T]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> Set[T]:
        return set(self._items)

    def merge(self, other: "GSet") -> None:
        self._items |= other._items

    def copy(self) -> "GSet":
        clone: GSet = GSet()
        clone._items = set(self._items)
        return clone

    def __eq__(self, other: object) -> bool:
        return isinstance(other, GSet) and self._items == other._items


class ORSet(Crdt, Generic[T]):
    """Observed-remove set.

    Each add creates a unique tag; remove tombstones exactly the tags the
    removing replica has *observed*.  A concurrent re-add (new tag) thus
    survives the remove -- "add wins" for concurrent operations, the
    behaviour that keeps device registrations from being lost to stale
    removals during partitions.
    """

    def __init__(self, replica_id: str) -> None:
        self.replica_id = replica_id
        self._counter = itertools.count()
        self._adds: Set[Tuple[T, str]] = set()        # (item, tag)
        self._tombstones: Set[Tuple[T, str]] = set()

    def _new_tag(self) -> str:
        return f"{self.replica_id}:{next(self._counter)}"

    def add(self, item: T) -> None:
        self._adds.add((item, self._new_tag()))

    def remove(self, item: T) -> None:
        observed = {(i, tag) for (i, tag) in self._adds if i == item}
        self._tombstones |= observed

    def __contains__(self, item: T) -> bool:
        return any(
            entry not in self._tombstones and entry[0] == item
            for entry in self._adds
        )

    @property
    def items(self) -> Set[T]:
        return {i for (i, tag) in self._adds if (i, tag) not in self._tombstones}

    def __iter__(self) -> Iterator[T]:
        return iter(self.items)

    def __len__(self) -> int:
        return len(self.items)

    def merge(self, other: "ORSet") -> None:
        self._adds |= other._adds
        self._tombstones |= other._tombstones

    def copy(self) -> "ORSet":
        clone: ORSet = ORSet(self.replica_id)
        clone._counter = itertools.count(next(self._counter))
        clone._adds = set(self._adds)
        clone._tombstones = set(self._tombstones)
        return clone

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ORSet)
            and self._adds == other._adds
            and self._tombstones == other._tombstones
        )


class LWWRegister(Crdt, Generic[T]):
    """Last-writer-wins register ordered by (timestamp, replica_id)."""

    def __init__(self, replica_id: str) -> None:
        self.replica_id = replica_id
        self._value: Optional[T] = None
        self._stamp: Tuple[float, str] = (float("-inf"), "")

    def set(self, value: T, timestamp: float) -> None:
        stamp = (timestamp, self.replica_id)
        if stamp >= self._stamp:
            self._value = value
            self._stamp = stamp

    @property
    def value(self) -> Optional[T]:
        return self._value

    @property
    def timestamp(self) -> float:
        return self._stamp[0]

    def merge(self, other: "LWWRegister") -> None:
        if other._stamp > self._stamp:
            self._value = other._value
            self._stamp = other._stamp

    def copy(self) -> "LWWRegister":
        clone: LWWRegister = LWWRegister(self.replica_id)
        clone._value = self._value
        clone._stamp = self._stamp
        return clone

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, LWWRegister)
            and self._value == other._value
            and self._stamp == other._stamp
        )


class LWWMap(Crdt):
    """A map of LWW-resolved keys (delete is a timestamped tombstone)."""

    _TOMBSTONE = object()

    def __init__(self, replica_id: str) -> None:
        self.replica_id = replica_id
        self._entries: Dict[str, Tuple[Any, Tuple[float, str]]] = {}

    def set(self, key: str, value: Any, timestamp: float) -> None:
        self._put(key, value, (timestamp, self.replica_id))

    def delete(self, key: str, timestamp: float) -> None:
        self._put(key, self._TOMBSTONE, (timestamp, self.replica_id))

    def _put(self, key: str, value: Any, stamp: Tuple[float, str]) -> None:
        current = self._entries.get(key)
        if current is None or stamp >= current[1]:
            self._entries[key] = (value, stamp)

    def get(self, key: str) -> Optional[Any]:
        entry = self._entries.get(key)
        if entry is None or entry[0] is self._TOMBSTONE:
            return None
        return entry[0]

    def __contains__(self, key: str) -> bool:
        return self.get(key) is not None

    def keys(self) -> Set[str]:
        return {
            k for k, (v, _stamp) in self._entries.items() if v is not self._TOMBSTONE
        }

    def __len__(self) -> int:
        return len(self.keys())

    def merge(self, other: "LWWMap") -> None:
        for key, (value, stamp) in other._entries.items():
            self._put(key, value, stamp)

    def copy(self) -> "LWWMap":
        clone = LWWMap(self.replica_id)
        clone._entries = dict(self._entries)
        return clone

    def __eq__(self, other: object) -> bool:
        return isinstance(other, LWWMap) and self._entries == other._entries

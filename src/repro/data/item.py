"""Data items: the unit of inter-IoT data exchange.

A :class:`DataItem` carries the metadata that §VI says governance needs:
origin (producing device and domain), sensitivity, creation time, and a
monotone version.  Privacy scopes (:mod:`repro.governance`) decide flows by
looking at exactly these fields.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Optional, Tuple


class DataSensitivity(enum.IntEnum):
    """Ordered sensitivity ladder; higher is more restricted.

    The ordering forms the lattice that flow policies compare against
    ("data at or above PERSONAL may not leave the jurisdiction").
    """

    PUBLIC = 0
    INTERNAL = 1
    PERSONAL = 2
    SENSITIVE = 3


_item_ids = itertools.count()


@dataclass(frozen=True)
class DataItem:
    """An immutable datum with provenance metadata.

    Derivations (aggregation, anonymization) create new items linked to
    their parents through ``parent_ids`` -- the lineage tracker uses this
    to answer "where did this value come from".
    """

    key: str
    value: Any
    producer: str
    domain: str
    created_at: float
    sensitivity: DataSensitivity = DataSensitivity.INTERNAL
    item_id: int = field(default_factory=lambda: next(_item_ids))
    parent_ids: Tuple[int, ...] = ()
    subject: Optional[str] = None  # the person/asset the data is about

    def derive(
        self,
        key: str,
        value: Any,
        producer: str,
        domain: str,
        created_at: float,
        sensitivity: Optional[DataSensitivity] = None,
        extra_parents: Tuple["DataItem", ...] = (),
    ) -> "DataItem":
        """Create a derived item; sensitivity defaults to the parent's
        (derivations never silently *lower* sensitivity -- use
        :meth:`anonymize` for that)."""
        parents = (self.item_id,) + tuple(p.item_id for p in extra_parents)
        new_sensitivity = sensitivity if sensitivity is not None else self.sensitivity
        if sensitivity is not None and sensitivity < self.sensitivity:
            raise ValueError(
                "derive() cannot lower sensitivity; use anonymize()"
            )
        return DataItem(
            key=key,
            value=value,
            producer=producer,
            domain=domain,
            created_at=created_at,
            sensitivity=new_sensitivity,
            parent_ids=parents,
            subject=self.subject,
        )

    def anonymize(self, producer: str, created_at: float, value: Any = None) -> "DataItem":
        """An explicitly anonymized derivation: PUBLIC, subject stripped.

        This is the one sanctioned sensitivity-lowering operation --
        modeling e.g. edge-side aggregation before data leaves a privacy
        scope (§VI.B's mobile-phone-as-edge example).
        """
        return DataItem(
            key=f"{self.key}#anon",
            value=self.value if value is None else value,
            producer=producer,
            domain=self.domain,
            created_at=created_at,
            sensitivity=DataSensitivity.PUBLIC,
            parent_ids=(self.item_id,),
            subject=None,
        )

    @property
    def is_derived(self) -> bool:
        return bool(self.parent_ids)

    def age(self, now: float) -> float:
        return max(0.0, now - self.created_at)

"""Data lineage tracking.

§VI.B: "methodologically follow the data lineage within IoT -- data's
origins, what happens to it and where it moves over time, and providing
mechanisms for resilient data governance."  The tracker records item
creation, derivation and movement events, and answers ancestry/flow
queries -- including the governance audit question "did any item derived
from subject X ever reach domain Y".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.data.item import DataItem


@dataclass(frozen=True)
class LineageEvent:
    """One step in an item's history."""

    time: float
    action: str          # "created" | "derived" | "moved" | "denied"
    item_id: int
    location: str        # device where the action happened / destination
    domain: str
    detail: str = ""


class LineageTracker:
    """Append-only provenance graph over item ids."""

    def __init__(self) -> None:
        self._items: Dict[int, DataItem] = {}
        self._events: List[LineageEvent] = []
        self._parents: Dict[int, tuple] = {}

    # -- recording ---------------------------------------------------------- #
    def record_created(self, item: DataItem, time: float, location: str) -> None:
        self._register(item)
        action = "derived" if item.is_derived else "created"
        self._events.append(LineageEvent(time, action, item.item_id, location, item.domain))

    def record_moved(self, item: DataItem, time: float, dst_device: str, dst_domain: str) -> None:
        self._register(item)
        self._events.append(
            LineageEvent(time, "moved", item.item_id, dst_device, dst_domain)
        )

    def record_denied(self, item: DataItem, time: float, dst_device: str,
                      dst_domain: str, reason: str) -> None:
        self._register(item)
        self._events.append(
            LineageEvent(time, "denied", item.item_id, dst_device, dst_domain, detail=reason)
        )

    def _register(self, item: DataItem) -> None:
        if item.item_id not in self._items:
            self._items[item.item_id] = item
            self._parents[item.item_id] = item.parent_ids

    # -- queries -------------------------------------------------------------- #
    @property
    def events(self) -> List[LineageEvent]:
        return list(self._events)

    def item(self, item_id: int) -> Optional[DataItem]:
        return self._items.get(item_id)

    def history(self, item_id: int) -> List[LineageEvent]:
        return [e for e in self._events if e.item_id == item_id]

    def ancestors(self, item_id: int) -> Set[int]:
        """Transitive closure of parent links (excludes the item itself)."""
        out: Set[int] = set()
        frontier = list(self._parents.get(item_id, ()))
        while frontier:
            parent = frontier.pop()
            if parent not in out:
                out.add(parent)
                frontier.extend(self._parents.get(parent, ()))
        return out

    def descendants(self, item_id: int) -> Set[int]:
        out: Set[int] = set()
        for candidate, parents in self._parents.items():
            if item_id in self.ancestors(candidate) or item_id in parents:
                out.add(candidate)
        return out

    def origins(self, item_id: int) -> List[DataItem]:
        """Root (underived) ancestors of an item -- its true data sources."""
        closure = self.ancestors(item_id) | {item_id}
        return sorted(
            (
                self._items[i]
                for i in closure
                if i in self._items and not self._items[i].is_derived
            ),
            key=lambda item: item.item_id,
        )

    def domains_reached(self, item_id: int, include_descendants: bool = True) -> Set[str]:
        """Every domain the item (or anything derived from it) moved into."""
        ids = {item_id}
        if include_descendants:
            ids |= self.descendants(item_id)
        return {
            e.domain for e in self._events
            if e.item_id in ids and e.action == "moved"
        }

    def subject_exposure(self, subject: str) -> Set[str]:
        """Domains that received any item about ``subject`` (the audit
        query GDPR-style accountability needs)."""
        subject_ids = {
            i for i, item in self._items.items() if item.subject == subject
        }
        out: Set[str] = set()
        for item_id in subject_ids:
            out |= self.domains_reached(item_id)
        return out

    def denial_count(self) -> int:
        return sum(1 for e in self._events if e.action == "denied")

"""Topic-based publish/subscribe messaging.

Two deployment styles, mirroring the centralized-vs-decentralized theme:

* :class:`Broker` -- a single broker node (the ML1/ML2 pattern): subscribers
  register at the broker; a broker outage silences every topic.
* :class:`PubSubNode` -- brokerless: publishers unicast directly to the
  subscribers they know from a shared (gossiped or static) subscription
  view; no single point of failure.

Both count end-to-end deliveries and latency so experiments can compare
availability under disruption.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Callable, Dict, List, Optional, Set

from repro.network.transport import Message, Network
from repro.simulation.kernel import Simulator

Subscriber = Callable[[str, Any, float], None]  # (topic, payload, published_at)


class Broker:
    """Centralized pub/sub broker hosted on one node."""

    def __init__(self, sim: Simulator, network: Network, node_id: str) -> None:
        self.sim = sim
        self.network = network
        self.node_id = node_id
        self._subscriptions: Dict[str, Set[str]] = defaultdict(set)
        self.published = 0
        self.forwarded = 0
        network.register(node_id, "pubsub.publish", self._on_publish)
        network.register(node_id, "pubsub.subscribe", self._on_subscribe)

    def _on_subscribe(self, message: Message) -> None:
        payload = message.payload
        self._subscriptions[payload["topic"]].add(payload["subscriber"])

    def _on_publish(self, message: Message) -> None:
        payload = message.payload
        topic = payload["topic"]
        self.published += 1
        for subscriber in sorted(self._subscriptions.get(topic, ())):
            self.forwarded += 1
            self.network.send(
                self.node_id, subscriber, "pubsub.deliver",
                payload=payload, size_bytes=message.size_bytes,
            )


class PubSubNode:
    """A pub/sub endpoint; works against a broker or brokerless.

    In brokerless mode the node keeps its own view of who subscribes to
    what (fed by :meth:`add_remote_subscription`, typically wired to the
    gossip registry) and fans out directly.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        node_id: str,
        broker: Optional[str] = None,
    ) -> None:
        self.sim = sim
        self.network = network
        self.node_id = node_id
        self.broker = broker
        self._handlers: Dict[str, List[Subscriber]] = defaultdict(list)
        self._remote_subs: Dict[str, Set[str]] = defaultdict(set)
        self.delivered = 0
        self.published = 0
        self.latencies: List[float] = []
        network.register(node_id, "pubsub.deliver", self._on_deliver)

    # -- subscribing -------------------------------------------------------- #
    def subscribe(self, topic: str, handler: Subscriber) -> None:
        """Subscribe locally; announces to the broker when one is set."""
        self._handlers[topic].append(handler)
        if self.broker is not None:
            self.network.send(
                self.node_id, self.broker, "pubsub.subscribe",
                payload={"topic": topic, "subscriber": self.node_id},
                size_bytes=64,
            )

    def add_remote_subscription(self, topic: str, subscriber: str) -> None:
        """Brokerless mode: learn that ``subscriber`` wants ``topic``."""
        if subscriber != self.node_id:
            self._remote_subs[topic].add(subscriber)

    def remove_remote_subscription(self, topic: str, subscriber: str) -> None:
        self._remote_subs[topic].discard(subscriber)

    def subscribed_topics(self) -> List[str]:
        return sorted(self._handlers)

    # -- publishing ----------------------------------------------------------- #
    def publish(self, topic: str, value: Any, size_bytes: int = 128) -> None:
        self.published += 1
        envelope = {
            "topic": topic,
            "value": value,
            "published_at": self.sim.now,
            "publisher": self.node_id,
        }
        if self.broker is not None:
            self.network.send(self.node_id, self.broker, "pubsub.publish",
                              payload=envelope, size_bytes=size_bytes)
        else:
            for subscriber in sorted(self._remote_subs.get(topic, ())):
                self.network.send(self.node_id, subscriber, "pubsub.deliver",
                                  payload=envelope, size_bytes=size_bytes)
        # Local subscribers hear immediately either way.
        self._fan_in(topic, envelope)

    # -- delivery ------------------------------------------------------------- #
    def _on_deliver(self, message: Message) -> None:
        envelope = message.payload
        self._fan_in(envelope["topic"], envelope)

    def _fan_in(self, topic: str, envelope: dict) -> None:
        handlers = self._handlers.get(topic, ())
        if not handlers:
            return
        self.delivered += 1
        self.latencies.append(self.sim.now - envelope["published_at"])
        for handler in list(handlers):
            handler(topic, envelope["value"], envelope["published_at"])

    @property
    def mean_latency(self) -> float:
        return sum(self.latencies) / len(self.latencies) if self.latencies else 0.0

"""Data-quality monitoring: timeliness, availability, freshness.

Fig. 4 highlights three qualities of inter-IoT data exchange.  This module
operationalizes them on top of the metrics recorder:

* **timeliness** -- fraction of observed transfers whose end-to-end delay
  met a deadline;
* **availability** -- time-weighted fraction of a window during which a
  datum (or its source) was obtainable;
* **freshness** -- age of the newest locally-available value of a key,
  sampled on read.

These feed :class:`~repro.core.requirements.FreshnessRequirement` and
friends, closing the loop from §VI's prose to measurable satisfaction.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.simulation.metrics import MetricsRecorder


class DataQualityMonitor:
    """Records and summarizes the Fig. 4 data-quality dimensions."""

    def __init__(self, metrics: MetricsRecorder) -> None:
        self.metrics = metrics
        self._last_update: Dict[str, float] = {}

    # -- timeliness ----------------------------------------------------------- #
    def record_transfer(self, key: str, sent_at: float, received_at: float) -> float:
        """Record one end-to-end transfer; returns its delay."""
        if received_at < sent_at:
            raise ValueError("received before sent")
        delay = received_at - sent_at
        self.metrics.record(f"data.delay:{key}", received_at, delay)
        self.metrics.record("data.delay", received_at, delay)
        return delay

    def timeliness(self, key: str, deadline: float) -> Optional[float]:
        """Fraction of transfers of ``key`` that met ``deadline``."""
        name = f"data.delay:{key}"
        if not self.metrics.has_series(name):
            return None
        series = self.metrics.series(name)
        delays = [v for _, v in series]
        if not delays:
            return None
        return sum(1 for d in delays if d <= deadline) / len(delays)

    # -- freshness ------------------------------------------------------------ #
    def record_update(self, key: str, produced_at: float, observed_at: float) -> None:
        """A replica received a (possibly stale) update of ``key``."""
        # Freshness baseline is production time: replication lag counts
        # against freshness even if the update just arrived.
        previous = self._last_update.get(key)
        if previous is None or produced_at > previous:
            self._last_update[key] = produced_at

    def sample_freshness(self, key: str, now: float) -> Optional[float]:
        """Age of the newest known value of ``key``; records the sample."""
        last = self._last_update.get(key)
        if last is None:
            return None
        age = max(0.0, now - last)
        self.metrics.record(f"data.freshness:{key}", now, age)
        return age

    def mean_freshness(self, key: str) -> Optional[float]:
        name = f"data.freshness:{key}"
        if not self.metrics.has_series(name):
            return None
        return self.metrics.series(name).mean()

    # -- availability --------------------------------------------------------- #
    def set_available(self, key: str, now: float, available: bool) -> None:
        """Flip the availability level signal of ``key``."""
        self.metrics.set_level(f"data.available:{key}", now, 1.0 if available else 0.0)

    def availability(self, key: str, start: float, end: float) -> Optional[float]:
        name = f"data.available:{key}"
        if not self.metrics.has_series(name):
            return None
        return self.metrics.series(name).time_weighted_mean(start, end)

    # -- reporting -------------------------------------------------------------- #
    def summary(self, keys: List[str], deadline: float, start: float, end: float) -> Dict[str, Dict[str, Optional[float]]]:
        """Per-key quality triple over a window."""
        out: Dict[str, Dict[str, Optional[float]]] = {}
        for key in keys:
            out[key] = {
                "timeliness": self.timeliness(key, deadline),
                "availability": self.availability(key, start, end),
                "mean_freshness": self.mean_freshness(key),
            }
        return out

"""Quorum-replicated key-value store.

The CP counterpart to the AP CRDT replication in :mod:`repro.data.sync`:
a Dynamo-style store where writes succeed only after ``write_quorum``
replica acks and reads consult ``read_quorum`` replicas, taking the
highest-versioned value.  With ``R + W > N`` reads see the latest
committed write -- but operations *block or fail* when a quorum is
unreachable, which is exactly the availability trade-off the Fig. 4
ablation measures against CRDTs.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.network.transport import Message, Network
from repro.simulation.kernel import Simulator


@dataclass(frozen=True)
class Versioned:
    """A value with a (version, writer) stamp; higher wins."""

    value: Any
    version: int
    writer: str

    def stamp(self) -> Tuple[int, str]:
        return (self.version, self.writer)


class QuorumReplica:
    """One replica: serves remote read/write requests for the store."""

    def __init__(self, sim: Simulator, network: Network, node_id: str) -> None:
        self.sim = sim
        self.network = network
        self.node_id = node_id
        self.data: Dict[str, Versioned] = {}
        network.register(node_id, "quorum.write", self._on_write)
        network.register(node_id, "quorum.read", self._on_read)

    def _on_write(self, message: Message) -> None:
        payload = message.payload
        key = payload["key"]
        incoming = Versioned(payload["value"], payload["version"], payload["writer"])
        current = self.data.get(key)
        if current is None or incoming.stamp() > current.stamp():
            self.data[key] = incoming
        self.network.send(self.node_id, message.src, "quorum.write_ack",
                          payload={"req": payload["req"], "from": self.node_id},
                          size_bytes=48)

    def _on_read(self, message: Message) -> None:
        payload = message.payload
        entry = self.data.get(payload["key"])
        self.network.send(
            self.node_id, message.src, "quorum.read_reply",
            payload={
                "req": payload["req"], "from": self.node_id,
                "value": entry.value if entry else None,
                "version": entry.version if entry else 0,
                "writer": entry.writer if entry else "",
            },
            size_bytes=96,
        )


class QuorumClient:
    """A client issuing quorum reads/writes from one node.

    Operations are asynchronous: callers pass a callback receiving
    ``(success, value_or_none)``; a timeout without quorum acks fails the
    operation (counted in :attr:`failed_writes` / :attr:`failed_reads`).
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        node_id: str,
        replicas: List[str],
        write_quorum: int,
        read_quorum: int,
        timeout: float = 1.0,
    ) -> None:
        n = len(replicas)
        if not 1 <= write_quorum <= n or not 1 <= read_quorum <= n:
            raise ValueError("quorums must be within [1, n_replicas]")
        self.sim = sim
        self.network = network
        self.node_id = node_id
        self.replicas = list(replicas)
        self.write_quorum = write_quorum
        self.read_quorum = read_quorum
        self.timeout = timeout
        self._req_ids = itertools.count()
        self._pending: Dict[int, dict] = {}
        self._version_counter = itertools.count(1)
        self.succeeded_writes = 0
        self.failed_writes = 0
        self.succeeded_reads = 0
        self.failed_reads = 0
        network.register(node_id, "quorum.write_ack", self._on_write_ack)
        network.register(node_id, "quorum.read_reply", self._on_read_reply)

    # -- writes ------------------------------------------------------------ #
    def write(self, key: str, value: Any,
              callback: Optional[Callable[[bool], None]] = None) -> int:
        """Write ``key``; success once ``write_quorum`` replicas ack."""
        req = next(self._req_ids)
        version = next(self._version_counter)
        self._pending[req] = {"kind": "write", "acks": set(),
                              "callback": callback, "done": False}
        for replica in self.replicas:
            self.network.send(
                self.node_id, replica, "quorum.write",
                payload={"req": req, "key": key, "value": value,
                         "version": version, "writer": self.node_id},
                size_bytes=128,
            )
        self.sim.schedule(self.timeout, lambda _s, r=req: self._expire(r),
                          label=f"quorum-timeout:{self.node_id}")
        return req

    def _on_write_ack(self, message: Message) -> None:
        payload = message.payload
        state = self._pending.get(payload["req"])
        if state is None or state["done"] or state["kind"] != "write":
            return
        state["acks"].add(payload["from"])
        if len(state["acks"]) >= self.write_quorum:
            state["done"] = True
            self.succeeded_writes += 1
            if state["callback"] is not None:
                state["callback"](True)

    # -- reads --------------------------------------------------------------- #
    def read(self, key: str,
             callback: Optional[Callable[[bool, Any], None]] = None) -> int:
        """Read ``key``; success once ``read_quorum`` replies arrive; the
        highest-versioned reply wins."""
        req = next(self._req_ids)
        self._pending[req] = {"kind": "read", "replies": [],
                              "callback": callback, "done": False}
        for replica in self.replicas:
            self.network.send(self.node_id, replica, "quorum.read",
                              payload={"req": req, "key": key}, size_bytes=64)
        self.sim.schedule(self.timeout, lambda _s, r=req: self._expire(r),
                          label=f"quorum-timeout:{self.node_id}")
        return req

    def _on_read_reply(self, message: Message) -> None:
        payload = message.payload
        state = self._pending.get(payload["req"])
        if state is None or state["done"] or state["kind"] != "read":
            return
        state["replies"].append(payload)
        if len(state["replies"]) >= self.read_quorum:
            state["done"] = True
            self.succeeded_reads += 1
            best = max(state["replies"],
                       key=lambda r: (r["version"], r["writer"]))
            if state["callback"] is not None:
                state["callback"](True, best["value"] if best["version"] else None)

    # -- timeouts --------------------------------------------------------------#
    def _expire(self, req: int) -> None:
        state = self._pending.pop(req, None)
        if state is None or state["done"]:
            return
        if state["kind"] == "write":
            self.failed_writes += 1
            if state["callback"] is not None:
                state["callback"](False)
        else:
            self.failed_reads += 1
            if state["callback"] is not None:
                state["callback"](False, None)

    @property
    def write_availability(self) -> float:
        total = self.succeeded_writes + self.failed_writes
        return self.succeeded_writes / total if total else 1.0

    @property
    def read_availability(self) -> float:
        total = self.succeeded_reads + self.failed_reads
        return self.succeeded_reads / total if total else 1.0

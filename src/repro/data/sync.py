"""Replica stores and anti-entropy synchronization.

A :class:`ReplicaStore` holds named CRDTs on one device; the
:class:`SyncProtocol` periodically exchanges copies with peer replicas and
merges -- push-pull anti-entropy, the decentralized synchronization §VI.B
calls for.  Every exchange passes through an optional *flow guard*
(installed by :mod:`repro.governance`) which can veto the transfer; denied
transfers are counted and traced, which is how the Fig. 4 experiment
verifies zero policy violations.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Tuple

from repro.data.crdt import Crdt
from repro.network.transport import Message, Network
from repro.simulation.kernel import Simulator
from repro.simulation.trace import TraceLog

#: guard(src_device, dst_device, crdt_name) -> (allowed, reason)
FlowGuard = Callable[[str, str, str], Tuple[bool, str]]


class ReplicaStore:
    """Named CRDT instances living on one device."""

    def __init__(self, device_id: str) -> None:
        self.device_id = device_id
        self._crdts: Dict[str, Crdt] = {}

    def register(self, name: str, crdt: Crdt) -> Crdt:
        if name in self._crdts:
            raise ValueError(f"crdt {name!r} already registered on {self.device_id!r}")
        self._crdts[name] = crdt
        return crdt

    def get(self, name: str) -> Crdt:
        crdt = self._crdts.get(name)
        if crdt is None:
            raise KeyError(f"no crdt {name!r} on {self.device_id!r}")
        return crdt

    def has(self, name: str) -> bool:
        return name in self._crdts

    @property
    def names(self) -> List[str]:
        return sorted(self._crdts)

    def merge_in(self, name: str, remote: Crdt) -> None:
        self.get(name).merge(remote)


class SyncProtocol:
    """Periodic push-pull anti-entropy between replica stores.

    Parameters
    ----------
    peers:
        Devices this node synchronizes with (the sync overlay, not
        necessarily the physical topology).
    flow_guard:
        Optional governance hook consulted before *sending* state; both
        directions of an exchange are guarded at their respective senders.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        store: ReplicaStore,
        peers: List[str],
        rng: random.Random,
        period: float = 1.0,
        flow_guard: Optional[FlowGuard] = None,
        trace: Optional[TraceLog] = None,
    ) -> None:
        self.sim = sim
        self.network = network
        self.store = store
        self.peers = [p for p in peers if p != store.device_id]
        self.rng = rng
        self.period = period
        self.flow_guard = flow_guard
        self.trace = trace
        self.syncs_sent = 0
        self.syncs_denied = 0
        self.merges_applied = 0
        self._running = False
        network.register(store.device_id, "sync.push", self._on_push)
        network.register(store.device_id, "sync.pull", self._on_pull)

    @property
    def device_id(self) -> str:
        return self.store.device_id

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._round(self.sim)

    def stop(self) -> None:
        self._running = False

    # -- rounds ------------------------------------------------------------ #
    def _round(self, sim: Simulator) -> None:
        if not self._running:
            return
        if self.peers and self.network.node_up(self.device_id):
            peer = self.rng.choice(sorted(self.peers))
            self._send_state(peer, "sync.push")
        sim.schedule(self.period, self._round, label=f"sync:{self.device_id}")

    def sync_now(self, peer: str) -> None:
        """Trigger an immediate exchange with a specific peer."""
        self._send_state(peer, "sync.push")

    def _send_state(self, peer: str, kind: str) -> None:
        allowed_state: Dict[str, Crdt] = {}
        for name in self.store.names:
            if self.flow_guard is not None:
                allowed, reason = self.flow_guard(self.device_id, peer, name)
                if not allowed:
                    self.syncs_denied += 1
                    if self.trace is not None:
                        self.trace.emit(
                            self.sim.now, "governance", "sync-denied",
                            subject=self.device_id, peer=peer, crdt=name,
                            reason=reason,
                        )
                    continue
            # Send a deep copy: replicas must never share mutable state.
            allowed_state[name] = self.store.get(name).copy()
        if not allowed_state:
            return
        self.syncs_sent += 1
        self.network.send(
            self.device_id, peer, kind,
            payload={"from": self.device_id, "state": allowed_state},
            size_bytes=128 + 96 * len(allowed_state),
        )

    # -- handlers ----------------------------------------------------------- #
    def _on_push(self, message: Message) -> None:
        self._merge_remote(message.payload.get("state", {}))
        # Reciprocate so the exchange is symmetric (pull phase).
        self._send_state(message.src, "sync.pull")

    def _on_pull(self, message: Message) -> None:
        self._merge_remote(message.payload.get("state", {}))

    def _merge_remote(self, remote_state: Dict[str, Crdt]) -> None:
        for name, crdt in remote_state.items():
            if self.store.has(name):
                self.store.merge_in(name, crdt)
                self.merges_applied += 1


def converged(stores: List[ReplicaStore], name: str) -> bool:
    """True if all stores' replicas of ``name`` are in identical states."""
    if not stores:
        return True
    reference = stores[0].get(name)
    return all(store.get(name) == reference for store in stores[1:])

"""Device models for the IoT landscape of Figure 1.

The paper's device spectrum runs "from microcontrollers to mobile phones
and micro-clouds" (§I).  Every device here is a software-hosting entity
with explicit, heterogeneous resources (:class:`~repro.devices.resources.ResourcePool`)
and a software stack (:class:`~repro.devices.software.SoftwareStack`) --
the paper's observation that "IoT is increasingly made up of software" is
the modeling premise.
"""

from repro.devices.resources import Battery, ResourcePool, ResourceSpec
from repro.devices.software import Service, ServiceState, SoftwareStack
from repro.devices.base import Device, DeviceClass, DEVICE_CLASS_SPECS
from repro.devices.fleet import DeviceFleet
from repro.devices.sensor import Actuator, Sensor

__all__ = [
    "Actuator",
    "Battery",
    "DEVICE_CLASS_SPECS",
    "Device",
    "DeviceClass",
    "DeviceFleet",
    "ResourcePool",
    "ResourceSpec",
    "Sensor",
    "Service",
    "ServiceState",
    "SoftwareStack",
]

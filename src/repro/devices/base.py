"""The base device model.

A :class:`Device` binds together the concepts the paper identifies as
defining IoT entities: a network identity, a device class on the
microcontroller-to-cloud spectrum, bounded resources, a heterogeneous
software stack, an administrative domain, and a physical locality.
"""

from __future__ import annotations

import enum
from typing import Any, Dict, Optional

from repro.devices.resources import Battery, ResourcePool, ResourceSpec
from repro.devices.software import Service, ServiceState, SoftwareStack, make_stack


class DeviceClass(enum.Enum):
    """The device spectrum of §I: sensors/actuators to clouds."""

    SENSOR = "sensor"
    ACTUATOR = "actuator"
    MOBILE = "mobile"
    GATEWAY = "gateway"
    EDGE = "edge"          # cloudlets, micro-clouds -- "edge components" (§I)
    CLOUD = "cloud"


#: Per-class resource capacities and stack presets.  Magnitudes follow the
#: paper's spectrum: sensors are three to five orders of magnitude smaller
#: than cloud nodes.
DEVICE_CLASS_SPECS: Dict[DeviceClass, Dict] = {
    DeviceClass.SENSOR: {
        "spec": ResourceSpec(cpu=10.0, memory=0.25, storage=1.0, energy_capacity=1000.0),
        "stack": "bare",
    },
    DeviceClass.ACTUATOR: {
        "spec": ResourceSpec(cpu=10.0, memory=0.25, storage=1.0, energy_capacity=1000.0),
        "stack": "bare",
    },
    DeviceClass.MOBILE: {
        "spec": ResourceSpec(cpu=2000.0, memory=4096.0, storage=65536.0, energy_capacity=15000.0),
        "stack": "mobile",
    },
    DeviceClass.GATEWAY: {
        "spec": ResourceSpec(cpu=1000.0, memory=1024.0, storage=16384.0, energy_capacity=None),
        "stack": "gateway",
    },
    DeviceClass.EDGE: {
        "spec": ResourceSpec(cpu=8000.0, memory=16384.0, storage=524288.0, energy_capacity=None),
        "stack": "edge",
    },
    DeviceClass.CLOUD: {
        "spec": ResourceSpec(cpu=128000.0, memory=1048576.0, storage=16777216.0,
                             energy_capacity=None),
        "stack": "cloud",
    },
}


class Device:
    """A software-hosting IoT entity.

    Parameters
    ----------
    device_id:
        Unique id; doubles as the network endpoint name.
    device_class:
        Position on the device spectrum; fixes default resources and stack.
    domain:
        Administrative domain id (see :mod:`repro.governance`).
    location:
        Physical locality label (site / locale), the paper's "locality as a
        key contextual characteristic".
    """

    def __init__(
        self,
        device_id: str,
        device_class: DeviceClass,
        domain: str = "default",
        location: str = "site0",
        spec: Optional[ResourceSpec] = None,
        stack: Optional[SoftwareStack] = None,
    ) -> None:
        class_defaults = DEVICE_CLASS_SPECS[device_class]
        self.device_id = device_id
        self.device_class = device_class
        self.domain = domain
        self.location = location
        self.resources = ResourcePool(spec or class_defaults["spec"])
        self.stack = stack or make_stack(class_defaults["stack"], name=f"{device_id}-stack")
        self.battery = Battery(self.resources.spec.energy_capacity)
        self._up = True
        # Trust of the *circumstances* the device currently finds itself in
        # ("the current circumstances a device is found in may be
        # untrusted", §I); governance consults this.
        self.environment_trusted = True

    # -- liveness ----------------------------------------------------------- #
    @property
    def up(self) -> bool:
        return self._up and not self.battery.depleted

    def crash(self) -> None:
        self._up = False

    def recover(self) -> None:
        if self.battery.depleted:
            self.battery.recharge()
        self._up = True

    # -- service hosting ---------------------------------------------------- #
    def can_host(self, service: Service) -> bool:
        """True if stack runtime and free resources both admit ``service``."""
        if not self.stack.supports(service):
            return False
        if self.stack.has_service(service.name):
            return False
        return self.resources.can_fit(**service.demand())

    def host(self, service: Service) -> None:
        """Deploy and start a service, reserving its resources atomically."""
        if not self.stack.supports(service):
            raise ValueError(
                f"device {self.device_id!r} stack cannot run {service.name!r} "
                f"(runtime {service.runtime!r})"
            )
        self.resources.allocate(f"svc:{service.name}", **service.demand())
        try:
            self.stack.deploy(service)
        except Exception:
            self.resources.release(f"svc:{service.name}")
            raise
        self.stack.start(service.name)

    def evict(self, service_name: str) -> Service:
        """Stop a service and release its resources."""
        service = self.stack.undeploy(service_name)
        self.resources.release(f"svc:{service_name}")
        return service

    def hosts(self, service_name: str) -> bool:
        return self.stack.has_service(service_name)

    # -- persistence --------------------------------------------------------- #
    def snapshot_state(self) -> Dict[str, Any]:
        """JSON-able device state for checkpointing (Snapshottable)."""
        return {
            "up": self._up,
            "domain": self.domain,
            "location": self.location,
            "environment_trusted": self.environment_trusted,
            "battery_level": self.battery.level,
            "services": {
                s.name: {
                    "runtime": s.runtime, "cpu": s.cpu, "memory": s.memory,
                    "storage": s.storage, "version": s.version,
                    "provides": sorted(s.provides),
                    "requires": sorted(s.requires),
                    "state": s.state.value,
                }
                for s in self.stack.services
            },
        }

    def restore_state(self, state: Dict[str, Any]) -> None:
        """Inverse of :meth:`snapshot_state`.

        Reconciles the hosted-service set against the snapshot: services
        the rebuilt device deployed but the snapshot lacks are evicted,
        missing ones are re-hosted, and every lifecycle state is restored.
        """
        self._up = bool(state["up"])
        self.domain = state["domain"]
        self.location = state["location"]
        self.environment_trusted = bool(state["environment_trusted"])
        self.battery.level = state["battery_level"]
        wanted = state["services"]
        for name in [s.name for s in self.stack.services]:
            if name not in wanted:
                self.evict(name)
        for name in sorted(wanted):
            desc = wanted[name]
            if not self.stack.has_service(name):
                self.host(Service(
                    name=name, runtime=desc["runtime"], cpu=desc["cpu"],
                    memory=desc["memory"], storage=desc["storage"],
                    version=desc["version"], provides=set(desc["provides"]),
                    requires=set(desc["requires"]),
                ))
            self.stack.service(name).state = ServiceState(desc["state"])

    # -- misc ---------------------------------------------------------------- #
    @property
    def is_edge(self) -> bool:
        """Edge components per §I: entities hosting compute/control/data
        facilities near end-devices."""
        return self.device_class in (DeviceClass.EDGE, DeviceClass.GATEWAY)

    @property
    def is_constrained(self) -> bool:
        return self.device_class in (DeviceClass.SENSOR, DeviceClass.ACTUATOR)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "up" if self.up else "down"
        return (
            f"Device({self.device_id!r}, {self.device_class.value}, "
            f"domain={self.domain!r}, {state})"
        )

"""Device fleet: the registry of all devices in a running system.

The fleet owns device lifecycle bookkeeping (up/down levels in the metrics
recorder, trace events on crash/recover) and synchronizes device liveness
with the network layer, so fault injection only needs one call.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional

from repro.devices.base import Device, DeviceClass
from repro.network.transport import Network
from repro.simulation.kernel import Simulator
from repro.simulation.metrics import MetricsRecorder
from repro.simulation.trace import TraceLog


class DeviceFleet:
    """All devices of a system, indexed by id, domain, class and location."""

    def __init__(
        self,
        sim: Simulator,
        network: Optional[Network] = None,
        metrics: Optional[MetricsRecorder] = None,
        trace: Optional[TraceLog] = None,
    ) -> None:
        self.sim = sim
        self.network = network
        self.metrics = metrics
        self.trace = trace
        self._devices: Dict[str, Device] = {}

    # -- membership -------------------------------------------------------- #
    def add(self, device: Device) -> Device:
        if device.device_id in self._devices:
            raise ValueError(f"device {device.device_id!r} already in fleet")
        self._devices[device.device_id] = device
        if self.metrics is not None:
            self.metrics.set_level(f"up:{device.device_id}", self.sim.now, 1.0)
        return device

    def remove(self, device_id: str) -> Device:
        device = self._devices.pop(device_id)
        if self.network is not None:
            self.network.unregister_node(device_id)
        return device

    def get(self, device_id: str) -> Device:
        device = self._devices.get(device_id)
        if device is None:
            raise KeyError(f"no device {device_id!r} in fleet")
        return device

    def __contains__(self, device_id: str) -> bool:
        return device_id in self._devices

    def __len__(self) -> int:
        return len(self._devices)

    # -- queries ------------------------------------------------------------- #
    @property
    def device_ids(self) -> List[str]:
        return sorted(self._devices)

    @property
    def devices(self) -> List[Device]:
        return [self._devices[k] for k in sorted(self._devices)]

    def by_class(self, device_class: DeviceClass) -> List[Device]:
        return [d for d in self.devices if d.device_class == device_class]

    def by_domain(self, domain: str) -> List[Device]:
        return [d for d in self.devices if d.domain == domain]

    def by_location(self, location: str) -> List[Device]:
        return [d for d in self.devices if d.location == location]

    def select(self, predicate: Callable[[Device], bool]) -> List[Device]:
        return [d for d in self.devices if predicate(d)]

    def up_fraction(self, device_ids: Optional[Iterable[str]] = None) -> float:
        """Fraction of (selected) devices currently up."""
        ids = list(device_ids) if device_ids is not None else self.device_ids
        if not ids:
            return 1.0
        return sum(1 for i in ids if self._devices[i].up) / len(ids)

    # -- liveness transitions (fault-injection entry points) --------------- #
    def crash(self, device_id: str, reason: str = "crash") -> None:
        """Take a device down: device state, network and records together."""
        device = self.get(device_id)
        if not device.up:
            return
        device.crash()
        if self.network is not None:
            self.network.set_node_up(device_id, False)
        if self.metrics is not None:
            self.metrics.set_level(f"up:{device_id}", self.sim.now, 0.0)
        if self.trace is not None:
            self.trace.emit(self.sim.now, "fault", reason, subject=device_id)

    def recover(self, device_id: str) -> None:
        device = self.get(device_id)
        if device.up:
            return
        device.recover()
        if self.network is not None:
            self.network.set_node_up(device_id, True)
        if self.metrics is not None:
            self.metrics.set_level(f"up:{device_id}", self.sim.now, 1.0)
        if self.trace is not None:
            self.trace.emit(self.sim.now, "recovery", "device-recover", subject=device_id)

    # -- persistence -------------------------------------------------------- #
    def snapshot_state(self) -> Dict[str, Dict]:
        """Per-device snapshots, keyed by id (Snapshottable)."""
        return {device_id: self._devices[device_id].snapshot_state()
                for device_id in sorted(self._devices)}

    def restore_state(self, state: Dict[str, Dict]) -> None:
        """Restore every device and re-sync network liveness.

        No trace events or up/down metric levels are emitted: a restore
        reinstates recorded history rather than creating new transitions.
        """
        for device_id in sorted(state):
            device = self.get(device_id)
            device.restore_state(state[device_id])
            if self.network is not None:
                self.network.set_node_up(device_id, device.up)

    def transfer_domain(self, device_id: str, new_domain: str) -> str:
        """Administrative domain transfer (a named disruption class, §I)."""
        device = self.get(device_id)
        old = device.domain
        device.domain = new_domain
        if self.trace is not None:
            self.trace.emit(
                self.sim.now, "fault", "domain-transfer",
                subject=device_id, old_domain=old, new_domain=new_domain,
            )
        return old

"""Device resources: compute, memory, storage, and energy.

Resource constraints are a core premise of the paper ("resource-constrained
devices" appears in the abstract and throughout): edge placement decisions
(:mod:`repro.orchestration`) and the argument that computationally intensive
analysis cannot run on end-devices (§VII.B) are only meaningful if devices
have bounded, heterogeneous capacities.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional


@dataclass(frozen=True)
class ResourceSpec:
    """Static capacity of a device class.

    Units are abstract but consistent across the codebase: ``cpu`` in
    millicores (1000 = one core), ``memory``/``storage`` in MB, ``energy``
    in joule-equivalents (None means mains-powered).
    """

    cpu: float
    memory: float
    storage: float
    energy_capacity: Optional[float] = None

    def __post_init__(self) -> None:
        for field_name in ("cpu", "memory", "storage"):
            if getattr(self, field_name) <= 0:
                raise ValueError(f"{field_name} must be positive")
        if self.energy_capacity is not None and self.energy_capacity <= 0:
            raise ValueError("energy_capacity must be positive or None")


class InsufficientResources(RuntimeError):
    """Raised when an allocation would exceed remaining capacity."""


class ResourcePool:
    """Tracks allocations against a :class:`ResourceSpec`.

    Allocations are named so that service placement can be undone exactly
    (service migration releases precisely what the service held).
    """

    def __init__(self, spec: ResourceSpec) -> None:
        self.spec = spec
        self._allocations: Dict[str, Dict[str, float]] = {}

    # -- accounting -------------------------------------------------------- #
    def used(self, resource: str) -> float:
        return sum(alloc.get(resource, 0.0) for alloc in self._allocations.values())

    def available(self, resource: str) -> float:
        capacity = getattr(self.spec, resource)
        return capacity - self.used(resource)

    def utilization(self, resource: str) -> float:
        capacity = getattr(self.spec, resource)
        return self.used(resource) / capacity if capacity else 0.0

    def can_fit(self, cpu: float = 0.0, memory: float = 0.0, storage: float = 0.0) -> bool:
        return (
            self.available("cpu") >= cpu
            and self.available("memory") >= memory
            and self.available("storage") >= storage
        )

    def allocate(
        self, name: str, cpu: float = 0.0, memory: float = 0.0, storage: float = 0.0
    ) -> None:
        """Reserve resources under ``name``; atomic (all or nothing)."""
        if name in self._allocations:
            raise ValueError(f"allocation {name!r} already exists")
        if cpu < 0 or memory < 0 or storage < 0:
            raise ValueError("allocation amounts must be non-negative")
        if not self.can_fit(cpu=cpu, memory=memory, storage=storage):
            raise InsufficientResources(
                f"cannot fit ({cpu} cpu, {memory} mem, {storage} sto); "
                f"free=({self.available('cpu')}, {self.available('memory')}, "
                f"{self.available('storage')})"
            )
        self._allocations[name] = {"cpu": cpu, "memory": memory, "storage": storage}

    def release(self, name: str) -> None:
        if name not in self._allocations:
            raise KeyError(f"no allocation {name!r}")
        del self._allocations[name]

    def holds(self, name: str) -> bool:
        return name in self._allocations

    @property
    def allocation_names(self) -> list:
        return sorted(self._allocations)


class Battery:
    """Energy store with linear drain; None capacity means mains power.

    The fault model "battery depletion" (:mod:`repro.faults`) drives this:
    a device whose battery empties goes down until recharged.
    """

    def __init__(self, capacity: Optional[float]) -> None:
        self.capacity = capacity
        self.level = capacity if capacity is not None else None

    @property
    def mains_powered(self) -> bool:
        return self.capacity is None

    @property
    def depleted(self) -> bool:
        return self.level is not None and self.level <= 0.0

    @property
    def fraction(self) -> float:
        if self.mains_powered:
            return 1.0
        return max(0.0, self.level / self.capacity)

    def drain(self, amount: float) -> bool:
        """Consume energy; returns False if the battery just depleted."""
        if amount < 0:
            raise ValueError("drain amount must be non-negative")
        if self.mains_powered:
            return True
        self.level = max(0.0, self.level - amount)
        return not self.depleted

    def recharge(self, amount: Optional[float] = None) -> None:
        """Recharge by ``amount``, or to full if omitted."""
        if self.mains_powered:
            return
        if amount is None:
            self.level = self.capacity
        else:
            if amount < 0:
                raise ValueError("recharge amount must be non-negative")
            self.level = min(self.capacity, self.level + amount)

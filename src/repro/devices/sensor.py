"""Sensors and actuators: the physical-interaction end of the spectrum.

Sensors periodically sample a (simulated) physical signal and push readings
to a sink over the network; actuators accept commands and apply them to the
environment model.  Both drain battery per operation so that energy
depletion faults emerge organically from workload intensity.
"""

from __future__ import annotations

import random
from typing import Callable, Optional

from repro.devices.base import Device, DeviceClass
from repro.network.transport import Network
from repro.simulation.kernel import Simulator
from repro.simulation.metrics import MetricsRecorder
from repro.simulation.trace import TraceLog


class Sensor(Device):
    """A periodic-sampling sensor device.

    The signal is a callable of simulated time; by default a seeded
    random-walk, which gives plausible readings without importing any data
    set (offline substitution for real traces, DESIGN.md §1).
    """

    #: Energy cost of one sample+transmit cycle, in battery units.
    ENERGY_PER_SAMPLE = 0.05

    def __init__(
        self,
        device_id: str,
        domain: str = "default",
        location: str = "site0",
        period: float = 1.0,
        signal: Optional[Callable[[float], float]] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        super().__init__(device_id, DeviceClass.SENSOR, domain=domain, location=location)
        if period <= 0:
            raise ValueError("sampling period must be positive")
        self.period = period
        self._rng = rng or random.Random(hash(device_id) & 0xFFFFFFFF)
        self._walk = 20.0
        self.signal = signal or self._random_walk
        self.sink: Optional[str] = None
        self.samples_sent = 0

    def _random_walk(self, _t: float) -> float:
        self._walk += self._rng.gauss(0.0, 0.5)
        return self._walk

    def start_sampling(
        self,
        sim: Simulator,
        network: Network,
        sink: str,
        metrics: Optional[MetricsRecorder] = None,
        jitter: float = 0.0,
    ) -> None:
        """Begin the periodic sample-and-send loop toward ``sink``."""
        self.sink = sink
        offset = self._rng.uniform(0.0, jitter) if jitter > 0 else 0.0

        def tick(s: Simulator) -> None:
            if self.up:
                value = self.signal(s.now)
                alive = self.battery.drain(self.ENERGY_PER_SAMPLE)
                if alive:
                    network.send(
                        self.device_id,
                        self.sink,
                        "sensor.reading",
                        payload={"device": self.device_id, "value": value, "t": s.now},
                        size_bytes=64,
                    )
                    self.samples_sent += 1
                    if metrics is not None:
                        metrics.increment("sensor.samples")
            # Keep ticking even while down: the device may recover.
            s.schedule(self.period, tick, label=f"sample:{self.device_id}")

        sim.schedule(offset, tick, label=f"sample:{self.device_id}")


class Actuator(Device):
    """An actuator accepting commands from the network.

    The ``apply`` callback represents the physical effect; the actuator
    records command latency (sent_at -> applied_at) which feeds the
    control-loop latency requirement in experiments.
    """

    ENERGY_PER_ACTUATION = 0.2

    def __init__(
        self,
        device_id: str,
        domain: str = "default",
        location: str = "site0",
        apply: Optional[Callable[[dict], None]] = None,
    ) -> None:
        super().__init__(device_id, DeviceClass.ACTUATOR, domain=domain, location=location)
        self.apply = apply or (lambda _command: None)
        self.commands_applied = 0
        self.last_command: Optional[dict] = None

    def attach(
        self,
        sim: Simulator,
        network: Network,
        metrics: Optional[MetricsRecorder] = None,
        trace: Optional[TraceLog] = None,
    ) -> None:
        """Register the command handler on the network."""

        def on_command(message) -> None:
            if not self.up:
                return
            if not self.battery.drain(self.ENERGY_PER_ACTUATION):
                return
            command = message.payload or {}
            self.apply(command)
            self.commands_applied += 1
            self.last_command = command
            if metrics is not None:
                issued = command.get("issued_at", message.sent_at)
                metrics.record("actuation.latency", sim.now, sim.now - issued)
            if trace is not None:
                trace.emit(sim.now, "actuation", "applied", subject=self.device_id)

        network.register(self.device_id, "actuator.command", on_command)

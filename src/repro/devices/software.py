"""Software stacks and services hosted on devices.

Models the paper's observation that components "host software stacks of
varying complexity", are "developed and maintained by different teams",
and expose functionality "through software services" (§I, §II).  A
:class:`SoftwareStack` is a named runtime (language/framework/version)
hosting :class:`Service` instances; heterogeneity is captured by the stack
descriptor and constrains which services a device can host.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set


class ServiceState(enum.Enum):
    """Lifecycle of a deployed service instance."""

    STARTING = "starting"
    RUNNING = "running"
    DEGRADED = "degraded"
    FAILED = "failed"
    STOPPED = "stopped"


@dataclass
class Service:
    """A deployable software service (or deviceless function).

    Attributes
    ----------
    name:
        Unique service name (e.g. ``"traffic-analytics"``).
    runtime:
        Required runtime identifier; deployment fails on stacks that do not
        provide it (heterogeneity constraint).
    cpu / memory / storage:
        Resource demand, in :class:`~repro.devices.resources.ResourceSpec`
        units.
    version:
        Semantic-ish version string; vendors update independently (§IV.B).
    provides / requires:
        Capability names for dependency wiring in orchestration.
    """

    name: str
    runtime: str = "python"
    cpu: float = 50.0
    memory: float = 32.0
    storage: float = 8.0
    version: str = "1.0.0"
    provides: Set[str] = field(default_factory=set)
    requires: Set[str] = field(default_factory=set)
    state: ServiceState = ServiceState.STOPPED

    def demand(self) -> Dict[str, float]:
        return {"cpu": self.cpu, "memory": self.memory, "storage": self.storage}


class SoftwareStack:
    """A device's software runtime environment.

    ``runtimes`` is the set of runtime identifiers the stack can execute;
    a bare-metal microcontroller stack might only provide ``{"c"}`` while a
    cloudlet provides ``{"python", "jvm", "container"}``.
    """

    def __init__(
        self,
        name: str,
        runtimes: Optional[Set[str]] = None,
        max_services: Optional[int] = None,
    ) -> None:
        self.name = name
        self.runtimes: Set[str] = set(runtimes) if runtimes else {"python"}
        self.max_services = max_services
        self._services: Dict[str, Service] = {}

    # -- capability checks -------------------------------------------------- #
    def supports(self, service: Service) -> bool:
        if service.runtime not in self.runtimes:
            return False
        if self.max_services is not None and len(self._services) >= self.max_services:
            return service.name in self._services
        return True

    # -- lifecycle ------------------------------------------------------------ #
    def deploy(self, service: Service) -> None:
        if service.name in self._services:
            raise ValueError(f"service {service.name!r} already deployed on {self.name!r}")
        if service.runtime not in self.runtimes:
            raise ValueError(
                f"stack {self.name!r} lacks runtime {service.runtime!r} "
                f"for service {service.name!r}"
            )
        if self.max_services is not None and len(self._services) >= self.max_services:
            raise ValueError(f"stack {self.name!r} at max_services={self.max_services}")
        service.state = ServiceState.STARTING
        self._services[service.name] = service

    def start(self, name: str) -> None:
        self._require(name).state = ServiceState.RUNNING

    def mark_failed(self, name: str) -> None:
        self._require(name).state = ServiceState.FAILED

    def mark_degraded(self, name: str) -> None:
        self._require(name).state = ServiceState.DEGRADED

    def stop(self, name: str) -> None:
        self._require(name).state = ServiceState.STOPPED

    def undeploy(self, name: str) -> Service:
        service = self._require(name)
        service.state = ServiceState.STOPPED
        del self._services[name]
        return service

    def _require(self, name: str) -> Service:
        service = self._services.get(name)
        if service is None:
            raise KeyError(f"no service {name!r} on stack {self.name!r}")
        return service

    # -- queries ----------------------------------------------------------- #
    def service(self, name: str) -> Optional[Service]:
        return self._services.get(name)

    def has_service(self, name: str) -> bool:
        return name in self._services

    @property
    def services(self) -> List[Service]:
        return [self._services[k] for k in sorted(self._services)]

    @property
    def running_services(self) -> List[Service]:
        return [s for s in self.services if s.state == ServiceState.RUNNING]

    def capabilities(self) -> Set[str]:
        """Union of capabilities provided by running services."""
        caps: Set[str] = set()
        for service in self.running_services:
            caps |= service.provides
        return caps


#: Stack presets matching the device spectrum of §I.
STACK_PRESETS: Dict[str, Dict] = {
    "bare": {"runtimes": {"c"}, "max_services": 1},
    "micro": {"runtimes": {"c", "micropython"}, "max_services": 2},
    "mobile": {"runtimes": {"python", "android"}, "max_services": 8},
    "gateway": {"runtimes": {"python", "c", "container"}, "max_services": 16},
    "edge": {"runtimes": {"python", "jvm", "container"}, "max_services": 64},
    "cloud": {"runtimes": {"python", "jvm", "container", "serverless"}, "max_services": None},
}


def make_stack(preset: str, name: Optional[str] = None) -> SoftwareStack:
    """Instantiate a stack from a named preset."""
    if preset not in STACK_PRESETS:
        raise ValueError(f"unknown stack preset {preset!r}")
    params = STACK_PRESETS[preset]
    return SoftwareStack(
        name or preset,
        runtimes=set(params["runtimes"]),
        max_services=params["max_services"],
    )

"""Reusable experiment runners shared by benchmarks and the CLI.

Each function builds, disrupts and runs one of the Fig. 3 / Fig. 5
comparisons and returns the live objects for measurement.  The benchmark
files add timing and shape assertions; the CLI prints tables.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.adaptation import (
    DeviceLivenessAnalyzer,
    Executor,
    MapeLoop,
    RuleBasedPlanner,
    ServiceHealthAnalyzer,
    StaleKnowledgeAnalyzer,
)
from repro.core.system import IoTSystem
from repro.devices.software import Service
from repro.faults.models import PartitionFault, ServiceFailureFault

# ------------------------------------------------------------------------- #
# Fig. 3: centralized vs decentralized control
# ------------------------------------------------------------------------- #
FIG3_N_SITES = 3
FIG3_DEVICES = 4
FIG3_HORIZON = 90.0
FIG3_OUTAGE = (30.0, 60.0)
FIG3_STALENESS = 3.0


def _make_loop(system: IoTSystem, host: str, scope: List[str],
               extra_analyzers: Tuple = ()) -> MapeLoop:
    return MapeLoop(
        system.sim, system.network, system.fleet, host, scope,
        analyzers=[ServiceHealthAnalyzer(), DeviceLivenessAnalyzer(),
                   *extra_analyzers],
        planner=RuleBasedPlanner(),
        executor=Executor(system.sim, system.network, system.fleet, host,
                          system.rngs.stream(f"exec:{host}"),
                          trace=system.trace),
        period=1.0, metrics=system.metrics, trace=system.trace,
    )


def prepare_control_architecture(architecture: str, seed: int = 11
                                 ) -> Tuple[IoTSystem, List[MapeLoop]]:
    """Wire (but do not run) the Fig. 3 control-architecture comparison.

    The split from :func:`run_control_architecture` exists for the
    persistence subsystem: a rebuildable scenario must be constructable
    without running it, so checkpoints can be resumed and journals
    replayed from the same wiring.
    """
    if architecture not in ("centralized", "decentralized"):
        raise ValueError(f"unknown architecture {architecture!r}")
    system = IoTSystem.with_edge_cloud_landscape(FIG3_N_SITES, FIG3_DEVICES,
                                                 seed=seed)
    loops: List[MapeLoop] = []
    if architecture == "centralized":
        scope = [d for ds in system.sites.values() for d in ds]
        loops.append(_make_loop(system, "cloud", scope))
    else:
        for edge, devices in sorted(system.sites.items()):
            loops.append(_make_loop(system, edge, list(devices)))
    for loop in loops:
        loop.start()
    _probe_control(system, loops)
    system.injector.inject_at(FIG3_OUTAGE[0], PartitionFault(
        name="cloud-outage", duration=FIG3_OUTAGE[1] - FIG3_OUTAGE[0],
        isolate_node="cloud"))
    return system, loops


def run_control_architecture(architecture: str, seed: int = 11
                             ) -> Tuple[IoTSystem, List[MapeLoop]]:
    """Fig. 3: run the landscape under one control-plane architecture."""
    system, loops = prepare_control_architecture(architecture, seed=seed)
    system.run(until=FIG3_HORIZON)
    return system, loops


def _probe_control(system: IoTSystem, loops: List[MapeLoop]) -> None:
    def probe(s):
        now = s.now
        for loop in loops:
            for device_id in loop.scope:
                age = loop.knowledge.age_of(device_id, now)
                controlled = age is not None and age <= FIG3_STALENESS
                system.metrics.set_level(f"controlled:{device_id}", now,
                                         1.0 if controlled else 0.0)
        s.schedule(0.5, probe)

    system.sim.schedule(0.5, probe)


def control_availability(system: IoTSystem, start: float, end: float) -> float:
    """Mean time-weighted 'controlled' level across all probed devices."""
    values = []
    for name in system.metrics.series_names:
        if name.startswith("controlled:"):
            mean = system.metrics.series(name).time_weighted_mean(start, end)
            if mean is not None:
                values.append(mean)
    return sum(values) / len(values) if values else 0.0


# ------------------------------------------------------------------------- #
# Fig. 5: MAPE loop placement
# ------------------------------------------------------------------------- #
FIG5_N_SITES = 2
FIG5_DEVICES = 3
FIG5_HORIZON = 80.0
FIG5_OUTAGE = (30.0, 55.0)
FIG5_FAULTS = [(10.0, "d0.0"), (40.0, "d1.0")]   # second fault lands mid-outage


def prepare_mape_placement(placement: str, seed: int = 19,
                           observe: bool = False, setup=None
                           ) -> Tuple[IoTSystem, List[MapeLoop]]:
    """Wire (but do not run) the Fig. 5 placement comparison.

    With ``observe``, causal spans and kernel profiling are enabled before
    anything runs, so the returned system carries a full trace.  ``setup``
    (if given) is called with ``(system, loops)`` after wiring but before
    the run -- the hook the SLO monitor of ``python -m repro monitor``
    attaches through.  Like :func:`prepare_control_architecture`, the
    prepare/run split makes the scenario rebuildable for checkpoint
    resume and journal replay.
    """
    if placement not in ("cloud", "edge"):
        raise ValueError(f"unknown placement {placement!r}")
    system = IoTSystem.with_edge_cloud_landscape(FIG5_N_SITES, FIG5_DEVICES,
                                                 seed=seed)
    if observe:
        system.enable_observability()
    for _, devices in sorted(system.sites.items()):
        for device_id in devices:
            system.fleet.get(device_id).host(Service(f"svc-{device_id}"))
    loops: List[MapeLoop] = []
    stale = (StaleKnowledgeAnalyzer(5.0),)
    if placement == "cloud":
        scope = [d for ds in system.sites.values() for d in ds]
        loops.append(_make_loop(system, "cloud", scope, extra_analyzers=stale))
    else:
        for edge, devices in sorted(system.sites.items()):
            loops.append(_make_loop(system, edge, list(devices),
                                    extra_analyzers=stale))
    for loop in loops:
        loop.start()
    system.injector.inject_at(FIG5_OUTAGE[0], PartitionFault(
        name="cloud-outage", duration=FIG5_OUTAGE[1] - FIG5_OUTAGE[0],
        isolate_node="cloud"))
    for time, device in FIG5_FAULTS:
        system.injector.inject_at(time, ServiceFailureFault(
            name=f"svcfail:{device}", device_id=device,
            service_name=f"svc-{device}"))
    if setup is not None:
        setup(system, loops)
    return system, loops


def run_mape_placement(placement: str, seed: int = 19, observe: bool = False,
                       setup=None) -> Tuple[IoTSystem, List[MapeLoop]]:
    """Fig. 5: identical faults under a cloud-hosted vs edge-hosted loop."""
    system, loops = prepare_mape_placement(placement, seed=seed,
                                           observe=observe, setup=setup)
    system.run(until=FIG5_HORIZON)
    return system, loops


def mape_repair_delays(system: IoTSystem, loops: List[MapeLoop]) -> List[float]:
    delays: List[float] = []
    for loop in loops:
        delays.extend(loop.time_to_repair(system.trace,
                                          fault_names=["service-failure"]))
    return sorted(delays)

"""Fault injection and disruption scheduling.

The paper defines disruption as "an adverse change to system stability ...
external to the system (i.e. due to the environment) or internal to the
system (i.e. due to a fault)" (§I).  This package implements every
disruption class the paper names:

* internal faults -> crash / crash-recovery / service failure
  (:class:`~repro.faults.models.CrashFault`, ...)
* non-persistent cloud connectivity -> partitions and latency spikes
* transfer of administrative domains -> :class:`~repro.faults.models.DomainTransferFault`
* untrusted circumstances -> :class:`~repro.faults.models.AdversarialEnvironmentFault`
* active compromise -> :class:`~repro.faults.models.NodeCompromiseFault`
  (the device runs attack behaviors from :mod:`repro.security`)
* resource constraints -> battery depletion

Disruptions are either scheduled explicitly (:class:`~repro.faults.schedule.DisruptionSchedule`)
for reproducible experiment scripts, or drawn from a seeded stochastic
generator (:class:`~repro.faults.schedule.RandomDisruptionGenerator`).
"""

from repro.faults.models import (
    AdversarialEnvironmentFault,
    BatteryDepletionFault,
    CrashFault,
    CrashRecoveryFault,
    DomainTransferFault,
    Fault,
    LatencySpikeFault,
    LinkFailureFault,
    NodeCompromiseFault,
    PartitionFault,
    ServiceFailureFault,
)
from repro.faults.injector import FaultInjector
from repro.faults.schedule import DisruptionSchedule, RandomDisruptionGenerator

__all__ = [
    "AdversarialEnvironmentFault",
    "BatteryDepletionFault",
    "CrashFault",
    "CrashRecoveryFault",
    "DisruptionSchedule",
    "DomainTransferFault",
    "Fault",
    "FaultInjector",
    "LatencySpikeFault",
    "LinkFailureFault",
    "NodeCompromiseFault",
    "PartitionFault",
    "RandomDisruptionGenerator",
    "ServiceFailureFault",
]

"""The fault injector: applies faults to a live system.

The injector is the single mutation point through which disruption reaches
the system, so every adverse change is traced uniformly (``category
"fault"`` / ``"recovery"``).  The resilience metric in :mod:`repro.core`
derives disruption windows from exactly these trace events.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.devices.fleet import DeviceFleet
from repro.faults.models import Fault
from repro.network.partition import PartitionManager
from repro.network.topology import Topology
from repro.observability.spans import Span, SpanRecorder
from repro.simulation.kernel import Simulator
from repro.simulation.trace import TraceLog


class FaultInjector:
    """Applies :class:`~repro.faults.models.Fault` instances to a system."""

    def __init__(
        self,
        sim: Simulator,
        fleet: DeviceFleet,
        topology: Topology,
        partitions: Optional[PartitionManager] = None,
        trace: Optional[TraceLog] = None,
        spans: Optional[SpanRecorder] = None,
    ) -> None:
        self.sim = sim
        self.fleet = fleet
        self.topology = topology
        self.partitions = partitions
        self.trace = trace
        self.spans = spans
        self.injected: List[Fault] = []
        self._active: List[Fault] = []
        self._fault_spans: Dict[int, Span] = {}

    def trace_emit(self, category: str, name: str, subject: str = "", **attrs) -> None:
        if self.trace is not None:
            self.trace.emit(self.sim.now, category, name, subject=subject, **attrs)

    def _fault_subjects(self, fault: Fault) -> List[str]:
        """Keys under which the fault's injection span is discoverable.

        Repairers (e.g. a MAPE loop restarting a service) look up the
        active fault span by the subject they acted on, so a recovery far
        from the injector still joins the disruption's trace.
        """
        subjects = [fault.name]
        device_id = getattr(fault, "device_id", None)
        if device_id:
            subjects.append(device_id)
        return subjects

    # -- immediate injection ----------------------------------------------- #
    def inject(self, fault: Fault) -> None:
        """Apply a fault now; schedule its cessation if transient."""
        spans = self.spans
        span: Optional[Span] = None
        if spans is not None:
            # The injection span roots (or joins) the disruption's trace:
            # everything the fault causes -- partition cuts, messages,
            # repairs -- records as its descendant.
            span = spans.start(
                f"fault:{fault.name}", "injection", self.sim.now,
                fault_type=type(fault).__name__,
            )
            self._fault_spans[id(fault)] = span
            for subject in self._fault_subjects(fault):
                spans.open_fault(subject, span)
            with spans.use(span):
                fault.apply(self)
        else:
            fault.apply(self)
        self.injected.append(fault)
        self._active.append(fault)
        self.trace_emit("injection", "fault-injected", subject=fault.name,
                        fault_type=type(fault).__name__)
        if fault.transient:
            self.sim.schedule(
                fault.duration,
                lambda _s, f=fault: self._revert(f),
                label=f"revert:{fault.name}",
            )

    def _revert(self, fault: Fault) -> None:
        if fault not in self._active:
            return
        spans = self.spans
        if spans is not None:
            fault_span = self._fault_spans.pop(id(fault), None)
            recovery = spans.start(
                f"recover:{fault.name}", "recovery", self.sim.now,
                parent=fault_span, fault_type=type(fault).__name__,
            )
            with spans.use(recovery):
                fault.revert(self)
            spans.finish(recovery, self.sim.now)
            if fault_span is not None:
                spans.finish(fault_span, self.sim.now, status="reverted")
            for subject in self._fault_subjects(fault):
                spans.close_fault(subject)
        else:
            fault.revert(self)
        self._active.remove(fault)
        self.trace_emit("injection", "fault-reverted", subject=fault.name)

    def revert(self, fault: Fault) -> None:
        """Manually revert a (possibly permanent) active fault."""
        self._revert(fault)

    def revert_all(self) -> None:
        for fault in list(self._active):
            self._revert(fault)

    # -- deferred injection -------------------------------------------------- #
    def inject_at(self, time: float, fault: Fault) -> None:
        """Schedule injection at absolute simulated time."""
        self.sim.schedule_at(
            time, lambda _s: self.inject(fault), label=f"inject:{fault.name}"
        )

    @property
    def active_faults(self) -> List[Fault]:
        return list(self._active)

"""The fault injector: applies faults to a live system.

The injector is the single mutation point through which disruption reaches
the system, so every adverse change is traced uniformly (``category
"fault"`` / ``"recovery"``).  The resilience metric in :mod:`repro.core`
derives disruption windows from exactly these trace events.
"""

from __future__ import annotations

from typing import List, Optional

from repro.devices.fleet import DeviceFleet
from repro.faults.models import Fault
from repro.network.partition import PartitionManager
from repro.network.topology import Topology
from repro.simulation.kernel import Simulator
from repro.simulation.trace import TraceLog


class FaultInjector:
    """Applies :class:`~repro.faults.models.Fault` instances to a system."""

    def __init__(
        self,
        sim: Simulator,
        fleet: DeviceFleet,
        topology: Topology,
        partitions: Optional[PartitionManager] = None,
        trace: Optional[TraceLog] = None,
    ) -> None:
        self.sim = sim
        self.fleet = fleet
        self.topology = topology
        self.partitions = partitions
        self.trace = trace
        self.injected: List[Fault] = []
        self._active: List[Fault] = []

    def trace_emit(self, category: str, name: str, subject: str = "", **attrs) -> None:
        if self.trace is not None:
            self.trace.emit(self.sim.now, category, name, subject=subject, **attrs)

    # -- immediate injection ----------------------------------------------- #
    def inject(self, fault: Fault) -> None:
        """Apply a fault now; schedule its cessation if transient."""
        fault.apply(self)
        self.injected.append(fault)
        self._active.append(fault)
        self.trace_emit("injection", "fault-injected", subject=fault.name,
                        fault_type=type(fault).__name__)
        if fault.transient:
            self.sim.schedule(
                fault.duration,
                lambda _s, f=fault: self._revert(f),
                label=f"revert:{fault.name}",
            )

    def _revert(self, fault: Fault) -> None:
        if fault in self._active:
            fault.revert(self)
            self._active.remove(fault)
            self.trace_emit("injection", "fault-reverted", subject=fault.name)

    def revert(self, fault: Fault) -> None:
        """Manually revert a (possibly permanent) active fault."""
        self._revert(fault)

    def revert_all(self) -> None:
        for fault in list(self._active):
            self._revert(fault)

    # -- deferred injection -------------------------------------------------- #
    def inject_at(self, time: float, fault: Fault) -> None:
        """Schedule injection at absolute simulated time."""
        self.sim.schedule_at(
            time, lambda _s: self.inject(fault), label=f"inject:{fault.name}"
        )

    @property
    def active_faults(self) -> List[Fault]:
        return list(self._active)

"""Fault models: one class per disruption type named in the paper.

Every fault has an ``apply`` (onset) and, when it has bounded duration, a
``revert`` (cessation).  Faults act through the :class:`~repro.faults.injector.FaultInjector`,
which hands them the system handles (fleet, topology, partitions) they need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Set


@dataclass
class Fault:
    """Base fault: a named adverse change with optional duration.

    ``duration`` of None means permanent (until some external recovery,
    e.g. an adaptation action, reverts the effect).
    """

    name: str
    duration: Optional[float] = None

    def apply(self, injector: "FaultInjector") -> None:  # noqa: F821
        raise NotImplementedError

    def revert(self, injector: "FaultInjector") -> None:  # noqa: F821
        """Cessation of the fault; default is nothing to undo."""

    @property
    def transient(self) -> bool:
        return self.duration is not None


@dataclass
class CrashFault(Fault):
    """Fail-stop crash of a device (internal fault, §I)."""

    device_id: str = ""

    def apply(self, injector) -> None:
        injector.fleet.crash(self.device_id, reason="crash")

    def revert(self, injector) -> None:
        injector.fleet.recover(self.device_id)


@dataclass
class CrashRecoveryFault(CrashFault):
    """A crash that heals by itself after ``duration`` (crash-recovery model)."""

    def __post_init__(self) -> None:
        if self.duration is None:
            raise ValueError("CrashRecoveryFault requires a duration")


@dataclass
class ServiceFailureFault(Fault):
    """A hosted service fails while its device stays up.

    This is the paper's "internal faults may lead to service
    unavailability": the failure is software-level, so self-healing can
    restart or migrate the service without touching the device.
    """

    device_id: str = ""
    service_name: str = ""

    def apply(self, injector) -> None:
        device = injector.fleet.get(self.device_id)
        if device.stack.has_service(self.service_name):
            device.stack.mark_failed(self.service_name)
            injector.trace_emit(
                "fault", "service-failure", subject=self.device_id,
                service=self.service_name,
            )

    def revert(self, injector) -> None:
        device = injector.fleet.get(self.device_id)
        if device.stack.has_service(self.service_name):
            device.stack.start(self.service_name)
            injector.trace_emit(
                "recovery", "service-restored", subject=self.device_id,
                service=self.service_name,
            )


@dataclass
class PartitionFault(Fault):
    """Network partition between two node groups (or a node isolation)."""

    group_a: Set[str] = field(default_factory=set)
    group_b: Set[str] = field(default_factory=set)
    isolate_node: Optional[str] = None
    _partition_name: Optional[str] = None

    def apply(self, injector) -> None:
        if injector.partitions is None:
            raise RuntimeError("injector has no PartitionManager")
        if self.isolate_node is not None:
            self._partition_name = injector.partitions.isolate_node(
                self.isolate_node, name=f"fault:{self.name}"
            )
        else:
            self._partition_name = injector.partitions.cut_between(
                set(self.group_a), set(self.group_b), name=f"fault:{self.name}"
            )

    def revert(self, injector) -> None:
        if self._partition_name is not None and injector.partitions.is_active(
            self._partition_name
        ):
            injector.partitions.heal(self._partition_name)
            self._partition_name = None


@dataclass
class LinkFailureFault(Fault):
    """A single link goes down."""

    node_a: str = ""
    node_b: str = ""

    def apply(self, injector) -> None:
        link = injector.topology.link_between(self.node_a, self.node_b)
        if link is None:
            raise ValueError(f"no link {self.node_a!r}-{self.node_b!r}")
        link.set_up(False)
        injector.trace_emit("fault", "link-down", subject=link.key())

    def revert(self, injector) -> None:
        link = injector.topology.link_between(self.node_a, self.node_b)
        if link is not None:
            link.set_up(True)
            injector.trace_emit("recovery", "link-up", subject=link.key())


@dataclass
class LatencySpikeFault(Fault):
    """Multiplicative latency degradation on a link (congestion, weak RF)."""

    node_a: str = ""
    node_b: str = ""
    factor: float = 10.0

    def apply(self, injector) -> None:
        link = injector.topology.link_between(self.node_a, self.node_b)
        if link is None:
            raise ValueError(f"no link {self.node_a!r}-{self.node_b!r}")
        link.set_degradation(self.factor)
        injector.trace_emit(
            "fault", "latency-spike", subject=link.key(), factor=self.factor
        )

    def revert(self, injector) -> None:
        link = injector.topology.link_between(self.node_a, self.node_b)
        if link is not None:
            link.set_degradation(1.0)
            injector.trace_emit("recovery", "latency-normal", subject=link.key())


@dataclass
class BatteryDepletionFault(Fault):
    """Force a battery-powered device's energy to zero."""

    device_id: str = ""

    def apply(self, injector) -> None:
        device = injector.fleet.get(self.device_id)
        if device.battery.mains_powered:
            raise ValueError(f"device {self.device_id!r} is mains powered")
        device.battery.drain(device.battery.level or 0.0)
        injector.fleet.crash(self.device_id, reason="battery-depleted")

    def revert(self, injector) -> None:
        device = injector.fleet.get(self.device_id)
        device.battery.recharge()
        injector.fleet.recover(self.device_id)


@dataclass
class HarnessCrashFault(Fault):
    """The experiment process itself dies mid-run (crash-resilient sweeps).

    Unlike every other fault, the adverse event is not inside the modeled
    system but in the *harness* running it: the kernel stops after the
    current event, exactly as if the driving process had been killed.  The
    persistence subsystem (:mod:`repro.persistence`) checkpoints at the
    stop and resumes later; a reference driver that ignores the stop
    produces the identical event stream, which is what makes crashed-and-
    resumed runs verifiable against uninterrupted ones.
    """

    def apply(self, injector) -> None:
        injector.trace_emit("fault", "harness-crash", subject="harness")
        injector.sim.stop()


@dataclass
class DomainTransferFault(Fault):
    """Transfer a device to a different administrative domain (§I)."""

    device_id: str = ""
    new_domain: str = ""
    _old_domain: Optional[str] = None

    def apply(self, injector) -> None:
        self._old_domain = injector.fleet.transfer_domain(self.device_id, self.new_domain)

    def revert(self, injector) -> None:
        if self._old_domain is not None:
            injector.fleet.transfer_domain(self.device_id, self._old_domain)
            self._old_domain = None


@dataclass
class AdversarialEnvironmentFault(Fault):
    """The device's current circumstances become untrusted (§I).

    Governance policies (:mod:`repro.governance`) refuse to release
    sensitive data to devices in untrusted circumstances.
    """

    device_id: str = ""

    def apply(self, injector) -> None:
        device = injector.fleet.get(self.device_id)
        device.environment_trusted = False
        injector.trace_emit("fault", "environment-untrusted", subject=self.device_id)
        injector.trace_emit("security", "environment-untrusted",
                            subject=self.device_id)
        plane = injector.sim.context.get("security")
        if plane is not None:
            # Register with the trust plane so the adversarial-vector KPI
            # breakdown attributes this device, and start it at a reduced
            # (but not distrusted) standing from the environment's vantage.
            plane.trust.register(self.device_id,
                                 reason="environment-untrusted")
            plane.trust.record("environment", self.device_id,
                               "environment-untrusted")

    def revert(self, injector) -> None:
        device = injector.fleet.get(self.device_id)
        device.environment_trusted = True
        injector.trace_emit("recovery", "environment-trusted", subject=self.device_id)


@dataclass
class NodeCompromiseFault(Fault):
    """A device falls under adversary control and starts *attacking* (§I).

    Supersedes the passive :class:`AdversarialEnvironmentFault` flag: the
    device's transport stack runs the supplied
    :class:`~repro.security.adversary.AttackBehavior` list until the
    fault reverts (or forever, for permanent compromise).  Requires a
    :class:`~repro.security.plane.SecurityPlane` on the system; the
    scenario builder constructs both, so a missing plane is a
    configuration error, mirroring :class:`PartitionFault`'s contract.
    """

    device_id: str = ""
    behaviors: list = field(default_factory=list)

    def apply(self, injector) -> None:
        plane = injector.sim.context.get("security")
        if plane is None:
            raise RuntimeError(
                "NodeCompromiseFault requires a SecurityPlane "
                "(sim.context['security']); build one before injecting")
        device = injector.fleet.get(self.device_id)
        device.environment_trusted = False
        plane.adversary.compromise(self.device_id, self.behaviors)
        injector.trace_emit("security", "node-compromised",
                            subject=self.device_id,
                            behaviors=[b.slug for b in self.behaviors])

    def revert(self, injector) -> None:
        plane = injector.sim.context.get("security")
        if plane is not None:
            plane.adversary.release(self.device_id)
        device = injector.fleet.get(self.device_id)
        device.environment_trusted = True
        injector.trace_emit("security", "node-released",
                            subject=self.device_id)

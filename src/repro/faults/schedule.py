"""Disruption schedules: deterministic and stochastic.

Experiments need two styles of disruption:

* :class:`DisruptionSchedule` -- an explicit, scripted list of
  ``(time, fault)`` pairs, identical across the architectures being
  compared (the maturity-level benchmark relies on this).
* :class:`RandomDisruptionGenerator` -- a seeded stochastic process
  (exponential inter-arrivals over a configurable fault mix), for
  experiments that sweep disruption *intensity*.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.faults.injector import FaultInjector
from repro.faults.models import (
    CrashRecoveryFault,
    Fault,
    LatencySpikeFault,
    PartitionFault,
    ServiceFailureFault,
)


@dataclass(frozen=True)
class ScheduledFault:
    time: float
    fault: Fault


class DisruptionSchedule:
    """An explicit, reproducible disruption script."""

    def __init__(self) -> None:
        self._entries: List[ScheduledFault] = []

    def add(self, time: float, fault: Fault) -> "DisruptionSchedule":
        if time < 0:
            raise ValueError("fault time must be non-negative")
        self._entries.append(ScheduledFault(time, fault))
        return self

    @property
    def entries(self) -> List[ScheduledFault]:
        return sorted(self._entries, key=lambda e: e.time)

    def __len__(self) -> int:
        return len(self._entries)

    def install(self, injector: FaultInjector) -> None:
        """Register every scheduled fault with the injector."""
        for entry in self.entries:
            injector.inject_at(entry.time, entry.fault)

    def disruption_windows(self, horizon: float) -> List[Tuple[float, float]]:
        """The (start, end) windows during which scheduled faults are active.

        Permanent faults extend to the horizon.  Overlapping windows are
        merged; the result feeds the resilience metric's "during
        disruption" restriction.
        """
        raw = []
        for entry in self.entries:
            end = entry.time + entry.fault.duration if entry.fault.transient else horizon
            raw.append((entry.time, min(end, horizon)))
        return merge_windows(raw)


def merge_windows(windows: Sequence[Tuple[float, float]]) -> List[Tuple[float, float]]:
    """Merge overlapping/adjacent (start, end) intervals."""
    out: List[Tuple[float, float]] = []
    for start, end in sorted(w for w in windows if w[1] > w[0]):
        if out and start <= out[-1][1]:
            out[-1] = (out[-1][0], max(out[-1][1], end))
        else:
            out.append((start, end))
    return out


class RandomDisruptionGenerator:
    """Seeded stochastic disruption with exponential inter-arrival times.

    Parameters
    ----------
    rate:
        Expected faults per simulated second.
    fault_mix:
        Mapping from fault-kind name to relative weight.  Supported kinds:
        ``"crash"``, ``"service"``, ``"latency"``, ``"partition"``.
    mean_duration:
        Mean transient-fault duration (exponential).
    """

    KINDS = ("crash", "service", "latency", "partition")

    def __init__(
        self,
        rng: random.Random,
        rate: float,
        mean_duration: float = 20.0,
        fault_mix: Optional[Dict[str, float]] = None,
    ) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        if mean_duration <= 0:
            raise ValueError("mean_duration must be positive")
        self.rng = rng
        self.rate = rate
        self.mean_duration = mean_duration
        mix = fault_mix or {"crash": 0.4, "service": 0.3, "latency": 0.2, "partition": 0.1}
        unknown = set(mix) - set(self.KINDS)
        if unknown:
            raise ValueError(f"unknown fault kinds {sorted(unknown)}")
        self._kinds = sorted(mix)
        self._weights = [mix[k] for k in self._kinds]

    def generate(
        self,
        horizon: float,
        crash_targets: Sequence[str],
        service_targets: Sequence[Tuple[str, str]] = (),
        link_targets: Sequence[Tuple[str, str]] = (),
        partition_targets: Sequence[str] = (),
    ) -> DisruptionSchedule:
        """Draw a schedule over ``[0, horizon)`` against the given targets.

        Target kinds with no candidates are silently skipped (redrawn), so
        callers can pass only what their topology has.
        """
        schedule = DisruptionSchedule()
        t = 0.0
        counter = 0
        while True:
            t += self.rng.expovariate(self.rate)
            if t >= horizon:
                break
            fault = self._draw_fault(
                counter, crash_targets, service_targets, link_targets, partition_targets
            )
            if fault is not None:
                schedule.add(t, fault)
                counter += 1
        return schedule

    def _draw_fault(
        self,
        counter: int,
        crash_targets: Sequence[str],
        service_targets: Sequence[Tuple[str, str]],
        link_targets: Sequence[Tuple[str, str]],
        partition_targets: Sequence[str],
    ) -> Optional[Fault]:
        duration = self.rng.expovariate(1.0 / self.mean_duration)
        kind = self.rng.choices(self._kinds, weights=self._weights)[0]
        if kind == "crash" and crash_targets:
            target = self.rng.choice(list(crash_targets))
            return CrashRecoveryFault(
                name=f"crash#{counter}:{target}", duration=duration, device_id=target
            )
        if kind == "service" and service_targets:
            device, service = self.rng.choice(list(service_targets))
            return ServiceFailureFault(
                name=f"svc#{counter}:{service}", duration=duration,
                device_id=device, service_name=service,
            )
        if kind == "latency" and link_targets:
            a, b = self.rng.choice(list(link_targets))
            return LatencySpikeFault(
                name=f"lat#{counter}:{a}-{b}", duration=duration,
                node_a=a, node_b=b, factor=self.rng.uniform(5.0, 20.0),
            )
        if kind == "partition" and partition_targets:
            node = self.rng.choice(list(partition_targets))
            return PartitionFault(
                name=f"part#{counter}:{node}", duration=duration, isolate_node=node
            )
        return None

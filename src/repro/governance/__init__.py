"""Data governance across administrative domains and trust levels.

Implements the ML4 goal of Table 2's data vector: "Unconstrained data
flows. Governance among administrative domains & trust levels", and
Fig. 4's privacy scopes: jurisdictions (GDPR/CCPA-style), per-domain trust,
per-component in/out flow policies, and a policy engine that the sync and
pub/sub layers consult before any datum crosses a boundary.
"""

from repro.governance.domains import (
    AdministrativeDomain,
    DomainRegistry,
    Jurisdiction,
    TrustLevel,
)
from repro.governance.policy import (
    FlowDecision,
    FlowPolicy,
    PolicyEngine,
    PrivacyScope,
)
from repro.governance.transfer import DomainTransferProtocol
from repro.governance.audit import ComplianceAuditor, FlowRecord, SubjectReport

__all__ = [
    "AdministrativeDomain",
    "ComplianceAuditor",
    "FlowRecord",
    "SubjectReport",
    "DomainRegistry",
    "DomainTransferProtocol",
    "FlowDecision",
    "FlowPolicy",
    "Jurisdiction",
    "PolicyEngine",
    "PrivacyScope",
    "TrustLevel",
]

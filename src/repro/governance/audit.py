"""Compliance auditing over lineage and policy decisions.

§VI.B: following data lineage is the path to "mechanisms for resilient
data governance".  The :class:`ComplianceAuditor` turns the raw records --
the lineage tracker's movement/denial events and the policy engine's
decision ledger -- into the artifacts an accountability regime (GDPR
Art. 30-style) actually asks for:

* a **data map**: which (source domain -> destination domain) flows
  carried what sensitivity, how often;
* a **subject access report**: everything that happened to one data
  subject's data, including where derived/anonymized forms went;
* a **retro-audit**: re-evaluate historical movements against the
  *current* policy, surfacing flows that would be violations today
  (the audit an ungoverned ML2 system fails, cf. EXPERIMENTS.md T1/T2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.data.item import DataSensitivity
from repro.data.lineage import LineageTracker
from repro.governance.policy import FlowDecision, PolicyEngine


@dataclass(frozen=True)
class FlowRecord:
    """One audited historical movement."""

    time: float
    item_id: int
    key: str
    sensitivity: DataSensitivity
    subject: Optional[str]
    src_domain: str
    dst_domain: str
    dst_device: str


@dataclass
class SubjectReport:
    """Everything the system did with one subject's data."""

    subject: str
    items_produced: int = 0
    raw_domains_reached: List[str] = field(default_factory=list)
    derived_domains_reached: List[str] = field(default_factory=list)
    denials: int = 0

    @property
    def exposure_beyond_origin(self) -> bool:
        return bool(self.raw_domains_reached or self.derived_domains_reached)


class ComplianceAuditor:
    """Builds compliance artifacts from lineage (+ optionally the engine)."""

    def __init__(self, lineage: LineageTracker,
                 policy_engine: Optional[PolicyEngine] = None) -> None:
        self.lineage = lineage
        self.policy_engine = policy_engine

    # -- raw flow extraction ----------------------------------------------- #
    def flows(self) -> List[FlowRecord]:
        out: List[FlowRecord] = []
        for event in self.lineage.events:
            if event.action != "moved":
                continue
            item = self.lineage.item(event.item_id)
            if item is None:
                continue
            out.append(FlowRecord(
                time=event.time, item_id=item.item_id, key=item.key,
                sensitivity=item.sensitivity, subject=item.subject,
                src_domain=item.domain, dst_domain=event.domain,
                dst_device=event.location,
            ))
        return out

    # -- the data map ---------------------------------------------------------#
    def data_map(self) -> Dict[Tuple[str, str], Dict[str, int]]:
        """(src_domain, dst_domain) -> {sensitivity name: count}."""
        out: Dict[Tuple[str, str], Dict[str, int]] = {}
        for flow in self.flows():
            cell = out.setdefault((flow.src_domain, flow.dst_domain), {})
            cell[flow.sensitivity.name] = cell.get(flow.sensitivity.name, 0) + 1
        return out

    def cross_domain_flow_count(self) -> int:
        return sum(
            sum(cell.values())
            for (src, dst), cell in self.data_map().items()
            if src != dst
        )

    # -- subject access ---------------------------------------------------------#
    def subject_report(self, subject: str) -> SubjectReport:
        report = SubjectReport(subject=subject)
        subject_items = {
            item_id
            for item_id in self._all_item_ids()
            if (item := self.lineage.item(item_id)) is not None
            and item.subject == subject
        }
        report.items_produced = len(subject_items)
        raw_domains, derived_domains = set(), set()
        for flow in self.flows():
            item = self.lineage.item(flow.item_id)
            if item is None:
                continue
            if item.item_id in subject_items:
                raw_domains.add(flow.dst_domain)
            elif subject_items & self.lineage.ancestors(item.item_id):
                derived_domains.add(flow.dst_domain)
        report.raw_domains_reached = sorted(raw_domains)
        report.derived_domains_reached = sorted(derived_domains)
        report.denials = sum(
            1 for event in self.lineage.events
            if event.action == "denied" and event.item_id in subject_items
        )
        return report

    def _all_item_ids(self) -> List[int]:
        return sorted({event.item_id for event in self.lineage.events})

    # -- retro-audit -------------------------------------------------------------#
    def retro_audit(self) -> List[Tuple[FlowRecord, FlowDecision]]:
        """Re-evaluate every historical movement against the current
        policy engine; returns the flows that would be denied today.

        Uses the engine's ``<domain:X>`` pseudo-device so the audit works
        even for devices that no longer exist.
        """
        if self.policy_engine is None:
            raise ValueError("retro_audit requires a policy engine")
        violations: List[Tuple[FlowRecord, FlowDecision]] = []
        for flow in self.flows():
            item = self.lineage.item(flow.item_id)
            if item is None:
                continue
            decision = self.policy_engine.evaluate(
                item, f"<domain:{flow.src_domain}>",
                f"<domain:{flow.dst_domain}>", now=flow.time,
            )
            if not decision.allowed:
                violations.append((flow, decision))
        return violations

    # -- summary ------------------------------------------------------------------#
    def summary(self) -> Dict[str, object]:
        flows = self.flows()
        sensitive = [f for f in flows
                     if f.sensitivity >= DataSensitivity.PERSONAL]
        return {
            "total_flows": len(flows),
            "cross_domain_flows": self.cross_domain_flow_count(),
            "sensitive_flows": len(sensitive),
            "sensitive_cross_domain": sum(
                1 for f in sensitive if f.src_domain != f.dst_domain),
            "denials": self.lineage.denial_count(),
        }

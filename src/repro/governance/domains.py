"""Administrative domains, jurisdictions and trust.

The paper: components "may belong in different administrative domains or
legal jurisdictions" (§I) and data "traverses through computational
resources of diverse administrative domains and different levels of trust"
(§VI.A).  A :class:`Jurisdiction` models a legal framework (e.g. GDPR vs
CCPA); an :class:`AdministrativeDomain` belongs to exactly one jurisdiction
and carries a trust level; the :class:`DomainRegistry` records pairwise
trust agreements between domains.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, FrozenSet, Tuple


class TrustLevel(enum.IntEnum):
    """Ordered trust ladder between domains; higher is more trusted."""

    UNTRUSTED = 0
    PUBLIC = 1
    PARTNER = 2
    TRUSTED = 3
    OWNED = 4


@dataclass(frozen=True)
class Jurisdiction:
    """A legal framework governing data within its member domains.

    ``data_residency`` set: personal data may only move to jurisdictions in
    this set (itself always included) -- an abstraction of GDPR Chapter V
    adequacy decisions.
    """

    name: str
    data_residency: FrozenSet[str] = frozenset()

    def allows_personal_export_to(self, other: "Jurisdiction") -> bool:
        if other.name == self.name:
            return True
        return other.name in self.data_residency


@dataclass(frozen=True)
class AdministrativeDomain:
    """An administrative/ownership boundary in the IoT landscape."""

    name: str
    jurisdiction: Jurisdiction
    base_trust: TrustLevel = TrustLevel.PUBLIC


class DomainRegistry:
    """All domains in a system, plus pairwise trust agreements.

    Trust is directional: ``trust(a, b)`` is how much ``a`` trusts ``b``.
    Without an explicit agreement, trust falls back to the minimum of a
    domain's own base trust and the counterpart's (conservative default).
    """

    def __init__(self) -> None:
        self._domains: Dict[str, AdministrativeDomain] = {}
        self._agreements: Dict[Tuple[str, str], TrustLevel] = {}

    # -- registration -------------------------------------------------------- #
    def add(self, domain: AdministrativeDomain) -> AdministrativeDomain:
        if domain.name in self._domains:
            raise ValueError(f"domain {domain.name!r} already registered")
        self._domains[domain.name] = domain
        return domain

    def get(self, name: str) -> AdministrativeDomain:
        domain = self._domains.get(name)
        if domain is None:
            raise KeyError(f"unknown domain {name!r}")
        return domain

    def __contains__(self, name: str) -> bool:
        return name in self._domains

    @property
    def names(self) -> list:
        return sorted(self._domains)

    # -- trust ------------------------------------------------------------ #
    def set_trust(self, truster: str, trustee: str, level: TrustLevel) -> None:
        """Record a directional trust agreement."""
        self.get(truster)
        self.get(trustee)
        self._agreements[(truster, trustee)] = level

    def set_mutual_trust(self, a: str, b: str, level: TrustLevel) -> None:
        self.set_trust(a, b, level)
        self.set_trust(b, a, level)

    def trust(self, truster: str, trustee: str) -> TrustLevel:
        """Effective trust of ``truster`` toward ``trustee``."""
        if truster == trustee:
            return TrustLevel.OWNED
        explicit = self._agreements.get((truster, trustee))
        if explicit is not None:
            return explicit
        a = self.get(truster)
        b = self.get(trustee)
        return min(a.base_trust, b.base_trust)

    # -- jurisdiction queries ------------------------------------------------- #
    def same_jurisdiction(self, a: str, b: str) -> bool:
        return self.get(a).jurisdiction.name == self.get(b).jurisdiction.name

    def personal_export_allowed(self, src_domain: str, dst_domain: str) -> bool:
        """May personal data legally move from src's to dst's jurisdiction?"""
        src = self.get(src_domain).jurisdiction
        dst = self.get(dst_domain).jurisdiction
        return src.allows_personal_export_to(dst)


#: Convenience jurisdictions used across examples and experiments.  EU and
#: EEA recognize each other; US-CA stands alone (CCPA has no adequacy
#: mechanism toward the EU in this simplified model).
GDPR = Jurisdiction("EU-GDPR", data_residency=frozenset({"EEA"}))
EEA = Jurisdiction("EEA", data_residency=frozenset({"EU-GDPR"}))
CCPA = Jurisdiction("US-CCPA", data_residency=frozenset())

"""Privacy scopes and data-flow policies.

Fig. 4: "Privacy requirements ... dictate what data should leave (or
enter) a component, and each component must have control of its own data
out- or in-flow privacy policies."  The :class:`PolicyEngine` evaluates a
proposed transfer of a :class:`~repro.data.item.DataItem` (or a whole CRDT
stream) between two devices and returns an auditable
:class:`FlowDecision`.

Checks applied, in order:

1. jurisdictional residency for personal/sensitive data;
2. minimum trust between the source and destination domains;
3. the destination environment's trustworthiness (adversarial faults);
4. per-component out-flow and in-flow policies;
5. privacy-scope membership (sensitive data stays inside its scope unless
   anonymized).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.data.item import DataItem, DataSensitivity
from repro.governance.domains import DomainRegistry, TrustLevel


@dataclass(frozen=True)
class FlowDecision:
    """Outcome of a policy evaluation, with the reason for auditability."""

    allowed: bool
    reason: str
    rule: str = ""

    def __bool__(self) -> bool:
        return self.allowed


@dataclass
class FlowPolicy:
    """A component's own in/out flow policy (Fig. 4).

    ``max_out_sensitivity`` caps what the component releases;
    ``max_in_sensitivity`` caps what it accepts (a constrained device may
    refuse to store sensitive data it cannot protect).  ``deny_domains``
    blacklists counterpart domains outright.
    """

    device_id: str
    max_out_sensitivity: DataSensitivity = DataSensitivity.SENSITIVE
    max_in_sensitivity: DataSensitivity = DataSensitivity.SENSITIVE
    deny_domains: Set[str] = field(default_factory=set)

    def allows_out(self, item: DataItem, dst_domain: str) -> Tuple[bool, str]:
        if dst_domain in self.deny_domains:
            return False, f"out-flow: domain {dst_domain!r} denied by {self.device_id!r}"
        if item.sensitivity > self.max_out_sensitivity:
            return False, (
                f"out-flow: sensitivity {item.sensitivity.name} exceeds "
                f"{self.device_id!r} cap {self.max_out_sensitivity.name}"
            )
        return True, "out-flow ok"

    def allows_in(self, item: DataItem, src_domain: str) -> Tuple[bool, str]:
        if src_domain in self.deny_domains:
            return False, f"in-flow: domain {src_domain!r} denied by {self.device_id!r}"
        if item.sensitivity > self.max_in_sensitivity:
            return False, (
                f"in-flow: sensitivity {item.sensitivity.name} exceeds "
                f"{self.device_id!r} cap {self.max_in_sensitivity.name}"
            )
        return True, "in-flow ok"


@dataclass
class PrivacyScope:
    """A named boundary sensitive data must not leave un-anonymized.

    Defined by a jurisdiction or end-user preference (Fig. 4); membership
    is a set of device ids.  An edge device typically manages the scope of
    its local IoT devices (§VI.B's closing example).
    """

    name: str
    members: Set[str] = field(default_factory=set)
    min_sensitivity: DataSensitivity = DataSensitivity.PERSONAL

    def contains(self, device_id: str) -> bool:
        return device_id in self.members

    def blocks(self, item: DataItem, src_device: str, dst_device: str) -> bool:
        """True if this scope forbids the transfer."""
        if item.sensitivity < self.min_sensitivity:
            return False
        return self.contains(src_device) and not self.contains(dst_device)


class PolicyEngine:
    """Evaluates proposed data flows against all governance rules."""

    def __init__(
        self,
        domains: DomainRegistry,
        min_trust: TrustLevel = TrustLevel.PARTNER,
        device_domain: Optional[Callable[[str], str]] = None,
        environment_trusted: Optional[Callable[[str], bool]] = None,
    ) -> None:
        """
        Parameters
        ----------
        min_trust:
            Minimum effective inter-domain trust required to move any
            non-public data.
        device_domain:
            Resolver ``device_id -> domain name`` (wired to the fleet).
        environment_trusted:
            Resolver ``device_id -> bool`` for adversarial-environment
            faults (wired to the fleet).
        """
        self.domains = domains
        self.min_trust = min_trust
        self._device_domain = device_domain or (lambda _d: "default")
        self._environment_trusted = environment_trusted or (lambda _d: True)
        self._policies: Dict[str, FlowPolicy] = {}
        self._scopes: Dict[str, PrivacyScope] = {}
        self.decisions: List[Tuple[float, str, str, FlowDecision]] = []

    # -- configuration --------------------------------------------------------#
    def set_policy(self, policy: FlowPolicy) -> None:
        self._policies[policy.device_id] = policy

    def policy_of(self, device_id: str) -> Optional[FlowPolicy]:
        return self._policies.get(device_id)

    def add_scope(self, scope: PrivacyScope) -> PrivacyScope:
        if scope.name in self._scopes:
            raise ValueError(f"scope {scope.name!r} already exists")
        self._scopes[scope.name] = scope
        return scope

    def scope(self, name: str) -> PrivacyScope:
        return self._scopes[name]

    @property
    def scopes(self) -> List[PrivacyScope]:
        return [self._scopes[k] for k in sorted(self._scopes)]

    # -- evaluation ------------------------------------------------------------#
    def evaluate(
        self,
        item: DataItem,
        src_device: str,
        dst_device: str,
        now: float = 0.0,
    ) -> FlowDecision:
        """Decide whether ``item`` may flow ``src_device -> dst_device``."""
        decision = self._evaluate(item, src_device, dst_device)
        self.decisions.append((now, src_device, dst_device, decision))
        return decision

    def _resolve_domain(self, device_id: str) -> str:
        """Resolve a device's domain.

        The pseudo-device ``"<domain:X>"`` resolves to domain ``X`` -- used
        by the domain-transfer protocol to ask "could this item flow to
        *some* device in X" without naming one.
        """
        if device_id.startswith("<domain:") and device_id.endswith(">"):
            return device_id[len("<domain:"):-1]
        return self._device_domain(device_id)

    def _evaluate(self, item: DataItem, src_device: str, dst_device: str) -> FlowDecision:
        src_domain = self._resolve_domain(src_device)
        dst_domain = self._resolve_domain(dst_device)

        # 1. Jurisdictional residency for personal data and above.
        if item.sensitivity >= DataSensitivity.PERSONAL:
            if not self.domains.personal_export_allowed(src_domain, dst_domain):
                return FlowDecision(
                    False,
                    f"jurisdiction of {src_domain!r} forbids personal-data export "
                    f"to jurisdiction of {dst_domain!r}",
                    rule="residency",
                )

        # 2. Inter-domain trust for anything non-public.
        if item.sensitivity > DataSensitivity.PUBLIC:
            trust = self.domains.trust(src_domain, dst_domain)
            if trust < self.min_trust:
                return FlowDecision(
                    False,
                    f"trust {trust.name} of {src_domain!r} toward {dst_domain!r} "
                    f"below required {self.min_trust.name}",
                    rule="trust",
                )

        # 3. Destination environment trustworthiness.  Pseudo-devices
        # ("<domain:X>") name no concrete device, so there is no
        # environment to distrust -- the jurisdiction/trust rules above
        # already judged the domain itself.
        if (item.sensitivity >= DataSensitivity.PERSONAL
                and not dst_device.startswith("<domain:")):
            if not self._environment_trusted(dst_device):
                return FlowDecision(
                    False,
                    f"destination {dst_device!r} is in untrusted circumstances",
                    rule="environment",
                )

        # 4. Component in/out flow policies.
        src_policy = self._policies.get(src_device)
        if src_policy is not None:
            ok, reason = src_policy.allows_out(item, dst_domain)
            if not ok:
                return FlowDecision(False, reason, rule="out-flow")
        dst_policy = self._policies.get(dst_device)
        if dst_policy is not None:
            ok, reason = dst_policy.allows_in(item, src_domain)
            if not ok:
                return FlowDecision(False, reason, rule="in-flow")

        # 5. Privacy scopes.
        for scope in self.scopes:
            if scope.blocks(item, src_device, dst_device):
                return FlowDecision(
                    False,
                    f"item of sensitivity {item.sensitivity.name} may not leave "
                    f"privacy scope {scope.name!r}",
                    rule="scope",
                )

        return FlowDecision(True, "all governance checks passed")

    # -- audit ------------------------------------------------------------------#
    def denial_count(self) -> int:
        return sum(1 for (_, _, _, d) in self.decisions if not d.allowed)

    def denials_by_rule(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for _, _, _, decision in self.decisions:
            if not decision.allowed:
                out[decision.rule] = out.get(decision.rule, 0) + 1
        return out

"""Administrative domain transfer protocol.

"Transfer of administrative domains may occur" (§I) -- e.g. a vehicle
crossing a border, a sensor fleet sold to another operator.  The protocol
makes the transfer *governed* rather than abrupt: data the destination
domain is not entitled to is purged (or anonymized) from the device before
the domain label flips, so the transfer itself cannot leak.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.data.item import DataItem, DataSensitivity
from repro.data.lineage import LineageTracker
from repro.devices.fleet import DeviceFleet
from repro.governance.policy import PolicyEngine
from repro.simulation.kernel import Simulator
from repro.simulation.trace import TraceLog


class DomainTransferProtocol:
    """Governed hand-over of a device between administrative domains."""

    def __init__(
        self,
        sim: Simulator,
        fleet: DeviceFleet,
        policy_engine: PolicyEngine,
        lineage: Optional[LineageTracker] = None,
        trace: Optional[TraceLog] = None,
    ) -> None:
        self.sim = sim
        self.fleet = fleet
        self.policy_engine = policy_engine
        self.lineage = lineage
        self.trace = trace
        # Device-resident data registered for governance: device -> items.
        self._resident: Dict[str, List[DataItem]] = {}
        self.transfers_completed = 0
        self.items_purged = 0
        self.items_anonymized = 0

    # -- data residency bookkeeping ------------------------------------------- #
    def register_resident_data(self, device_id: str, item: DataItem) -> None:
        """Record that ``item`` is stored on ``device_id``."""
        self._resident.setdefault(device_id, []).append(item)

    def resident_data(self, device_id: str) -> List[DataItem]:
        return list(self._resident.get(device_id, ()))

    # -- the transfer ---------------------------------------------------------- #
    def transfer(
        self,
        device_id: str,
        new_domain: str,
        anonymize_instead_of_purge: bool = True,
    ) -> Dict[str, int]:
        """Move a device to ``new_domain``, sanitizing resident data first.

        For every resident item, the policy engine is asked whether the
        item could legally flow from the device (in its *old* domain) to a
        hypothetical peer in the *new* domain.  Items that could not are
        anonymized (if permitted) or purged.

        Returns counters ``{"kept": n, "anonymized": n, "purged": n}``.
        """
        device = self.fleet.get(device_id)
        old_domain = device.domain
        if new_domain not in self.policy_engine.domains:
            raise KeyError(f"unknown destination domain {new_domain!r}")
        kept: List[DataItem] = []
        counters = {"kept": 0, "anonymized": 0, "purged": 0}
        for item in self._resident.get(device_id, ()):
            decision = self.policy_engine.evaluate(
                item, device_id, f"<domain:{new_domain}>", now=self.sim.now
            )
            # The hypothetical destination has no device entry; resolve its
            # domain through a temporary override below.
            if decision.allowed:
                kept.append(item)
                counters["kept"] += 1
                continue
            if anonymize_instead_of_purge and item.sensitivity >= DataSensitivity.PERSONAL:
                anonymized = item.anonymize(producer=device_id, created_at=self.sim.now)
                kept.append(anonymized)
                counters["anonymized"] += 1
                self.items_anonymized += 1
                if self.lineage is not None:
                    self.lineage.record_created(anonymized, self.sim.now, device_id)
            else:
                counters["purged"] += 1
                self.items_purged += 1
            if self.lineage is not None:
                self.lineage.record_denied(
                    item, self.sim.now, device_id, new_domain,
                    reason=f"domain transfer sanitation: {decision.reason}",
                )
        self._resident[device_id] = kept
        self.fleet.transfer_domain(device_id, new_domain)
        self.transfers_completed += 1
        if self.trace is not None:
            self.trace.emit(
                self.sim.now, "governance", "domain-transfer-complete",
                subject=device_id, old_domain=old_domain, new_domain=new_domain,
                **counters,
            )
        return counters

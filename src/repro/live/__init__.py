"""Live-service mode: the resilience stack as an operable control plane.

Everything else in the repo is batch -- prepare a scenario, drain the
event queue, exit.  :mod:`repro.live` runs the same scenarios as
long-lived services: the kernel paced against the wall clock, telemetry
served over HTTP, checkpoints taken on a wall-clock cadence for
restart-without-loss, and reconfiguration hot-loaded without stopping.
``python -m repro live <scenario>`` is the entry point.

The whole subsystem preserves the persistence plane's determinism
contract: pacing and serving are telemetry-only (a paced run's journal
is byte-identical to the batch reference), and hot-loads pin themselves
to fired-count barriers so resumed and replayed runs reproduce them
exactly.
"""

from repro.live.pacing import PacingStats, RealTimeExecutor
from repro.live.reconfigure import (
    LiveLoadError,
    PAYLOAD_KINDS,
    apply_payload,
    register_live_loads,
    validate_payload,
)
from repro.live.server import TelemetryServer
from repro.live.status import health_snapshot, status_snapshot
from repro.live.supervisor import CHECKPOINT_EVERY_S, LiveService

__all__ = [
    "CHECKPOINT_EVERY_S",
    "LiveLoadError",
    "LiveService",
    "PAYLOAD_KINDS",
    "PacingStats",
    "RealTimeExecutor",
    "TelemetryServer",
    "apply_payload",
    "health_snapshot",
    "register_live_loads",
    "status_snapshot",
    "validate_payload",
]

"""The real-time executor: pace the kernel against the wall clock.

Batch drivers drain the event queue as fast as the CPU allows; the live
service instead maps simulated seconds onto wall-clock seconds with a
configurable *speed factor* (``speed=1`` is real time, ``speed=10`` runs
ten simulated seconds per wall second, ``speed=0`` disables pacing
entirely).  Before each event fires, the executor sleeps toward

    ``wall_anchor + (event_time - sim_anchor) / speed``

an *absolute* schedule: lag is never silently re-anchored, so a system
that cannot keep up shows a growing ``live.pacing.lag_s`` instead of a
quietly stretched clock.

Determinism contract: pacing is telemetry-only.  The executor drives the
same :meth:`~repro.simulation.kernel.Simulator.step` sequence a batch
driver does, and its lag telemetry uses metric *sample series* only
(never counters or trace events, which feed the system digest) -- so a
paced run's journal and digest chain are byte-identical to the batch
run's at any speed factor.

Between events -- and while sleeping -- the executor calls back into the
supervisor (``housekeeping``), which is where periodic checkpoints,
hot-reload polling and drain requests happen: always at an event
boundary, never mid-step.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

#: Longest single sleep, so drain requests and hot-reloads are noticed
#: promptly even when the next event is far away in wall time.
POLL_INTERVAL_S = 0.05

#: Minimum wall seconds between lag samples (keeps the digest-neutral
#: telemetry bounded at high event rates).
LAG_SAMPLE_EVERY_S = 0.25


@dataclass
class PacingStats:
    """Wall-clock accounting of one paced drive (telemetry-only)."""

    speed: float = 0.0
    events: int = 0
    wall_s: float = 0.0
    slept_s: float = 0.0
    max_lag_s: float = 0.0
    behind_events: int = 0      # events that fired past their wall target

    def to_dict(self) -> dict:
        return {
            "speed": self.speed,
            "events": self.events,
            "wall_s": self.wall_s,
            "slept_s": self.slept_s,
            "max_lag_s": self.max_lag_s,
            "behind_events": self.behind_events,
        }


@dataclass
class RealTimeExecutor:
    """Drives a system's kernel on a wall-clock schedule.

    ``clock`` and ``sleep`` are injectable for tests (a fake clock makes
    pacing assertions deterministic).  ``should_stop`` returning True
    stops the drive at the next event boundary; ``housekeeping`` runs
    between events and during pacing sleeps.
    """

    system: Any
    speed: float = 1.0
    poll_interval: float = POLL_INTERVAL_S
    clock: Callable[[], float] = _time.monotonic
    sleep: Callable[[float], None] = _time.sleep
    # Optional context manager held around each step (and the final
    # clock advance): the supervisor passes its state lock so HTTP
    # handler threads only ever render between events.
    lock: Optional[Any] = None
    stats: PacingStats = field(init=False)

    def __post_init__(self) -> None:
        if self.speed < 0:
            raise ValueError(f"speed factor must be >= 0, got {self.speed}")
        self.stats = PacingStats(speed=self.speed)

    # ------------------------------------------------------------------ #
    def run(self, until: float,
            should_stop: Optional[Callable[[], bool]] = None,
            housekeeping: Optional[Callable[[], None]] = None) -> str:
        """Drive to ``until``; returns ``"completed"`` or ``"drained"``.

        Mirrors the batch drivers' semantics: kernel stops (e.g. a
        ``harness-crash`` fault) are ignored, and on completion the
        clock advances to exactly ``until`` even if the queue drained
        earlier -- so the journal's closing record matches
        ``run_scenario``'s byte for byte.
        """
        sim = self.system.sim
        started = self.clock()
        wall_anchor, sim_anchor = started, sim.now
        last_housekeeping = started
        last_lag_sample = started
        try:
            while True:
                if should_stop is not None and should_stop():
                    return "drained"
                next_time = sim.next_event_time()
                if next_time is None or next_time > until:
                    if not self._idle_to(until, wall_anchor, sim_anchor,
                                         should_stop, housekeeping):
                        return "drained"
                    # Advance the clock to the horizon exactly as
                    # run(until=...) would on a drained queue.
                    if self.lock is not None:
                        with self.lock:
                            sim.run(until=until)
                    else:
                        sim.run(until=until)
                    return "completed"
                if self.speed > 0:
                    target = wall_anchor + (next_time - sim_anchor) / self.speed
                    if not self._sleep_until(target, should_stop, housekeeping):
                        return "drained"
                    lag = self.clock() - target
                    if lag > 0:
                        self.stats.behind_events += 1
                        if lag > self.stats.max_lag_s:
                            self.stats.max_lag_s = lag
                    now_wall = self.clock()
                    if now_wall - last_lag_sample >= LAG_SAMPLE_EVERY_S:
                        last_lag_sample = now_wall
                        self._record_lag(max(lag, 0.0))
                if self.lock is not None:
                    with self.lock:
                        stepped = sim.step()
                else:
                    stepped = sim.step()
                if not stepped:
                    continue   # only cancelled events remained; re-peek
                self.stats.events += 1
                if housekeeping is not None:
                    now_wall = self.clock()
                    if now_wall - last_housekeeping >= self.poll_interval:
                        last_housekeeping = now_wall
                        housekeeping()
        finally:
            self.stats.wall_s += self.clock() - started

    # ------------------------------------------------------------------ #
    def _sleep_until(self, target: float,
                     should_stop: Optional[Callable[[], bool]],
                     housekeeping: Optional[Callable[[], None]]) -> bool:
        """Sleep toward an absolute wall target; False on drain request."""
        while True:
            delay = target - self.clock()
            if delay <= 0:
                return True
            chunk = min(delay, self.poll_interval)
            self.sleep(chunk)
            self.stats.slept_s += chunk
            if housekeeping is not None:
                housekeeping()
            if should_stop is not None and should_stop():
                return False

    def _idle_to(self, until: float, wall_anchor: float, sim_anchor: float,
                 should_stop: Optional[Callable[[], bool]],
                 housekeeping: Optional[Callable[[], None]]) -> bool:
        """Paced wait out the tail of the horizon after the queue drains."""
        if self.speed <= 0:
            return True
        target = wall_anchor + (until - sim_anchor) / self.speed
        return self._sleep_until(target, should_stop, housekeeping)

    def _record_lag(self, lag: float) -> None:
        # Sample series only: digest-neutral by the persistence
        # telemetry rule (counters and trace events feed the digest).
        system = self.system
        system.metrics.record("live.pacing.lag_s", system.sim.now, lag)
        if system.spans is not None:
            system.spans.record("live:pacing", "live", system.sim.now,
                                lag_s=lag, speed=self.speed)

"""Hot-loaded reconfiguration: fault schedules and chaos specs, live.

A running :class:`~repro.live.supervisor.LiveService` accepts *payloads*
-- JSON documents dropped into its ``--reload-dir`` (or handed to
:meth:`~repro.live.supervisor.LiveService.hot_load` directly) -- and
applies them to the simulated system between kernel events:

* ``{"kind": "fault-schedule", "faults": [FaultEvent dicts]}`` schedules
  each fault at ``now + at`` (payload times are offsets from the moment
  the load lands, so an operator never has to know the service's clock).
* ``{"kind": "chaos-spec", "spec": {ChaosSpec dict}}`` compiles the
  declarative spec's *disruption program* -- its fault schedule and, when
  present, its adversary -- onto the running system.  The construction
  axes (topology, workload, traffic, maturity) describe a system to
  build and are rejected as hot-loads make no sense for them; use them
  by starting the service on the ``chaos`` scenario instead.

Determinism contract
--------------------
Applying a payload mutates the journaled event stream (it schedules
kernel events, which consume sequence numbers).  To keep hot-loaded runs
checkpoint/resume/replay-faithful, every application is pinned to its
*fired-count barrier*: the supervisor applies at fired count N and
records ``{"fired": N, "time": T, "payload": ...}`` both in the journal
(a ``reconfig`` record) and in the spec's ``live_loads`` param (embedded
in every subsequent checkpoint).  :func:`register_live_loads` replays
that record via :meth:`~repro.simulation.kernel.Simulator.at_fired`, so
a rebuilt run applies the identical mutation at the identical point in
the event sequence -- same sequence numbers, same digests.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.chaos.spec import FAULT_KINDS, ChaosSpec, FaultEvent


class LiveLoadError(ValueError):
    """A malformed or inapplicable hot-load payload."""


PAYLOAD_KINDS = ("fault-schedule", "chaos-spec")


def validate_payload(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Parse-and-check a payload without touching any system.

    Returns the normalized payload dict (plain JSON types only, ready to
    journal).  Raises :class:`LiveLoadError` on anything malformed, so a
    bad file in the reload directory is reported instead of half-applied.
    """
    if not isinstance(payload, dict):
        raise LiveLoadError(f"payload must be a JSON object, got "
                            f"{type(payload).__name__}")
    kind = payload.get("kind")
    if kind == "fault-schedule":
        faults = payload.get("faults")
        if not isinstance(faults, list) or not faults:
            raise LiveLoadError("fault-schedule payload needs a non-empty "
                                "'faults' list")
        normalized = []
        for index, entry in enumerate(faults):
            try:
                event = FaultEvent.from_dict(entry)
            except (KeyError, TypeError, ValueError) as exc:
                raise LiveLoadError(
                    f"faults[{index}] is not a fault event: {exc}") from exc
            if event.kind not in FAULT_KINDS:
                raise LiveLoadError(
                    f"faults[{index}]: unknown kind {event.kind!r} "
                    f"(expected one of {FAULT_KINDS})")
            if event.at < 0:
                raise LiveLoadError(
                    f"faults[{index}]: offset at={event.at} is negative "
                    "(payload times are offsets from load time)")
            normalized.append(event.to_dict())
        return {"kind": "fault-schedule", "faults": normalized}
    if kind == "chaos-spec":
        try:
            spec = ChaosSpec.from_dict(payload.get("spec") or {})
            spec.validate()
        except (KeyError, TypeError, ValueError) as exc:
            raise LiveLoadError(f"chaos-spec payload invalid: {exc}") from exc
        if not spec.faults and spec.adversary.attack == "none":
            raise LiveLoadError(
                "chaos-spec payload has no disruption program (no faults, "
                "no adversary); only disruptions can be hot-loaded")
        return {"kind": "chaos-spec", "spec": spec.to_dict()}
    raise LiveLoadError(f"unknown payload kind {kind!r} "
                        f"(expected one of {PAYLOAD_KINDS})")


# --------------------------------------------------------------------------- #
# Application
# --------------------------------------------------------------------------- #
def _build_fault(name: str, event: FaultEvent, system: Any):
    """A concrete fault model for one schedule entry (compiler's mapping)."""
    from repro.faults.models import (
        CrashRecoveryFault,
        LatencySpikeFault,
        LinkFailureFault,
        PartitionFault,
    )

    if event.kind in ("crash", "partition"):
        try:
            system.fleet.get(event.target)
        except KeyError:
            raise LiveLoadError(
                f"fault {name}: target {event.target!r} not in the running "
                "fleet") from None
        if event.kind == "crash":
            return CrashRecoveryFault(name=name, device_id=event.target,
                                      duration=event.duration)
        return PartitionFault(name=name, isolate_node=event.target,
                              duration=event.duration)
    node_a, _, node_b = event.target.partition(":")
    if system.topology.link_between(node_a, node_b) is None:
        raise LiveLoadError(
            f"fault {name}: no link {node_a!r}-{node_b!r} in the running "
            "topology")
    if event.kind == "latency":
        return LatencySpikeFault(name=name, node_a=node_a, node_b=node_b,
                                 factor=8.0, duration=event.duration)
    return LinkFailureFault(name=name, node_a=node_a, node_b=node_b,
                            duration=event.duration)


def _apply_fault_events(system: Any, events: List[FaultEvent],
                        tag: str) -> List[str]:
    """Validate every entry, then schedule all (no partial application)."""
    now = system.sim.now
    built = []
    for index, event in enumerate(events):
        name = f"{tag}-{event.kind}-{index}@{event.at:g}"
        built.append((now + event.at, _build_fault(name, event, system)))
    for at, fault in built:
        system.injector.inject_at(at, fault)
    return [fault.name for _, fault in built]


def _apply_adversary(system: Any, spec: ChaosSpec) -> List[str]:
    """The chaos compiler's adversary wiring, offset from load time."""
    if spec.adversary.attack == "none":
        return []
    from repro.faults.models import NodeCompromiseFault
    from repro.security.adversary import FloodBehavior, SybilJoinBehavior

    attacker = "edge1"
    for node in (attacker, "edge0"):
        try:
            system.fleet.get(node)
        except KeyError:
            raise LiveLoadError(
                f"chaos-spec adversary needs node {node!r} in the running "
                "fleet") from None
    behaviors: List[Any] = [
        FloodBehavior(target="edge0", rate=spec.adversary.rate)]
    if spec.adversary.attack == "sybil-flood":
        edges = list(system.edge_nodes)
        targets = [e for e in edges if e != attacker][:2]
        behaviors.append(SybilJoinBehavior(targets=targets))
    name = f"live-compromise:{attacker}"
    system.injector.inject_at(
        system.sim.now + spec.adversary.at,
        NodeCompromiseFault(name=name, device_id=attacker,
                            behaviors=behaviors))
    return [name]


def apply_payload(system: Any, payload: Dict[str, Any]) -> Dict[str, Any]:
    """Apply a validated payload to ``system`` at the current instant.

    Must be called *between* kernel events (the supervisor and the
    barrier hooks both guarantee this).  Returns a summary dict of what
    was scheduled, for logging and the ``/status`` endpoint.
    """
    payload = validate_payload(payload)
    if payload["kind"] == "fault-schedule":
        events = [FaultEvent.from_dict(f) for f in payload["faults"]]
        names = _apply_fault_events(system, events, tag="live")
        return {"kind": "fault-schedule", "scheduled": names}
    spec = ChaosSpec.from_dict(payload["spec"])
    events = list(spec.faults)
    names = _apply_fault_events(system, events, tag="live-chaos")
    names += _apply_adversary(system, spec)
    return {"kind": "chaos-spec", "scheduled": names,
            "describe": spec.describe()}


def register_live_loads(system: Any,
                        loads: List[Dict[str, Any]]) -> None:
    """Re-register recorded hot-loads at their fired-count barriers.

    Called by :func:`repro.persistence.scenarios.prepare` (for specs
    whose params carry ``live_loads``) and by the replay engine (for
    journals with ``reconfig`` records).  Each payload re-applies at the
    exact event-sequence point where the live run applied it.
    """
    for load in loads:
        payload = dict(load.get("payload") or {})

        def _apply(_sim: Any, _payload: Dict[str, Any] = payload) -> None:
            apply_payload(system, _payload)

        system.sim.at_fired(int(load.get("fired", 0)), _apply)

"""The live telemetry server: ``/metrics``, ``/healthz``, dashboard.

A stdlib :class:`~http.server.ThreadingHTTPServer` (no new dependencies)
serving the running system's telemetry:

* ``/metrics`` -- the same :func:`~repro.observability.export.prometheus_text`
  exposition ``python -m repro report`` writes to disk, rendered from the
  shared :func:`~repro.observability.export.report_inputs` assembly so
  served and written telemetry cannot drift.
* ``/healthz`` -- JSON from the SLO monitor's *current* state: 200 while
  every objective holds, 503 while any is breached (load-balancer
  semantics: a breached-then-recovered service goes ready again).
* ``/status`` -- the operator view: health plus checkpoint/pacing/
  hot-load accounting.
* ``/`` -- the auto-refreshing HTML dashboard, rendered by the same
  :func:`~repro.observability.export.render_html_report` as the file
  report.

Handlers run in server threads while the supervisor steps the kernel in
the main thread; every render goes through the service's lock and is a
pure read, so scraping never perturbs the journaled run.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Optional

#: Dashboard auto-refresh period (seconds).
DASHBOARD_REFRESH_S = 2.0


class TelemetryServer:
    """Serves a :class:`~repro.live.supervisor.LiveService`'s telemetry.

    ``port=0`` binds an ephemeral port (tests); the bound port is
    available as :attr:`port` after :meth:`start`.
    """

    def __init__(self, service: Any, port: int = 0,
                 host: str = "127.0.0.1") -> None:
        self.service = service
        self.host = host
        self._requested_port = port
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------ #
    @property
    def port(self) -> Optional[int]:
        return self._httpd.server_address[1] if self._httpd else None

    @property
    def url(self) -> Optional[str]:
        return f"http://{self.host}:{self.port}" if self._httpd else None

    def start(self) -> "TelemetryServer":
        service = self.service

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 - http.server API
                try:
                    if self.path == "/metrics":
                        body = service.render_metrics()
                        self._reply(200, body,
                                    "text/plain; version=0.0.4; charset=utf-8")
                    elif self.path == "/healthz":
                        code, health = service.render_health()
                        self._reply(code, json.dumps(health, sort_keys=True),
                                    "application/json")
                    elif self.path == "/status":
                        self._reply(200,
                                    json.dumps(service.render_status(),
                                               sort_keys=True, default=str),
                                    "application/json")
                    elif self.path in ("/", "/dashboard"):
                        self._reply(200, service.render_dashboard(),
                                    "text/html; charset=utf-8")
                    else:
                        self._reply(404, json.dumps(
                            {"error": "not found", "routes":
                             ["/metrics", "/healthz", "/status", "/"]}),
                            "application/json")
                except Exception as exc:  # pragma: no cover - defensive
                    self._reply(500, json.dumps({"error": str(exc)}),
                                "application/json")

            def _reply(self, code: int, body: str, content_type: str) -> None:
                data = body.encode("utf-8")
                self.send_response(code)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(data)))
                self.end_headers()
                self.wfile.write(data)

            def log_message(self, *args: Any) -> None:
                pass   # scrapes are not operator-facing events

        self._httpd = ThreadingHTTPServer((self.host, self._requested_port),
                                          Handler)
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(target=self._httpd.serve_forever,
                                        name="repro-live-telemetry",
                                        daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

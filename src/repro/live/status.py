"""Service health and status snapshots for the live control plane.

``/healthz`` and ``/status`` render from one place so the probe a load
balancer sees and the richer operator view can never disagree.  Health
derives from the SLO monitor when the scenario wires one (``breached_now``
-- the *current* state, so a service that breached and recovered goes
healthy again), plus harness-level liveness: a triggered flight recorder
with a ``harness-crash`` incident marks the service unhealthy even on
scenarios without SLOs.
"""

from __future__ import annotations

from typing import Any, Dict, Optional


def health_snapshot(system: Any,
                    monitor: Optional[Any] = None,
                    flight: Optional[Any] = None) -> Dict[str, Any]:
    """The ``/healthz`` body: ``status`` is ``"ok"`` or ``"breached"``.

    ``monitor`` is a :class:`~repro.observability.slo.SloMonitor` (or
    None for scenarios without one); ``flight`` a
    :class:`~repro.observability.flight.FlightRecorder`.
    """
    breached = []
    if monitor is not None:
        breached = [status.spec.name for status in monitor.breached_now]
    crashed = bool(flight is not None and any(
        t.reason == "harness-crash" for t in flight.triggers))
    healthy = not breached and not crashed
    body: Dict[str, Any] = {
        "status": "ok" if healthy else "breached",
        "sim_time": system.sim.now,
        "fired_events": system.sim.fired_count,
        "pending_events": system.sim.pending_count,
        "breached_slos": breached,
    }
    if monitor is not None:
        body["slo_evaluations"] = monitor.evaluations
        body["slo_breach_events"] = monitor.breach_events
    if crashed:
        body["harness_crash"] = True
    return body


def status_snapshot(service: Any) -> Dict[str, Any]:
    """The ``/status`` body: health plus supervisor-level operation data.

    ``service`` is a :class:`~repro.live.supervisor.LiveService`; this
    helper only reads, so HTTP handler threads can call it under the
    service lock without perturbing the run.
    """
    system = service.system
    body = health_snapshot(system, monitor=service.monitor,
                           flight=service.flight)
    body.update({
        "scenario": service.spec.to_dict(),
        "horizon": service.horizon,
        "speed": service.speed,
        "resumed": service.resumed,
        "draining": service.draining,
        "checkpoints_written": service.checkpoints_written,
        "last_checkpoint": service.last_checkpoint_meta,
        "hot_loads_applied": service.hot_loads_applied,
        "pacing": service.executor.stats.to_dict(),
    })
    return body

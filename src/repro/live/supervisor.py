"""The live supervisor: a scenario run operated as a long-lived service.

:class:`LiveService` wraps any registered scenario in the operational
envelope the paper's vision calls for:

* the :class:`~repro.live.pacing.RealTimeExecutor` paces the kernel
  against the wall clock (telemetry-only: the journal stays byte-
  identical to a batch ``run_scenario`` at any speed factor);
* every event is journaled (the same ``RunRecorder`` the batch drivers
  use) and a checkpoint is saved every ``checkpoint_every`` wall seconds
  -- always between events -- so a SIGKILL'd service restarted on the
  same ``--out`` directory resumes from its last barrier via the
  standard ``fast_forward`` + WAL-truncate path, without loss;
* the flight recorder stays armed for the whole run, and the SLO
  monitor (when the scenario wires one) drives ``/healthz``;
* reconfigurations (fault schedules, chaos specs) hot-load between
  events through :mod:`repro.live.reconfigure`, journaled as
  ``reconfig`` records and embedded in every later checkpoint's spec so
  resumed and replayed runs reproduce them exactly;
* SIGINT/SIGTERM request a *drain*: the executor stops at the next
  event boundary, a final checkpoint lands, any triggered incident
  flushes its bundle, and the journal is left open-ended -- exactly the
  state a restart resumes from.

Threading model: the supervisor steps the kernel in the calling thread;
the telemetry server renders in its own threads.  A single re-entrant
lock is held around every step and every render, so scrapes only ever
observe the system between events.
"""

from __future__ import annotations

import os
import threading
import time as _time
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.live.pacing import POLL_INTERVAL_S, RealTimeExecutor
from repro.live.reconfigure import LiveLoadError, apply_payload, validate_payload
from repro.live.server import DASHBOARD_REFRESH_S, TelemetryServer
from repro.live.status import health_snapshot, status_snapshot
from repro.persistence.checkpoint import Checkpoint, CheckpointError, default_paths
from repro.persistence.journal import JournalWriter, truncate
from repro.persistence.runner import RunRecorder, fast_forward, save_checkpoint
from repro.persistence.scenarios import ScenarioSpec, prepare

#: Default wall seconds between periodic checkpoints.
CHECKPOINT_EVERY_S = 10.0

#: Wall seconds between reload-directory polls.
RELOAD_POLL_S = 0.5


class LiveService:
    """Run one scenario as an operable, crash-resumable service.

    ``out`` is the service's state directory (checkpoint + journal +
    incident bundles).  If it already holds a checkpoint for the same
    scenario, :meth:`start` resumes it instead of starting fresh.
    ``port=None`` disables the telemetry server (benches); ``port=0``
    binds an ephemeral port (tests).
    """

    def __init__(self, spec: ScenarioSpec, out: str,
                 speed: float = 1.0,
                 port: Optional[int] = 0,
                 checkpoint_every: float = CHECKPOINT_EVERY_S,
                 reload_dir: Optional[str] = None,
                 until: Optional[float] = None,
                 digest_every: int = 25,
                 clock: Callable[[], float] = _time.monotonic,
                 sleep: Callable[[float], None] = _time.sleep,
                 poll_interval: float = POLL_INTERVAL_S) -> None:
        if checkpoint_every <= 0:
            raise ValueError("checkpoint_every must be positive wall seconds")
        self.spec = spec
        self.out = out
        self.speed = speed
        self.port = port
        self.checkpoint_every = checkpoint_every
        self.reload_dir = reload_dir
        self.until = until
        self.digest_every = digest_every
        self._clock = clock
        self._sleep = sleep
        self._poll_interval = poll_interval

        self._lock = threading.RLock()
        self._drain_requested = False
        self._log: Optional[Callable[[str], None]] = None

        # Populated by start():
        self.system: Any = None
        self.monitor: Any = None
        self.flight: Any = None
        self.horizon: float = 0.0
        self.resumed = False
        self.executor: Optional[RealTimeExecutor] = None
        self.server: Optional[TelemetryServer] = None
        self.checkpoints_written = 0
        self.last_checkpoint_meta: Optional[Dict[str, Any]] = None
        self.hot_loads_applied: List[Dict[str, Any]] = []
        self._prepared: Any = None
        self._recorder: Optional[RunRecorder] = None
        self._journal: Optional[JournalWriter] = None
        self._paths = default_paths(out)
        self._last_checkpoint_wall: float = 0.0
        self._last_reload_wall: float = 0.0
        self._seen_reloads: set = set()

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self, log: Optional[Callable[[str], None]] = None
              ) -> "LiveService":
        """Build (or resume) the system, arm recording, start serving."""
        from repro.observability.flight import FlightRecorder

        self._log = log
        os.makedirs(self.out, exist_ok=True)
        checkpoint = self._load_checkpoint()
        if checkpoint is not None:
            spec = ScenarioSpec.from_dict(checkpoint.scenario)
            if spec.name != self.spec.name:
                raise CheckpointError(
                    f"state directory {self.out!r} holds a checkpoint for "
                    f"scenario {spec.name!r}, not {self.spec.name!r}; use a "
                    "fresh --out directory")
            self.spec = spec
            prepared = prepare(spec)
            fast_forward(prepared.system, checkpoint)
            truncate(self._paths["journal"], checkpoint.fired)
            self._journal = JournalWriter(self._paths["journal"], append=True)
            self.digest_every = checkpoint.digest_every
            self.resumed = True
            self._say(f"resumed from checkpoint at t={checkpoint.time:g}s "
                      f"({checkpoint.fired} events)")
        else:
            prepared = prepare(self.spec)
            self._journal = JournalWriter(self._paths["journal"],
                                          self.spec.to_dict(),
                                          self.digest_every)
        self._prepared = prepared
        self.system = prepared.system
        self.monitor = prepared.aux.get("monitor")
        self.horizon = (self.until if self.until is not None
                        else prepared.horizon)
        self._recorder = RunRecorder(self.system, self._journal,
                                     self.digest_every)
        self.flight = FlightRecorder(self.system, spec=self.spec,
                                     loops=prepared.aux.get("loops"))
        self.flight.arm()   # chains after the journaling observer
        self.executor = RealTimeExecutor(
            self.system, speed=self.speed, poll_interval=self._poll_interval,
            clock=self._clock, sleep=self._sleep, lock=self._lock)
        self._last_checkpoint_wall = self._clock()
        self._last_reload_wall = self._clock()
        if self.port is not None:
            self.server = TelemetryServer(self, port=self.port).start()
            self._say(f"telemetry server on {self.server.url} "
                      "(/metrics /healthz /status /)")
        return self

    def run(self) -> str:
        """Drive to the horizon; returns ``"completed"`` or ``"drained"``.

        Either way the service ends with a durable barrier: a completed
        run closes the journal with its ``end`` record (byte-identical
        to the batch reference) and a drained run leaves an open-ended
        journal plus a final checkpoint -- the exact state
        :meth:`start` resumes from.
        """
        if self.executor is None:
            raise RuntimeError("LiveService.run() before start()")
        try:
            outcome = self.executor.run(self.horizon,
                                        should_stop=self._should_stop,
                                        housekeeping=self._housekeeping)
        except BaseException:
            with self._lock:
                self._recorder.abandon()
                self._flush_incidents()
            raise
        finally:
            self.stop_serving()
        with self._lock:
            if outcome == "completed":
                final = self._recorder.finish()
                self.last_checkpoint_meta = {
                    "time": self.system.sim.now,
                    "fired": self.system.sim.fired_count,
                    "digest": final, "final": True,
                }
                self._say(f"completed horizon t={self.horizon:g}s "
                          f"({self.system.sim.fired_count} events)")
            else:
                self._save_checkpoint()
                self._recorder.abandon()
                self._say(f"drained at t={self.system.sim.now:g}s "
                          f"({self.system.sim.fired_count} events); "
                          "journal left open for resume")
            self._flush_incidents()
        return outcome

    def request_drain(self) -> None:
        """Ask the run loop to stop at the next event boundary.

        Safe from signal handlers and other threads: it only sets a
        flag the executor polls between events and during sleeps.
        """
        self._drain_requested = True

    @property
    def draining(self) -> bool:
        return self._drain_requested

    def stop_serving(self) -> None:
        if self.server is not None:
            self.server.stop()
            self.server = None

    # ------------------------------------------------------------------ #
    # Periodic work (always between events, under the lock)
    # ------------------------------------------------------------------ #
    def _should_stop(self) -> bool:
        return self._drain_requested

    def _housekeeping(self) -> None:
        now = self._clock()
        if now - self._last_checkpoint_wall >= self.checkpoint_every:
            with self._lock:
                self._save_checkpoint()
        if (self.reload_dir is not None
                and now - self._last_reload_wall >= RELOAD_POLL_S):
            self._last_reload_wall = now
            self.poll_reload_dir()

    def _save_checkpoint(self) -> Checkpoint:
        checkpoint = save_checkpoint(self.system, self.spec,
                                     self._paths["checkpoint"],
                                     self.digest_every)
        self.checkpoints_written += 1
        self._last_checkpoint_wall = self._clock()
        self.last_checkpoint_meta = {
            "time": checkpoint.time, "fired": checkpoint.fired,
            "digest": checkpoint.digest,
        }
        return checkpoint

    def _load_checkpoint(self) -> Optional[Checkpoint]:
        path = self._paths["checkpoint"]
        if not (os.path.exists(path)
                and os.path.exists(self._paths["journal"])):
            return None
        return Checkpoint.load(path)

    def _flush_incidents(self) -> None:
        if self.flight is None:
            return
        self.flight.finalize()
        if self.flight.triggered:
            bundle_dir = os.path.join(self.out, "incidents", self.spec.name)
            bundle = self.flight.capture(bundle_dir,
                                         journal_path=self._paths["journal"])
            self._say(f"incident bundle: {bundle}")
        self.flight.disarm()

    def _say(self, message: str) -> None:
        if self._log is not None:
            self._log(message)

    # ------------------------------------------------------------------ #
    # Hot reconfiguration
    # ------------------------------------------------------------------ #
    def hot_load(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Apply a reconfiguration payload at the current event barrier.

        WAL discipline: the ``reconfig`` record hits the journal before
        the payload mutates the system, the spec's ``live_loads`` gains
        the application point, and a checkpoint is saved immediately --
        so the load survives any crash that survives the load.
        """
        with self._lock:
            payload = validate_payload(payload)
            sim = self.system.sim
            fired, now = sim.fired_count, sim.now
            self._journal.append_reconfig(fired, now, payload)
            summary = apply_payload(self.system, payload)
            loads = list(self.spec.params.get("live_loads", []))
            loads.append({"fired": fired, "time": now, "payload": payload})
            self.spec = ScenarioSpec(
                name=self.spec.name, seed=self.spec.seed,
                params={**self.spec.params, "live_loads": loads})
            if self.flight is not None:
                # Incident bundles must rebuild with the load applied.
                self.flight.spec = self.spec
            self._save_checkpoint()
            entry = {"fired": fired, "time": now, **summary}
            self.hot_loads_applied.append(entry)
            self._say(f"hot-loaded {summary['kind']} at t={now:g}s "
                      f"(fired={fired}): {', '.join(summary['scheduled'])}")
            return entry

    def poll_reload_dir(self) -> List[Dict[str, Any]]:
        """Apply any new ``*.json`` payloads in the reload directory.

        Files are processed in name order and renamed to ``*.applied``
        (or ``*.rejected`` with an adjacent ``.error`` file) so each
        payload applies exactly once.
        """
        import json as _json

        applied = []
        try:
            names = sorted(os.listdir(self.reload_dir))
        except OSError:
            return applied
        for name in names:
            if not name.endswith(".json") or name in self._seen_reloads:
                continue
            self._seen_reloads.add(name)
            path = os.path.join(self.reload_dir, name)
            try:
                with open(path, encoding="utf-8") as fh:
                    payload = _json.load(fh)
                applied.append(self.hot_load(payload))
            except (OSError, ValueError, LiveLoadError) as exc:
                os.replace(path, path + ".rejected")
                with open(path + ".error", "w", encoding="utf-8") as fh:
                    fh.write(f"{exc}\n")
                self._say(f"rejected hot-load {name}: {exc}")
                continue
            os.replace(path, path + ".applied")
        return applied

    # ------------------------------------------------------------------ #
    # Telemetry renders (HTTP handler threads, under the lock)
    # ------------------------------------------------------------------ #
    def render_metrics(self) -> str:
        from repro.observability.export import prometheus_text, report_inputs

        with self._lock:
            inputs = report_inputs(self.system, scenario=self.spec.name)
            return prometheus_text(
                self.system.metrics,
                histograms=inputs["histograms"],
                per_source=inputs["per_source"],
                telemetry=inputs["telemetry"],
                profile=inputs["profile"])

    def render_health(self) -> Tuple[int, Dict[str, Any]]:
        with self._lock:
            health = health_snapshot(self.system, monitor=self.monitor,
                                     flight=self.flight)
            return (200 if health["status"] == "ok" else 503), health

    def render_status(self) -> Dict[str, Any]:
        with self._lock:
            return status_snapshot(self)

    def render_dashboard(self) -> str:
        from repro.observability.export import render_html_report, report_inputs

        with self._lock:
            inputs = report_inputs(self.system, scenario=self.spec.name)
            incidents = None
            if self.flight is not None and self.flight.triggered:
                trigger = self.flight.triggers[0]
                incidents = [{"reason": trigger.reason, "time": trigger.time,
                              "rows": []}]
            return render_html_report(
                f"Live — {self.spec.name} "
                f"(t={self.system.sim.now:.1f}s of {self.horizon:g}s)",
                inputs["kpi_report"],
                slo_monitor=self.monitor,
                availability_per_device=inputs["availability"]["per_device"],
                network_kinds=inputs["per_kind"],
                per_source=inputs["per_source"],
                incidents=incidents,
                telemetry=inputs["telemetry"],
                profile=inputs["profile"],
                refresh=DASHBOARD_REFRESH_S)

"""Analyzable models and verification (paper §IV, Fig. 2).

"IoT systems need formally analyzable and verifiable models to enable
reasoning, starting from the early stages of design to models@runtime."
This package provides both halves:

Design time
    * :mod:`repro.modeling.lts` -- labelled transition systems (Kripke
      structures with action-labelled transitions);
    * :mod:`repro.modeling.properties` -- a temporal property language
      (invariants, reachability, leads-to, and finite-trace LTL);
    * :mod:`repro.modeling.checker` -- an explicit-state model checker
      that returns counterexample paths;
    * :mod:`repro.modeling.dtmc` -- discrete-time Markov chains with
      probabilistic reachability / expected steps via linear solves
      (the "stochastic processes or uncertainty quantification" of §IV.B).

Runtime ("models@runtime", §VII)
    * :mod:`repro.modeling.runtime_monitor` -- LTL3-style monitors that
      evaluate the same property objects over live traces, reporting
      satisfied / violated / undetermined verdicts;
    * :mod:`repro.modeling.goals` -- KAOS-style goal models with
      obstacles, linking requirements to the components that realize them.
"""

from repro.modeling.lts import LabelledTransitionSystem, State
from repro.modeling.properties import (
    AtomicProposition,
    Always,
    And,
    Eventually,
    Implies,
    LeadsTo,
    Next,
    Not,
    Or,
    Property,
    Until,
)
from repro.modeling.checker import CheckResult, ModelChecker
from repro.modeling.dtmc import Dtmc
from repro.modeling.goals import Goal, GoalModel, GoalStatus, Obstacle
from repro.modeling.runtime_monitor import MonitorVerdict, RuntimeMonitor, TraceStateAdapter
from repro.modeling.mdp import Mdp, Transition
from repro.modeling.mining import (
    estimate_availability,
    mine_action_success_rates,
    mine_availability_dtmc,
)
from repro.modeling.space import SpatialModel, SpatialProposition

__all__ = [
    "Always",
    "And",
    "AtomicProposition",
    "CheckResult",
    "Dtmc",
    "Eventually",
    "Goal",
    "GoalModel",
    "GoalStatus",
    "Implies",
    "LabelledTransitionSystem",
    "Mdp",
    "LeadsTo",
    "ModelChecker",
    "MonitorVerdict",
    "Next",
    "Not",
    "Obstacle",
    "Or",
    "Property",
    "RuntimeMonitor",
    "SpatialModel",
    "SpatialProposition",
    "State",
    "Transition",
    "TraceStateAdapter",
    "Until",
    "estimate_availability",
    "mine_action_success_rates",
    "mine_availability_dtmc",
]

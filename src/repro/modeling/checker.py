"""Explicit-state model checking.

Implements Fig. 2's verification step: "the verification process checks
whether a given system (a facet of an IoT system model) satisfies a given
correctness specification (resilience properties)".

Supported formula shapes (on finite LTSs):

* pure state formulas -- checked in the initial state;
* ``Always f`` (invariant) -- BFS over reachable states, shortest
  counterexample path on violation;
* ``Eventually f`` (reachability) -- BFS, witness path on satisfaction;
  violation yields no finite counterexample (the whole reachable graph is
  the evidence), so the result carries the explored state count instead;
* ``Always(Eventually f)`` and ``LeadsTo(p, q)`` -- response properties,
  checked by searching for a reachable cycle (or deadlock) avoiding ``q``
  that is reachable from a ``p``-state (for LeadsTo) or from anywhere (for
  ``Always(Eventually ...)``).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Set, Tuple

from repro.modeling.lts import LabelledTransitionSystem
from repro.modeling.properties import Always, Eventually, LeadsTo, Property


@dataclass
class CheckResult:
    """Outcome of a model-checking run."""

    holds: bool
    property_repr: str
    states_explored: int
    counterexample: Optional[List[Hashable]] = None
    witness: Optional[List[Hashable]] = None
    detail: str = ""

    def __bool__(self) -> bool:
        return self.holds


class ModelChecker:
    """Checks property objects against a :class:`LabelledTransitionSystem`."""

    def __init__(self, lts: LabelledTransitionSystem) -> None:
        self.lts = lts

    def check(self, formula: Property) -> CheckResult:
        if isinstance(formula, Always):
            inner = formula.operand
            if isinstance(inner, Eventually):
                return self._check_response(None, inner.operand, repr(formula))
            if inner.is_state_formula:
                return self._check_invariant(inner, repr(formula))
            raise ValueError(f"unsupported operand under Always: {inner!r}")
        if isinstance(formula, Eventually):
            if not formula.operand.is_state_formula:
                raise ValueError(f"unsupported operand under Eventually: {formula.operand!r}")
            return self._check_reachability(formula.operand, repr(formula))
        if isinstance(formula, LeadsTo):
            return self._check_response(formula.trigger, formula.response, repr(formula))
        if formula.is_state_formula:
            holds = formula.holds_in(self.lts.initial.labels)
            return CheckResult(holds, repr(formula), 1,
                               detail="state formula evaluated in initial state")
        raise ValueError(f"unsupported formula shape: {formula!r}")

    # ------------------------------------------------------------------ #
    # Invariants: G f
    # ------------------------------------------------------------------ #
    def _check_invariant(self, state_formula: Property, label: str) -> CheckResult:
        initial = self.lts.initial.state_id
        parents: Dict[Hashable, Optional[Hashable]] = {initial: None}
        queue = deque([initial])
        explored = 0
        while queue:
            current = queue.popleft()
            explored += 1
            if not state_formula.holds_in(self.lts.state(current).labels):
                return CheckResult(
                    False, label, explored,
                    counterexample=self._path_to(parents, current),
                    detail="invariant violated",
                )
            for _, successor in self.lts.successors(current):
                if successor.state_id not in parents:
                    parents[successor.state_id] = current
                    queue.append(successor.state_id)
        return CheckResult(True, label, explored, detail="invariant holds in all reachable states")

    # ------------------------------------------------------------------ #
    # Reachability: F f
    # ------------------------------------------------------------------ #
    def _check_reachability(self, state_formula: Property, label: str) -> CheckResult:
        initial = self.lts.initial.state_id
        parents: Dict[Hashable, Optional[Hashable]] = {initial: None}
        queue = deque([initial])
        explored = 0
        while queue:
            current = queue.popleft()
            explored += 1
            if state_formula.holds_in(self.lts.state(current).labels):
                return CheckResult(
                    True, label, explored,
                    witness=self._path_to(parents, current),
                    detail="witness path found",
                )
            for _, successor in self.lts.successors(current):
                if successor.state_id not in parents:
                    parents[successor.state_id] = current
                    queue.append(successor.state_id)
        return CheckResult(False, label, explored,
                           detail="no reachable state satisfies the formula")

    # ------------------------------------------------------------------ #
    # Response: G(p -> F q)  and  G F q  (trigger None)
    # ------------------------------------------------------------------ #
    def _check_response(
        self, trigger: Optional[Property], response: Property, label: str
    ) -> CheckResult:
        """Search for a lasso (or dead end) avoiding ``response``.

        The property fails iff from some reachable state satisfying
        ``trigger`` (or any state, if trigger is None) there exists an
        infinite path -- equivalently a reachable cycle, or a deadlock
        treated as a self-loop of stutters -- along which ``response``
        never holds.
        """
        reachable = self.lts.reachable_states()
        explored = len(reachable)
        trigger_states = {
            s for s in reachable
            if trigger is None or trigger.holds_in(self.lts.state(s).labels)
        }
        if not trigger_states:
            return CheckResult(True, label, explored,
                               detail="no reachable trigger state")
        # Restrict to states where response does NOT hold; a cycle or
        # deadlock inside this sub-graph reachable from a trigger state is
        # a counterexample.
        avoid = {
            s for s in reachable
            if not response.holds_in(self.lts.state(s).labels)
        }
        # Which avoid-states are reachable from a trigger state through
        # avoid-states only?  (A trigger state where response already holds
        # discharges that occurrence immediately.)
        start = {s for s in trigger_states if s in avoid}
        seen: Set[Hashable] = set(start)
        stack = list(start)
        while stack:
            current = stack.pop()
            for _, successor in self.lts.successors(current):
                sid = successor.state_id
                if sid in avoid and sid not in seen:
                    seen.add(sid)
                    stack.append(sid)
        # Deadlock inside the avoid set = infinite stutter without response.
        for state_id in seen:
            if not self.lts.successors(state_id):
                return CheckResult(
                    False, label, explored,
                    counterexample=[state_id],
                    detail="deadlock state reachable without response",
                )
        # Cycle detection within the avoid-subgraph restricted to `seen`.
        cycle = self._find_cycle(seen)
        if cycle is not None:
            return CheckResult(
                False, label, explored, counterexample=cycle,
                detail="response-free cycle reachable from trigger",
            )
        return CheckResult(True, label, explored,
                           detail="every trigger occurrence is followed by response")

    def _find_cycle(self, nodes: Set[Hashable]) -> Optional[List[Hashable]]:
        """Find any cycle within the induced subgraph on ``nodes``."""
        WHITE, GRAY, BLACK = 0, 1, 2
        color: Dict[Hashable, int] = {n: WHITE for n in nodes}
        parent: Dict[Hashable, Optional[Hashable]] = {}
        for root in sorted(nodes, key=repr):
            if color[root] != WHITE:
                continue
            stack: List[Tuple[Hashable, int]] = [(root, 0)]
            parent[root] = None
            while stack:
                node, edge_index = stack[-1]
                if color[node] == WHITE:
                    color[node] = GRAY
                successors = [
                    s.state_id for _, s in self.lts.successors(node)
                    if s.state_id in nodes
                ]
                if edge_index < len(successors):
                    stack[-1] = (node, edge_index + 1)
                    successor = successors[edge_index]
                    if color.get(successor) == GRAY:
                        # Found a back edge: reconstruct the cycle.
                        cycle = [successor, node]
                        walker = parent.get(node)
                        while walker is not None and walker != successor:
                            cycle.append(walker)
                            walker = parent.get(walker)
                        cycle.reverse()
                        return cycle
                    if color.get(successor) == WHITE:
                        parent[successor] = node
                        stack.append((successor, 0))
                else:
                    color[node] = BLACK
                    stack.pop()
        return None

    # ------------------------------------------------------------------ #
    @staticmethod
    def _path_to(parents: Dict[Hashable, Optional[Hashable]], target: Hashable) -> List[Hashable]:
        path = [target]
        while parents[path[-1]] is not None:
            path.append(parents[path[-1]])
        path.reverse()
        return path

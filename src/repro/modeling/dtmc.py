"""Discrete-time Markov chains and probabilistic reachability.

§IV.B calls for "stochastic processes or uncertainty quantification
techniques" and "quantitative model checking".  A :class:`Dtmc` supports
the two standard quantitative queries via numpy linear solves:

* ``reachability_probability(targets)`` -- P(eventually reach target set)
  per state, solving ``x = A x + b`` on the non-target, non-doomed states;
* ``expected_steps(targets)`` -- expected hitting time where reaching is
  almost sure (infinity otherwise);
* ``bounded_reachability(targets, k)`` -- P(reach within k steps) by value
  iteration;
* ``stationary_distribution()`` -- for irreducible chains, the long-run
  state distribution (power iteration with analytic fallback).
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, Iterable, List, Optional, Set, Tuple

import numpy as np


class Dtmc:
    """A finite discrete-time Markov chain."""

    def __init__(self, name: str = "dtmc") -> None:
        self.name = name
        self._states: List[Hashable] = []
        self._index: Dict[Hashable, int] = {}
        self._rows: Dict[int, Dict[int, float]] = {}
        self._initial: Optional[int] = None

    # -- construction --------------------------------------------------------- #
    def add_state(self, state: Hashable, initial: bool = False) -> None:
        if state in self._index:
            raise ValueError(f"state {state!r} already exists")
        self._index[state] = len(self._states)
        self._states.append(state)
        self._rows[self._index[state]] = {}
        if initial:
            self._initial = self._index[state]

    def set_transition(self, src: Hashable, dst: Hashable, probability: float) -> None:
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability {probability} out of [0,1]")
        i, j = self._index[src], self._index[dst]
        self._rows[i][j] = probability

    def validate(self) -> None:
        """Check that every state's outgoing probabilities sum to 1."""
        for i, row in self._rows.items():
            total = sum(row.values())
            if not math.isclose(total, 1.0, abs_tol=1e-9):
                raise ValueError(
                    f"state {self._states[i]!r} row sums to {total}, not 1"
                )

    # -- access ---------------------------------------------------------------- #
    @property
    def states(self) -> List[Hashable]:
        return list(self._states)

    @property
    def state_count(self) -> int:
        return len(self._states)

    def transition_matrix(self) -> np.ndarray:
        n = self.state_count
        matrix = np.zeros((n, n))
        for i, row in self._rows.items():
            for j, p in row.items():
                matrix[i, j] = p
        return matrix

    # -- queries ---------------------------------------------------------------- #
    def reachability_probability(
        self, targets: Iterable[Hashable]
    ) -> Dict[Hashable, float]:
        """P(eventually reach ``targets``) from every state.

        Standard three-partition solve: states that cannot reach the
        target at all get probability 0; target states get 1; the rest
        solve the linear system ``(I - A) x = b``.
        """
        self.validate()
        target_idx = {self._index[t] for t in targets}
        n = self.state_count
        can_reach = self._backward_reachable(target_idx)
        result = np.zeros(n)
        for i in target_idx:
            result[i] = 1.0
        # Unknowns: states that can reach the target but are not targets;
        # everything else is doomed (probability 0, already set).
        unknown = sorted(can_reach - target_idx)
        if unknown:
            pos = {i: k for k, i in enumerate(unknown)}
            a = np.zeros((len(unknown), len(unknown)))
            b = np.zeros(len(unknown))
            for i in unknown:
                for j, p in self._rows[i].items():
                    if j in target_idx:
                        b[pos[i]] += p
                    elif j in pos:
                        a[pos[i], pos[j]] += p
                    # transitions to doomed states contribute 0
            x = np.linalg.solve(np.eye(len(unknown)) - a, b)
            for i in unknown:
                result[i] = float(np.clip(x[pos[i]], 0.0, 1.0))
        return {self._states[i]: float(result[i]) for i in range(n)}

    def bounded_reachability(
        self, targets: Iterable[Hashable], steps: int
    ) -> Dict[Hashable, float]:
        """P(reach ``targets`` within ``steps``) by value iteration."""
        self.validate()
        if steps < 0:
            raise ValueError("steps must be non-negative")
        target_idx = {self._index[t] for t in targets}
        n = self.state_count
        x = np.zeros(n)
        for i in target_idx:
            x[i] = 1.0
        matrix = self.transition_matrix()
        for _ in range(steps):
            x_next = matrix @ x
            for i in target_idx:
                x_next[i] = 1.0
            x = x_next
        return {self._states[i]: float(x[i]) for i in range(n)}

    def expected_steps(self, targets: Iterable[Hashable]) -> Dict[Hashable, float]:
        """Expected hitting time of ``targets``; inf where not a.s. reached."""
        self.validate()
        probabilities = self.reachability_probability(targets)
        target_idx = {self._index[t] for t in targets}
        n = self.state_count
        sure = {
            i for i in range(n)
            if math.isclose(probabilities[self._states[i]], 1.0, abs_tol=1e-9)
        }
        unknown = sorted(sure - target_idx)
        result = {s: math.inf for s in self._states}
        for i in target_idx:
            result[self._states[i]] = 0.0
        if unknown:
            pos = {i: k for k, i in enumerate(unknown)}
            a = np.zeros((len(unknown), len(unknown)))
            b = np.ones(len(unknown))
            for i in unknown:
                for j, p in self._rows[i].items():
                    if j in pos:
                        a[pos[i], pos[j]] += p
            x = np.linalg.solve(np.eye(len(unknown)) - a, b)
            for i in unknown:
                result[self._states[i]] = float(x[pos[i]])
        return result

    def stationary_distribution(self, tol: float = 1e-12) -> Dict[Hashable, float]:
        """Long-run distribution via the left-eigenvector linear system."""
        self.validate()
        matrix = self.transition_matrix()
        n = self.state_count
        # Solve pi (P - I) = 0 with sum(pi) = 1: replace one equation.
        a = (matrix.T - np.eye(n))
        a[-1, :] = 1.0
        b = np.zeros(n)
        b[-1] = 1.0
        pi = np.linalg.solve(a, b)
        if np.any(pi < -1e-8):
            raise ValueError("no valid stationary distribution (chain may be reducible)")
        pi = np.clip(pi, 0.0, None)
        pi = pi / pi.sum()
        return {self._states[i]: float(pi[i]) for i in range(n)}

    # -- helpers ------------------------------------------------------------ #
    def _backward_reachable(self, target_idx: Set[int]) -> Set[int]:
        """States from which the target set is reachable with prob > 0."""
        predecessors: Dict[int, List[int]] = {i: [] for i in range(self.state_count)}
        for i, row in self._rows.items():
            for j, p in row.items():
                if p > 0.0:
                    predecessors[j].append(i)
        seen = set(target_idx)
        frontier = list(target_idx)
        while frontier:
            current = frontier.pop()
            for predecessor in predecessors[current]:
                if predecessor not in seen:
                    seen.add(predecessor)
                    frontier.append(predecessor)
        return seen


def availability_dtmc(failure_rate: float, repair_rate: float,
                      name: str = "availability") -> Tuple[Dtmc, float]:
    """The classic two-state up/down chain, plus its analytic availability.

    Returned analytic value ``repair / (failure + repair)`` is the check
    oracle used by tests and the Fig. 2 benchmark.
    """
    if not 0.0 < failure_rate < 1.0 or not 0.0 < repair_rate < 1.0:
        raise ValueError("rates must be in (0, 1)")
    chain = Dtmc(name)
    chain.add_state("up", initial=True)
    chain.add_state("down")
    chain.set_transition("up", "down", failure_rate)
    chain.set_transition("up", "up", 1.0 - failure_rate)
    chain.set_transition("down", "up", repair_rate)
    chain.set_transition("down", "down", 1.0 - repair_rate)
    analytic = repair_rate / (failure_rate + repair_rate)
    return chain, analytic

"""KAOS-style goal models.

§IV.B: "requirements methods (e.g. goal modeling and validation) can be
applied in novel ways" -- system-wide requirements state desired
collective behaviour while devices "may have possibly conflicting goals".
A :class:`GoalModel` is an AND/OR refinement tree of :class:`Goal` nodes,
with :class:`Obstacle` nodes capturing what disruption can break; leaf
goals are assigned to components and their satisfaction is fed from
runtime monitors, propagating up the tree.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple


class GoalStatus(enum.Enum):
    SATISFIED = "satisfied"
    DENIED = "denied"
    UNKNOWN = "unknown"


class Refinement(enum.Enum):
    AND = "and"   # all children must be satisfied
    OR = "or"     # at least one child must be satisfied


@dataclass
class Goal:
    """One node in the goal tree."""

    name: str
    description: str = ""
    refinement: Refinement = Refinement.AND
    children: List[str] = field(default_factory=list)
    assigned_to: Optional[str] = None   # component realizing a leaf goal
    priority: int = 1

    @property
    def is_leaf(self) -> bool:
        return not self.children


@dataclass
class Obstacle:
    """A condition that, when active, denies the goals it obstructs."""

    name: str
    obstructs: List[str]
    description: str = ""
    active: bool = False


class GoalModel:
    """An AND/OR goal graph with obstacle propagation."""

    def __init__(self, root: str) -> None:
        self.root = root
        self._goals: Dict[str, Goal] = {}
        self._obstacles: Dict[str, Obstacle] = {}
        self._leaf_status: Dict[str, GoalStatus] = {}

    # -- construction --------------------------------------------------------- #
    def add_goal(self, goal: Goal) -> Goal:
        if goal.name in self._goals:
            raise ValueError(f"goal {goal.name!r} already exists")
        self._goals[goal.name] = goal
        if goal.is_leaf:
            self._leaf_status[goal.name] = GoalStatus.UNKNOWN
        return goal

    def refine(self, parent: str, children: List[str],
               refinement: Refinement = Refinement.AND) -> None:
        """Attach children to an existing goal (children must exist)."""
        goal = self._require(parent)
        for child in children:
            self._require(child)
        was_leaf = goal.is_leaf
        goal.children = list(children)
        goal.refinement = refinement
        if was_leaf:
            self._leaf_status.pop(parent, None)

    def add_obstacle(self, obstacle: Obstacle) -> Obstacle:
        if obstacle.name in self._obstacles:
            raise ValueError(f"obstacle {obstacle.name!r} already exists")
        for target in obstacle.obstructs:
            self._require(target)
        self._obstacles[obstacle.name] = obstacle
        return obstacle

    def _require(self, name: str) -> Goal:
        goal = self._goals.get(name)
        if goal is None:
            raise KeyError(f"unknown goal {name!r}")
        return goal

    # -- status updates ---------------------------------------------------------#
    def set_leaf_status(self, name: str, status: GoalStatus) -> None:
        goal = self._require(name)
        if not goal.is_leaf:
            raise ValueError(f"goal {name!r} is not a leaf")
        self._leaf_status[name] = status

    def set_obstacle_active(self, name: str, active: bool) -> None:
        if name not in self._obstacles:
            raise KeyError(f"unknown obstacle {name!r}")
        self._obstacles[name].active = active

    # -- evaluation -------------------------------------------------------------#
    def status(self, name: Optional[str] = None) -> GoalStatus:
        """Propagated status of a goal (default: the root)."""
        return self._evaluate(name or self.root, set())

    def _evaluate(self, name: str, visiting: Set[str]) -> GoalStatus:
        if name in visiting:
            raise ValueError(f"cycle in goal graph through {name!r}")
        goal = self._require(name)
        # Active obstacles deny the goal outright.
        for obstacle in self._obstacles.values():
            if obstacle.active and name in obstacle.obstructs:
                return GoalStatus.DENIED
        if goal.is_leaf:
            return self._leaf_status.get(name, GoalStatus.UNKNOWN)
        child_statuses = [
            self._evaluate(child, visiting | {name}) for child in goal.children
        ]
        if goal.refinement == Refinement.AND:
            if any(s == GoalStatus.DENIED for s in child_statuses):
                return GoalStatus.DENIED
            if all(s == GoalStatus.SATISFIED for s in child_statuses):
                return GoalStatus.SATISFIED
            return GoalStatus.UNKNOWN
        # OR refinement.
        if any(s == GoalStatus.SATISFIED for s in child_statuses):
            return GoalStatus.SATISFIED
        if all(s == GoalStatus.DENIED for s in child_statuses):
            return GoalStatus.DENIED
        return GoalStatus.UNKNOWN

    # -- analysis --------------------------------------------------------------- #
    def leaves(self) -> List[Goal]:
        return [g for g in self._goals.values() if g.is_leaf]

    def goals(self) -> List[Goal]:
        return [self._goals[k] for k in sorted(self._goals)]

    def obstacles(self) -> List[Obstacle]:
        return [self._obstacles[k] for k in sorted(self._obstacles)]

    def assignments(self) -> Dict[str, List[str]]:
        """component -> leaf goals assigned to it."""
        out: Dict[str, List[str]] = {}
        for goal in self.leaves():
            if goal.assigned_to is not None:
                out.setdefault(goal.assigned_to, []).append(goal.name)
        return out

    def critical_obstacles(self) -> List[Obstacle]:
        """Obstacles that, alone, would deny the root goal.

        Computed by hypothetically activating each obstacle (with all leaf
        goals satisfied) -- the goal-level single-point-of-failure
        analysis the decentralization argument (§V) rests on.
        """
        saved_status = dict(self._leaf_status)
        saved_active = {name: o.active for name, o in self._obstacles.items()}
        try:
            for leaf in self._leaf_status:
                self._leaf_status[leaf] = GoalStatus.SATISFIED
            for obstacle in self._obstacles.values():
                obstacle.active = False
            critical = []
            for name, obstacle in sorted(self._obstacles.items()):
                obstacle.active = True
                if self.status() == GoalStatus.DENIED:
                    critical.append(obstacle)
                obstacle.active = False
            return critical
        finally:
            self._leaf_status = saved_status
            for name, active in saved_active.items():
                self._obstacles[name].active = active

    def conflicting_assignments(self) -> List[Tuple[str, str, str]]:
        """(component, goal_a, goal_b) where one component carries leaf
        goals under different OR-branches of the same parent -- a simple
        conflict heuristic for the 'possibly conflicting goals' concern."""
        conflicts = []
        for goal in self.goals():
            if goal.refinement != Refinement.OR or len(goal.children) < 2:
                continue
            owners: Dict[str, str] = {}
            for child in goal.children:
                child_goal = self._goals[child]
                if child_goal.is_leaf and child_goal.assigned_to:
                    owner = child_goal.assigned_to
                    if owner in owners:
                        conflicts.append((owner, owners[owner], child))
                    else:
                        owners[owner] = child
        return conflicts

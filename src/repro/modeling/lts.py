"""Labelled transition systems.

The modeling substrate of §IV.B: states carry atomic-proposition labels
(a Kripke structure), transitions carry action names.  Builders can
construct systems explicitly, compose them in parallel (interleaving with
synchronization on shared actions -- how component models combine into a
system model), or generate them from factory functions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, Iterable, List, Optional, Set, Tuple


@dataclass(frozen=True)
class State:
    """An LTS state: an id plus its atomic-proposition labels."""

    state_id: Hashable
    labels: FrozenSet[str] = frozenset()

    def has(self, proposition: str) -> bool:
        return proposition in self.labels


class LabelledTransitionSystem:
    """A finite LTS / Kripke structure."""

    def __init__(self, name: str = "lts") -> None:
        self.name = name
        self._states: Dict[Hashable, State] = {}
        self._transitions: Dict[Hashable, List[Tuple[str, Hashable]]] = {}
        self._initial: Optional[Hashable] = None

    # -- construction --------------------------------------------------------- #
    def add_state(
        self, state_id: Hashable, labels: Iterable[str] = (), initial: bool = False
    ) -> State:
        if state_id in self._states:
            raise ValueError(f"state {state_id!r} already exists in {self.name!r}")
        state = State(state_id, frozenset(labels))
        self._states[state_id] = state
        self._transitions[state_id] = []
        if initial:
            self.set_initial(state_id)
        return state

    def set_initial(self, state_id: Hashable) -> None:
        if state_id not in self._states:
            raise KeyError(f"unknown state {state_id!r}")
        self._initial = state_id

    def add_transition(self, src: Hashable, action: str, dst: Hashable) -> None:
        for endpoint in (src, dst):
            if endpoint not in self._states:
                raise KeyError(f"unknown state {endpoint!r}")
        self._transitions[src].append((action, dst))

    # -- access ----------------------------------------------------------------#
    @property
    def initial(self) -> State:
        if self._initial is None:
            raise ValueError(f"LTS {self.name!r} has no initial state")
        return self._states[self._initial]

    def state(self, state_id: Hashable) -> State:
        return self._states[state_id]

    def has_state(self, state_id: Hashable) -> bool:
        return state_id in self._states

    @property
    def states(self) -> List[State]:
        return list(self._states.values())

    @property
    def state_count(self) -> int:
        return len(self._states)

    @property
    def transition_count(self) -> int:
        return sum(len(ts) for ts in self._transitions.values())

    def successors(self, state_id: Hashable) -> List[Tuple[str, State]]:
        return [(a, self._states[d]) for (a, d) in self._transitions.get(state_id, ())]

    def actions(self) -> Set[str]:
        return {a for ts in self._transitions.values() for (a, _) in ts}

    def reachable_states(self) -> Set[Hashable]:
        """States reachable from the initial state (BFS)."""
        seen = {self.initial.state_id}
        frontier = [self.initial.state_id]
        while frontier:
            current = frontier.pop()
            for _, successor in self.successors(current):
                if successor.state_id not in seen:
                    seen.add(successor.state_id)
                    frontier.append(successor.state_id)
        return seen

    def deadlock_states(self) -> Set[Hashable]:
        """Reachable states with no outgoing transition."""
        return {
            s for s in self.reachable_states() if not self._transitions.get(s)
        }

    # -- composition ----------------------------------------------------------- #
    def parallel(self, other: "LabelledTransitionSystem",
                 sync_actions: Optional[Set[str]] = None) -> "LabelledTransitionSystem":
        """Parallel composition, synchronizing on ``sync_actions``.

        Actions in ``sync_actions`` (default: the intersection of both
        alphabets) must fire jointly; all other actions interleave.  State
        labels are unioned.  Only the reachable product is constructed.
        """
        sync = sync_actions if sync_actions is not None else (self.actions() & other.actions())
        product = LabelledTransitionSystem(name=f"{self.name}||{other.name}")
        init = (self.initial.state_id, other.initial.state_id)
        product.add_state(
            init, self.initial.labels | other.initial.labels, initial=True
        )
        frontier = [init]
        while frontier:
            (left_id, right_id) = current = frontier.pop()
            moves: List[Tuple[str, Tuple[Hashable, Hashable]]] = []
            left_succ = self.successors(left_id)
            right_succ = other.successors(right_id)
            for action, successor in left_succ:
                if action in sync:
                    for r_action, r_successor in right_succ:
                        if r_action == action:
                            moves.append((action, (successor.state_id, r_successor.state_id)))
                else:
                    moves.append((action, (successor.state_id, right_id)))
            for action, successor in right_succ:
                if action not in sync:
                    moves.append((action, (left_id, successor.state_id)))
            for action, (next_left, next_right) in moves:
                next_state = (next_left, next_right)
                if not product.has_state(next_state):
                    labels = self.state(next_left).labels | other.state(next_right).labels
                    product.add_state(next_state, labels)
                    frontier.append(next_state)
                product.add_transition(current, action, next_state)
        return product


def build_device_lifecycle_lts(device_id: str = "device") -> LabelledTransitionSystem:
    """The canonical per-device model: up / degraded / down / recovering.

    Used in examples, the verification benchmark, and as the component
    model in parallel compositions.
    """
    lts = LabelledTransitionSystem(name=f"lifecycle:{device_id}")
    lts.add_state("up", labels={"up", "serving"}, initial=True)
    lts.add_state("degraded", labels={"up"})
    lts.add_state("down", labels={"down"})
    lts.add_state("recovering", labels={"down", "recovering"})
    lts.add_transition("up", "degrade", "degraded")
    lts.add_transition("up", "crash", "down")
    lts.add_transition("degraded", "crash", "down")
    lts.add_transition("degraded", "repair", "up")
    lts.add_transition("down", "start_recovery", "recovering")
    lts.add_transition("recovering", "recovered", "up")
    return lts


def build_chain_lts(length: int, name: str = "chain") -> LabelledTransitionSystem:
    """A linear chain of ``length`` states; scaling fixture for benchmarks."""
    if length < 1:
        raise ValueError("length must be >= 1")
    lts = LabelledTransitionSystem(name=name)
    lts.add_state(0, labels={"start"}, initial=True)
    for i in range(1, length):
        labels = {"end"} if i == length - 1 else set()
        lts.add_state(i, labels=labels)
        lts.add_transition(i - 1, "step", i)
    return lts


def build_grid_lts(width: int, height: int, name: str = "grid") -> LabelledTransitionSystem:
    """A width x height grid with right/down moves; O(w*h) states for
    checker scaling benchmarks."""
    lts = LabelledTransitionSystem(name=name)
    for x in range(width):
        for y in range(height):
            labels = set()
            if (x, y) == (0, 0):
                labels.add("start")
            if (x, y) == (width - 1, height - 1):
                labels.add("goal")
            lts.add_state((x, y), labels=labels, initial=(x, y) == (0, 0))
    for x in range(width):
        for y in range(height):
            if x + 1 < width:
                lts.add_transition((x, y), "right", (x + 1, y))
            if y + 1 < height:
                lts.add_transition((x, y), "down", (x, y + 1))
            if x + 1 >= width and y + 1 >= height:
                lts.add_transition((x, y), "stay", (x, y))
    return lts

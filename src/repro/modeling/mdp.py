"""Markov decision processes and value iteration.

§V.B: control "aims to achieve requirements satisfaction -- autonomously
-- in a changing environment", leveraging "model-based planning".  The
MDP is the standard formalism for that: states, actions with stochastic
outcomes, rewards; value iteration yields the policy maximizing expected
discounted reward.  :mod:`repro.adaptation.mdp_planner` builds small
repair MDPs on top of this solver.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Tuple


@dataclass(frozen=True)
class Transition:
    """One stochastic outcome of taking an action."""

    probability: float
    next_state: Hashable
    reward: float = 0.0


class Mdp:
    """A finite MDP; terminal states have no actions."""

    def __init__(self, name: str = "mdp", discount: float = 0.95) -> None:
        if not 0.0 < discount <= 1.0:
            raise ValueError("discount must be in (0, 1]")
        self.name = name
        self.discount = discount
        self._states: List[Hashable] = []
        self._actions: Dict[Hashable, Dict[str, List[Transition]]] = {}

    # -- construction --------------------------------------------------------- #
    def add_state(self, state: Hashable) -> None:
        if state in self._actions:
            raise ValueError(f"state {state!r} already exists")
        self._states.append(state)
        self._actions[state] = {}

    def add_action(self, state: Hashable, action: str,
                   transitions: List[Transition]) -> None:
        if state not in self._actions:
            raise KeyError(f"unknown state {state!r}")
        if action in self._actions[state]:
            raise ValueError(f"action {action!r} already defined in {state!r}")
        total = sum(t.probability for t in transitions)
        if not math.isclose(total, 1.0, abs_tol=1e-9):
            raise ValueError(
                f"action {action!r} in {state!r}: probabilities sum to {total}"
            )
        for transition in transitions:
            if transition.next_state not in self._actions:
                raise KeyError(f"unknown next state {transition.next_state!r}")
        self._actions[state][action] = list(transitions)

    # -- access ----------------------------------------------------------------#
    @property
    def states(self) -> List[Hashable]:
        return list(self._states)

    def actions_of(self, state: Hashable) -> List[str]:
        return sorted(self._actions[state])

    def is_terminal(self, state: Hashable) -> bool:
        return not self._actions[state]

    # -- solving ----------------------------------------------------------------#
    def value_iteration(
        self, tolerance: float = 1e-9, max_iterations: int = 10_000
    ) -> Tuple[Dict[Hashable, float], Dict[Hashable, Optional[str]]]:
        """Returns (state values, greedy policy).

        Terminal states have value 0 and policy None.
        """
        values: Dict[Hashable, float] = {s: 0.0 for s in self._states}
        for _ in range(max_iterations):
            delta = 0.0
            for state in self._states:
                if self.is_terminal(state):
                    continue
                best = max(
                    self._q_value(state, action, values)
                    for action in self._actions[state]
                )
                delta = max(delta, abs(best - values[state]))
                values[state] = best
            if delta < tolerance:
                break
        policy: Dict[Hashable, Optional[str]] = {}
        for state in self._states:
            if self.is_terminal(state):
                policy[state] = None
                continue
            policy[state] = max(
                self.actions_of(state),
                key=lambda a: self._q_value(state, a, values),
            )
        return values, policy

    def _q_value(self, state: Hashable, action: str,
                 values: Dict[Hashable, float]) -> float:
        return sum(
            t.probability * (t.reward + self.discount * values[t.next_state])
            for t in self._actions[state][action]
        )

    def q_values(self, state: Hashable,
                 values: Dict[Hashable, float]) -> Dict[str, float]:
        """Per-action expected values given a value function."""
        return {
            action: self._q_value(state, action, values)
            for action in self.actions_of(state)
        }

"""Model mining from runtime traces.

§IV.B: runtime assurance is "naturally a port to runtime of design time
representations, enriched with validation techniques suitable for system
operation".  This module closes that loop in the other direction: it
*extracts* quantitative models from observed behaviour --

* :func:`mine_availability_dtmc` -- estimate a per-device up/down DTMC
  from the trace's fault/recovery events (failure and repair rates from
  sojourn times), ready for the quantitative queries of
  :mod:`repro.modeling.dtmc`;
* :func:`mine_action_success_rates` -- estimate adaptation-action success
  probabilities from executor outcomes, feeding the
  :class:`~repro.adaptation.mdp_planner.RepairModel`'s parameters.

Together: observe, mine, verify, re-plan -- models@runtime with the
model itself kept honest by the data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.modeling.dtmc import Dtmc
from repro.simulation.trace import TraceLog


@dataclass(frozen=True)
class AvailabilityEstimate:
    """Per-device availability statistics mined from a trace."""

    subject: str
    up_time: float
    down_time: float
    failures: int
    repairs: int
    mean_time_to_failure: Optional[float]
    mean_time_to_repair: Optional[float]

    @property
    def availability(self) -> float:
        total = self.up_time + self.down_time
        return self.up_time / total if total > 0 else 1.0


def estimate_availability(
    trace: TraceLog,
    subject: str,
    horizon: float,
    fault_names: Tuple[str, ...] = ("crash", "battery-depleted"),
    recovery_names: Tuple[str, ...] = ("device-recover",),
) -> AvailabilityEstimate:
    """Walk the subject's fault/recovery events into up/down sojourns."""
    events = [
        e for e in trace.events
        if e.subject == subject and (
            (e.category == "fault" and e.name in fault_names)
            or (e.category == "recovery" and e.name in recovery_names)
        )
    ]
    up_time = down_time = 0.0
    failures = repairs = 0
    up_sojourns: List[float] = []
    down_sojourns: List[float] = []
    state_up = True
    last_change = 0.0
    for event in events:
        if event.category == "fault" and state_up:
            up_time += event.time - last_change
            up_sojourns.append(event.time - last_change)
            failures += 1
            state_up = False
            last_change = event.time
        elif event.category == "recovery" and not state_up:
            down_time += event.time - last_change
            down_sojourns.append(event.time - last_change)
            repairs += 1
            state_up = True
            last_change = event.time
    if state_up:
        up_time += horizon - last_change
    else:
        down_time += horizon - last_change
    return AvailabilityEstimate(
        subject=subject,
        up_time=up_time,
        down_time=down_time,
        failures=failures,
        repairs=repairs,
        mean_time_to_failure=(sum(up_sojourns) / len(up_sojourns)
                              if up_sojourns else None),
        mean_time_to_repair=(sum(down_sojourns) / len(down_sojourns)
                             if down_sojourns else None),
    )


def mine_availability_dtmc(
    trace: TraceLog,
    subject: str,
    horizon: float,
    step: float = 1.0,
    **kwargs,
) -> Tuple[Dtmc, AvailabilityEstimate]:
    """Build an up/down DTMC with per-``step`` transition probabilities
    estimated from the subject's mean sojourn times.

    Returns the chain plus the raw estimate.  Devices that never failed
    get a degenerate always-up chain.
    """
    estimate = estimate_availability(trace, subject, horizon, **kwargs)
    chain = Dtmc(f"mined:{subject}")
    chain.add_state("up", initial=True)
    chain.add_state("down")
    mttf = estimate.mean_time_to_failure
    mttr = estimate.mean_time_to_repair
    failure_probability = min(1.0, step / mttf) if mttf and mttf > 0 else 0.0
    repair_probability = min(1.0, step / mttr) if mttr and mttr > 0 else 1.0
    chain.set_transition("up", "down", failure_probability)
    chain.set_transition("up", "up", 1.0 - failure_probability)
    chain.set_transition("down", "up", repair_probability)
    chain.set_transition("down", "down", 1.0 - repair_probability)
    return chain, estimate


def mine_action_success_rates(trace: TraceLog) -> Dict[str, Tuple[int, int, float]]:
    """Per action verb: (successes, failures, rate) from executor events.

    Action descriptions start with their verb ("restart ...",
    "migrate ...", "reboot ..."); the executor traces ``action-success`` /
    ``action-failure`` per attempt.
    """
    counters: Dict[str, List[int]] = {}
    for event in trace.events:
        if event.category != "adaptation":
            continue
        description = str(event.attrs.get("action", ""))
        verb = description.split(" ", 1)[0] if description else "unknown"
        bucket = counters.setdefault(verb, [0, 0])
        if event.name == "action-success":
            bucket[0] += 1
        elif event.name == "action-failure":
            bucket[1] += 1
    out: Dict[str, Tuple[int, int, float]] = {}
    for verb, (successes, failures) in sorted(counters.items()):
        total = successes + failures
        out[verb] = (successes, failures,
                     successes / total if total else 0.0)
    return out

"""Temporal property language.

A small, composable property algebra over atomic propositions, with two
evaluation targets:

* the explicit-state :class:`~repro.modeling.checker.ModelChecker`
  supports the CTL-ish fragment that covers the paper's resilience
  properties: invariants (``Always p``), reachability (``Eventually p``),
  and response (``LeadsTo(p, q)``, "every disruption is eventually
  followed by recovery");
* the :class:`~repro.modeling.runtime_monitor.RuntimeMonitor` evaluates
  the same formulas over finite traces with three-valued (LTL3-style)
  verdicts.

Formulas are built from :class:`AtomicProposition` and the combinators
below; ``prop("up") >> prop("serving")`` reads as implication.
"""

from __future__ import annotations

from typing import FrozenSet


class Property:
    """Base class: a state/trace formula."""

    def holds_in(self, labels: FrozenSet[str]) -> bool:
        """State-formula evaluation (propositional fragment only)."""
        raise NotImplementedError(f"{type(self).__name__} is not a state formula")

    @property
    def is_state_formula(self) -> bool:
        return False

    # Combinator sugar.
    def __and__(self, other: "Property") -> "And":
        return And(self, other)

    def __or__(self, other: "Property") -> "Or":
        return Or(self, other)

    def __invert__(self) -> "Not":
        return Not(self)

    def __rshift__(self, other: "Property") -> "Implies":
        return Implies(self, other)


class AtomicProposition(Property):
    """A named proposition, true in states labelled with it."""

    def __init__(self, name: str) -> None:
        self.name = name

    def holds_in(self, labels: FrozenSet[str]) -> bool:
        return self.name in labels

    @property
    def is_state_formula(self) -> bool:
        return True

    def __repr__(self) -> str:
        return self.name


def prop(name: str) -> AtomicProposition:
    """Shorthand constructor: ``prop("up")``."""
    return AtomicProposition(name)


class Not(Property):
    def __init__(self, operand: Property) -> None:
        self.operand = operand

    def holds_in(self, labels: FrozenSet[str]) -> bool:
        return not self.operand.holds_in(labels)

    @property
    def is_state_formula(self) -> bool:
        return self.operand.is_state_formula

    def __repr__(self) -> str:
        return f"!({self.operand!r})"


class _Binary(Property):
    symbol = "?"

    def __init__(self, left: Property, right: Property) -> None:
        self.left = left
        self.right = right

    @property
    def is_state_formula(self) -> bool:
        return self.left.is_state_formula and self.right.is_state_formula

    def __repr__(self) -> str:
        return f"({self.left!r} {self.symbol} {self.right!r})"


class And(_Binary):
    symbol = "&"

    def holds_in(self, labels: FrozenSet[str]) -> bool:
        return self.left.holds_in(labels) and self.right.holds_in(labels)


class Or(_Binary):
    symbol = "|"

    def holds_in(self, labels: FrozenSet[str]) -> bool:
        return self.left.holds_in(labels) or self.right.holds_in(labels)


class Implies(_Binary):
    symbol = "->"

    def holds_in(self, labels: FrozenSet[str]) -> bool:
        return (not self.left.holds_in(labels)) or self.right.holds_in(labels)


class Always(Property):
    """G f: f holds in every reachable state / at every trace position."""

    def __init__(self, operand: Property) -> None:
        self.operand = operand

    def __repr__(self) -> str:
        return f"G({self.operand!r})"


class Eventually(Property):
    """F f: some reachable state / trace position satisfies f."""

    def __init__(self, operand: Property) -> None:
        self.operand = operand

    def __repr__(self) -> str:
        return f"F({self.operand!r})"


class Next(Property):
    """X f (runtime monitoring only)."""

    def __init__(self, operand: Property) -> None:
        self.operand = operand

    def __repr__(self) -> str:
        return f"X({self.operand!r})"


class Until(Property):
    """f U g (runtime monitoring only): f holds until g does, and g occurs."""

    def __init__(self, left: Property, right: Property) -> None:
        self.left = left
        self.right = right

    def __repr__(self) -> str:
        return f"({self.left!r} U {self.right!r})"


class LeadsTo(Property):
    """G (p -> F q): every p-state is eventually followed by a q-state.

    The paper's resilience pattern in one operator: "persistence of
    requirements satisfaction when facing change" means every disruption
    (p) leads to recovery (q).
    """

    def __init__(self, trigger: Property, response: Property) -> None:
        if not trigger.is_state_formula or not response.is_state_formula:
            raise ValueError("LeadsTo requires state-formula operands")
        self.trigger = trigger
        self.response = response

    def __repr__(self) -> str:
        return f"({self.trigger!r} ~> {self.response!r})"

"""Runtime monitoring: models@runtime verdicts over live traces.

§VII: "continuous monitoring of IoT systems for checking the conformance
of their behavior with respect to requirements".  The monitor consumes a
stream of *observation states* (each a set of atomic propositions) and
maintains a three-valued verdict per property, LTL3-style:

* ``SATISFIED`` -- every extension of the observed prefix satisfies the
  property (e.g. ``Eventually p`` once p has occurred);
* ``VIOLATED`` -- no extension can satisfy it (e.g. ``Always p`` after a
  !p observation);
* ``UNDETERMINED`` -- the prefix decides nothing yet.

Monitors are written against the same :mod:`repro.modeling.properties`
objects the design-time checker uses -- the "port to runtime of design
time representations" §IV.B describes.
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.modeling.properties import (
    Always,
    Eventually,
    LeadsTo,
    Next,
    Property,
    Until,
)
from repro.simulation.trace import TraceEvent, TraceLog


class MonitorVerdict(enum.Enum):
    SATISFIED = "satisfied"
    VIOLATED = "violated"
    UNDETERMINED = "undetermined"


class _PropertyState:
    """Incremental evaluation state for one property."""

    def __init__(self, formula: Property) -> None:
        self.formula = formula
        self.verdict = MonitorVerdict.UNDETERMINED
        # LeadsTo bookkeeping: number of un-responded trigger occurrences
        # and the time of the oldest one (for latency reporting).
        self.pending_triggers = 0
        self.oldest_pending: Optional[float] = None
        self.response_latencies: List[float] = []
        # Next bookkeeping.
        self.position = 0
        # Until bookkeeping.
        self.until_alive = True

    def observe(self, labels: FrozenSet[str], time: float) -> MonitorVerdict:
        formula = self.formula
        if self.verdict in (MonitorVerdict.SATISFIED, MonitorVerdict.VIOLATED) \
                and not isinstance(formula, LeadsTo):
            self.position += 1
            return self.verdict

        if isinstance(formula, Always):
            if not formula.operand.is_state_formula:
                raise ValueError("runtime Always supports state-formula operands")
            if not formula.operand.holds_in(labels):
                self.verdict = MonitorVerdict.VIOLATED
        elif isinstance(formula, Eventually):
            if not formula.operand.is_state_formula:
                raise ValueError("runtime Eventually supports state-formula operands")
            if formula.operand.holds_in(labels):
                self.verdict = MonitorVerdict.SATISFIED
        elif isinstance(formula, Next):
            if self.position == 1:
                if not formula.operand.is_state_formula:
                    raise ValueError("runtime Next supports state-formula operands")
                self.verdict = (
                    MonitorVerdict.SATISFIED
                    if formula.operand.holds_in(labels)
                    else MonitorVerdict.VIOLATED
                )
        elif isinstance(formula, Until):
            if not (formula.left.is_state_formula and formula.right.is_state_formula):
                raise ValueError("runtime Until supports state-formula operands")
            if self.until_alive:
                if formula.right.holds_in(labels):
                    self.verdict = MonitorVerdict.SATISFIED
                elif not formula.left.holds_in(labels):
                    self.verdict = MonitorVerdict.VIOLATED
                    self.until_alive = False
        elif isinstance(formula, LeadsTo):
            # Response first: one response discharges ALL pending triggers.
            if formula.response.holds_in(labels):
                if self.pending_triggers > 0 and self.oldest_pending is not None:
                    self.response_latencies.append(time - self.oldest_pending)
                self.pending_triggers = 0
                self.oldest_pending = None
            if formula.trigger.holds_in(labels) and not formula.response.holds_in(labels):
                self.pending_triggers += 1
                if self.oldest_pending is None:
                    self.oldest_pending = time
            # LeadsTo on finite traces: never SATISFIED definitively;
            # "currently violated" iff triggers are pending.
            self.verdict = MonitorVerdict.UNDETERMINED
        elif formula.is_state_formula:
            self.verdict = (
                MonitorVerdict.SATISFIED
                if formula.holds_in(labels)
                else MonitorVerdict.VIOLATED
            )
        else:
            raise ValueError(f"unsupported runtime formula: {formula!r}")
        self.position += 1
        return self.verdict

    def final_verdict(self) -> MonitorVerdict:
        """Verdict at end-of-trace (finite-trace semantics)."""
        formula = self.formula
        if isinstance(formula, LeadsTo):
            return (
                MonitorVerdict.VIOLATED
                if self.pending_triggers > 0
                else MonitorVerdict.SATISFIED
            )
        if self.verdict != MonitorVerdict.UNDETERMINED:
            return self.verdict
        if isinstance(formula, Always):
            return MonitorVerdict.SATISFIED     # never violated on the prefix
        if isinstance(formula, (Eventually, Until)):
            return MonitorVerdict.VIOLATED      # awaited event never came
        return self.verdict


class RuntimeMonitor:
    """Evaluates a set of named properties over an observation stream."""

    def __init__(self) -> None:
        self._properties: Dict[str, _PropertyState] = {}
        self._observations = 0
        self.violation_times: Dict[str, List[float]] = {}

    def watch(self, name: str, formula: Property) -> None:
        if name in self._properties:
            raise ValueError(f"property {name!r} already watched")
        self._properties[name] = _PropertyState(formula)
        self.violation_times[name] = []

    def observe(self, labels: Iterable[str], time: float) -> Dict[str, MonitorVerdict]:
        """Feed one observation state; returns current verdicts."""
        frozen = frozenset(labels)
        self._observations += 1
        verdicts = {}
        for name, state in self._properties.items():
            before = state.verdict
            verdict = state.observe(frozen, time)
            if verdict == MonitorVerdict.VIOLATED and before != MonitorVerdict.VIOLATED:
                self.violation_times[name].append(time)
            verdicts[name] = verdict
        return verdicts

    def verdict(self, name: str) -> MonitorVerdict:
        return self._properties[name].verdict

    def final_verdicts(self) -> Dict[str, MonitorVerdict]:
        return {name: s.final_verdict() for name, s in self._properties.items()}

    def response_latencies(self, name: str) -> List[float]:
        """For LeadsTo properties: observed trigger->response delays."""
        return list(self._properties[name].response_latencies)

    def pending_triggers(self, name: str) -> int:
        return self._properties[name].pending_triggers

    @property
    def observation_count(self) -> int:
        return self._observations


class TraceStateAdapter:
    """Derives observation states from a :class:`TraceLog` event stream.

    Maintains a set of propositions toggled by trace events: each rule
    maps an event pattern to propositions to add/remove.  Subscribing the
    adapter to a live trace turns the raw event log into the monitored
    state stream -- the glue between the simulator and models@runtime.
    """

    def __init__(self, monitor: RuntimeMonitor) -> None:
        self.monitor = monitor
        self._current: Set[str] = set()
        self._rules: List[Tuple[Optional[str], Optional[str], Set[str], Set[str]]] = []

    def rule(
        self,
        category: Optional[str] = None,
        name: Optional[str] = None,
        add: Iterable[str] = (),
        remove: Iterable[str] = (),
    ) -> "TraceStateAdapter":
        """On events matching (category, name): add/remove propositions."""
        self._rules.append((category, name, set(add), set(remove)))
        return self

    def set_initial(self, labels: Iterable[str]) -> "TraceStateAdapter":
        self._current = set(labels)
        return self

    @property
    def current_labels(self) -> Set[str]:
        return set(self._current)

    def attach(self, trace: TraceLog) -> Callable[[], None]:
        """Subscribe to a live trace; returns the unsubscribe function."""
        return trace.subscribe(self._on_event)

    def _on_event(self, event: TraceEvent) -> None:
        changed = False
        for category, name, add, remove in self._rules:
            if event.matches(category=category, name=name):
                before = set(self._current)
                self._current |= add
                self._current -= remove
                changed = changed or before != self._current
        if changed:
            self.monitor.observe(self._current, event.time)

    def replay(self, trace: TraceLog) -> None:
        """Feed a completed trace through the rules (offline analysis)."""
        for event in trace:
            self._on_event(event)

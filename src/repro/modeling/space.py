"""Spatial environment models.

§VII.B: "As devices are often deployed in wide physical spaces, the
spatial aspect (and how locality affects the system) is significant", and
§IV calls for "a view of the system's environment as a composite model".
This module provides that composite spatial view:

* a hierarchy of *places* (containment: city > district > building > room);
* an adjacency relation among places (physical connectivity);
* entities (devices, people) located at places, moving at runtime.

Queries cover the paper's locality reasoning: which entities are within a
place (transitively), hop distance between places, and *coverage*
properties ("every sensor is within k hops of a controller") -- evaluated
either ad hoc or compiled into atomic propositions for the runtime
monitor, which is how spatial requirements become checkable resilience
properties.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

import networkx as nx


class SpatialModel:
    """A composite model of physical space and located entities."""

    def __init__(self) -> None:
        self._parent: Dict[str, Optional[str]] = {}
        self._adjacency = nx.Graph()
        self._location: Dict[str, str] = {}   # entity -> place
        self._moves: List[Tuple[float, str, str, str]] = []

    # -- places ------------------------------------------------------------- #
    def add_place(self, place: str, parent: Optional[str] = None) -> None:
        if place in self._parent:
            raise ValueError(f"place {place!r} already exists")
        if parent is not None and parent not in self._parent:
            raise KeyError(f"unknown parent place {parent!r}")
        self._parent[place] = parent
        self._adjacency.add_node(place)

    def connect(self, a: str, b: str) -> None:
        """Declare two places physically adjacent (door, road, link)."""
        for place in (a, b):
            if place not in self._parent:
                raise KeyError(f"unknown place {place!r}")
        self._adjacency.add_edge(a, b)

    def has_place(self, place: str) -> bool:
        return place in self._parent

    @property
    def places(self) -> List[str]:
        return sorted(self._parent)

    def parent_of(self, place: str) -> Optional[str]:
        return self._parent[place]

    def ancestors(self, place: str) -> List[str]:
        out = []
        current = self._parent.get(place)
        while current is not None:
            out.append(current)
            current = self._parent.get(current)
        return out

    def contains(self, outer: str, inner: str) -> bool:
        """True if ``inner`` is (transitively) inside ``outer``."""
        return outer == inner or outer in self.ancestors(inner)

    def children_of(self, place: str) -> List[str]:
        return sorted(p for p, parent in self._parent.items() if parent == place)

    # -- entities -------------------------------------------------------------- #
    def place_entity(self, entity: str, place: str, time: float = 0.0) -> None:
        if place not in self._parent:
            raise KeyError(f"unknown place {place!r}")
        previous = self._location.get(entity)
        self._location[entity] = place
        if previous is not None and previous != place:
            self._moves.append((time, entity, previous, place))

    def location_of(self, entity: str) -> Optional[str]:
        return self._location.get(entity)

    def entities_at(self, place: str, transitive: bool = True) -> List[str]:
        """Entities located at ``place`` (or inside it, transitively)."""
        if transitive:
            return sorted(
                e for e, p in self._location.items() if self.contains(place, p)
            )
        return sorted(e for e, p in self._location.items() if p == place)

    @property
    def entities(self) -> List[str]:
        return sorted(self._location)

    @property
    def movement_log(self) -> List[Tuple[float, str, str, str]]:
        return list(self._moves)

    # -- spatial queries ---------------------------------------------------------#
    def hop_distance(self, a: str, b: str) -> Optional[int]:
        """Shortest adjacency distance between places; None if disconnected."""
        if a == b:
            return 0
        try:
            return nx.shortest_path_length(self._adjacency, a, b)
        except (nx.NetworkXNoPath, nx.NodeNotFound):
            return None

    def entity_distance(self, entity_a: str, entity_b: str) -> Optional[int]:
        place_a = self._location.get(entity_a)
        place_b = self._location.get(entity_b)
        if place_a is None or place_b is None:
            return None
        return self.hop_distance(place_a, place_b)

    def within_hops(self, place: str, hops: int) -> Set[str]:
        """Places reachable from ``place`` in at most ``hops`` steps."""
        if place not in self._parent:
            raise KeyError(f"unknown place {place!r}")
        seen = {place}
        frontier = deque([(place, 0)])
        while frontier:
            current, depth = frontier.popleft()
            if depth == hops:
                continue
            for neighbor in self._adjacency.neighbors(current):
                if neighbor not in seen:
                    seen.add(neighbor)
                    frontier.append((neighbor, depth + 1))
        return seen

    def covered(
        self,
        targets: Iterable[str],
        guardians: Iterable[str],
        max_hops: int,
    ) -> Tuple[bool, List[str]]:
        """Coverage check: is every target entity within ``max_hops`` of
        some guardian entity?  Returns (ok, uncovered targets) -- the
        paper's "edge responsible for devices within its local scope"
        stated spatially."""
        guardian_places = {
            self._location[g] for g in guardians if g in self._location
        }
        uncovered = []
        for target in targets:
            place = self._location.get(target)
            if place is None:
                uncovered.append(target)
                continue
            reachable = self.within_hops(place, max_hops)
            if not (reachable & guardian_places):
                uncovered.append(target)
        return (not uncovered, uncovered)

    # -- monitor integration ----------------------------------------------------- #
    def proposition(
        self,
        name: str,
        predicate: Callable[["SpatialModel"], bool],
    ) -> "SpatialProposition":
        """Wrap a spatial predicate as a named proposition source."""
        return SpatialProposition(name, self, predicate)


class SpatialProposition:
    """A named, re-evaluable spatial predicate.

    ``current_labels(props)`` evaluates each proposition and returns the
    set of names currently true -- feed it to
    :meth:`repro.modeling.runtime_monitor.RuntimeMonitor.observe` to make
    spatial requirements runtime-monitorable.
    """

    def __init__(self, name: str, model: SpatialModel,
                 predicate: Callable[[SpatialModel], bool]) -> None:
        self.name = name
        self.model = model
        self.predicate = predicate

    def holds(self) -> bool:
        return self.predicate(self.model)


def current_labels(propositions: Iterable[SpatialProposition]) -> Set[str]:
    """Names of all currently-true spatial propositions."""
    return {p.name for p in propositions if p.holds()}


def build_city_space(n_districts: int, buildings_per_district: int) -> SpatialModel:
    """A canonical city hierarchy with a road ring between districts."""
    model = SpatialModel()
    model.add_place("city")
    districts = []
    for d in range(n_districts):
        district = f"district{d}"
        model.add_place(district, parent="city")
        districts.append(district)
        for b in range(buildings_per_district):
            building = f"district{d}/building{b}"
            model.add_place(building, parent=district)
            model.connect(district, building)
    for i in range(len(districts)):
        model.connect(districts[i], districts[(i + 1) % len(districts)])
    return model

"""Simulated network substrate.

Models the communication fabric of Figure 1's landscape: device-to-gateway
wireless links, gateway/edge LAN links, and edge/cloud WAN links, each with
its own latency, jitter, bandwidth and loss characteristics.  Partitions --
the paper's "connectivity to cloud control structures may not be
persistent" -- are first-class (:class:`~repro.network.partition.PartitionManager`).
"""

from repro.network.link import LatencyModel, Link, LinkProfile, LINK_PROFILES
from repro.network.topology import Topology
from repro.network.transport import Message, Network, NetworkStats
from repro.network.partition import PartitionManager

__all__ = [
    "LatencyModel",
    "Link",
    "LinkProfile",
    "LINK_PROFILES",
    "Message",
    "Network",
    "NetworkStats",
    "PartitionManager",
    "Topology",
]

"""Links and latency models.

Latency figures are calibrated to typical magnitudes (DESIGN.md §5): a
low-power wireless hop is milliseconds, a LAN hop sub-millisecond to a few
milliseconds, a WAN/cloud round trip tens to hundreds of milliseconds.
Only these *relative* magnitudes matter for the experiments -- they are
what make "edge-local beats cloud round-trip" (Fig. 1/Fig. 5 experiments)
meaningful.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class LinkProfile:
    """Static characteristics of a class of link.

    Attributes
    ----------
    base_latency:
        One-way propagation+processing latency in seconds.
    jitter:
        Uniform jitter amplitude in seconds (latency drawn from
        ``base_latency +- jitter``).
    loss_rate:
        Independent per-message drop probability in [0, 1].
    bandwidth:
        Bytes per second; serialization delay is ``size / bandwidth``.
    """

    name: str
    base_latency: float
    jitter: float = 0.0
    loss_rate: float = 0.0
    bandwidth: float = 1e9

    def __post_init__(self) -> None:
        if self.base_latency < 0:
            raise ValueError(f"negative base latency on {self.name!r}")
        if not 0.0 <= self.loss_rate <= 1.0:
            raise ValueError(f"loss rate {self.loss_rate} out of [0,1] on {self.name!r}")
        if self.bandwidth <= 0:
            raise ValueError(f"non-positive bandwidth on {self.name!r}")
        if self.jitter < 0 or self.jitter > self.base_latency:
            raise ValueError(
                f"jitter {self.jitter} must be within [0, base_latency] on {self.name!r}"
            )


#: Calibrated profiles for the link classes in the Fig. 1 landscape.
LINK_PROFILES: Dict[str, LinkProfile] = {
    # Low-power wireless sensor uplink (e.g. BLE/802.15.4 hop).
    "wireless": LinkProfile("wireless", base_latency=0.008, jitter=0.004, loss_rate=0.01,
                            bandwidth=31_250.0),
    # Local wired/WiFi LAN between gateways, edge nodes, cloudlets.
    "lan": LinkProfile("lan", base_latency=0.002, jitter=0.001, loss_rate=0.0005,
                       bandwidth=12_500_000.0),
    # Metro link from an edge site to a regional aggregation point.
    "metro": LinkProfile("metro", base_latency=0.010, jitter=0.003, loss_rate=0.0005,
                         bandwidth=12_500_000.0),
    # WAN link to a remote cloud region.
    "wan": LinkProfile("wan", base_latency=0.060, jitter=0.020, loss_rate=0.002,
                       bandwidth=125_000_000.0),
    # Cellular uplink for mobile devices.
    "cellular": LinkProfile("cellular", base_latency=0.045, jitter=0.025, loss_rate=0.01,
                            bandwidth=1_250_000.0),
    # Ideal zero-ish link for co-located components (loopback).
    "local": LinkProfile("local", base_latency=0.0001, jitter=0.0, loss_rate=0.0,
                         bandwidth=1e9),
}


class LatencyModel:
    """Draws per-message latency for a profile from a seeded stream."""

    def __init__(self, profile: LinkProfile, rng: random.Random) -> None:
        self.profile = profile
        self._rng = rng
        # Multiplicative degradation applied by fault injection (latency
        # spikes): 1.0 is nominal.
        self.degradation = 1.0

    def sample_latency(self, size_bytes: int = 0) -> float:
        jitter = self._rng.uniform(-self.profile.jitter, self.profile.jitter)
        serialization = size_bytes / self.profile.bandwidth
        return max(0.0, (self.profile.base_latency + jitter) * self.degradation + serialization)

    def sample_loss(self) -> bool:
        if self.profile.loss_rate == 0.0:
            return False
        return self._rng.random() < self.profile.loss_rate


class Link:
    """A bidirectional link between two nodes.

    Links can be administratively downed (partition/fault injection) and
    degraded (latency spikes).  Message delivery consults :attr:`up` and the
    latency model at send time.
    """

    def __init__(self, a: str, b: str, profile: LinkProfile, rng: random.Random) -> None:
        if a == b:
            raise ValueError(f"self-link on node {a!r}")
        self.a = a
        self.b = b
        self.profile = profile
        self.model = LatencyModel(profile, rng)
        self.up = True

    @property
    def endpoints(self) -> frozenset:
        return frozenset((self.a, self.b))

    def other(self, node: str) -> str:
        if node == self.a:
            return self.b
        if node == self.b:
            return self.a
        raise ValueError(f"node {node!r} not on link {self.a!r}-{self.b!r}")

    def set_up(self, up: bool) -> None:
        self.up = up

    def set_degradation(self, factor: float) -> None:
        """Multiply latency by ``factor`` (fault injection hook)."""
        if factor < 1.0:
            raise ValueError(f"degradation factor {factor} < 1.0")
        self.model.degradation = factor

    def key(self) -> str:
        lo, hi = sorted((self.a, self.b))
        return f"{lo}--{hi}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "up" if self.up else "down"
        return f"Link({self.a!r}<->{self.b!r}, {self.profile.name}, {state})"

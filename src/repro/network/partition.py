"""Network partitions.

The paper repeatedly singles out non-persistent connectivity to cloud
control structures as a defining IoT disruption (§I, §II, §VII).  The
:class:`PartitionManager` severs and heals groups of links, emitting trace
events so that resilience assessment can attribute requirement violations
to the disruption windows that caused them.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.network.link import Link
from repro.network.topology import Topology
from repro.observability.spans import Span, SpanRecorder
from repro.simulation.kernel import Simulator
from repro.simulation.trace import TraceLog


class PartitionManager:
    """Creates, tracks and heals named partitions on a topology."""

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        trace: Optional[TraceLog] = None,
        spans: Optional[SpanRecorder] = None,
    ) -> None:
        self.sim = sim
        self.topology = topology
        self.trace = trace
        self.spans = spans
        self._active: Dict[str, List[Link]] = {}
        self._spans_by_name: Dict[str, Span] = {}

    @property
    def active_partitions(self) -> List[str]:
        return sorted(self._active)

    def is_active(self, name: str) -> bool:
        return name in self._active

    # -- cut styles -------------------------------------------------------- #
    def isolate_node(self, node: str, name: Optional[str] = None) -> str:
        """Down every link incident to ``node``."""
        links = [
            self.topology.link_between(node, n)
            for n in self.topology.neighbors(node)
        ]
        return self._cut(name or f"isolate:{node}", [l for l in links if l is not None and l.up])

    def cut_between(self, group_a: Set[str], group_b: Set[str], name: Optional[str] = None) -> str:
        """Down all links crossing between the two node groups."""
        overlapping = group_a & group_b
        if overlapping:
            raise ValueError(f"groups overlap on {sorted(overlapping)}")
        links = [
            link
            for link in self.topology.links
            if link.up
            and ((link.a in group_a and link.b in group_b) or (link.a in group_b and link.b in group_a))
        ]
        return self._cut(name or "cut", links)

    def cut_links(self, links: List[Link], name: Optional[str] = None) -> str:
        """Down an explicit set of links."""
        return self._cut(name or "cut-links", [l for l in links if l.up])

    def disconnect_cloud(self, cloud_node: str, name: Optional[str] = None) -> str:
        """The canonical disruption: sever the cloud from everything."""
        return self.isolate_node(cloud_node, name=name or "cloud-outage")

    def _cut(self, name: str, links: List[Link]) -> str:
        if name in self._active:
            raise ValueError(f"partition {name!r} already active")
        for link in links:
            link.set_up(False)
        self._active[name] = links
        if self.spans is not None:
            # Parented to whatever caused the cut (a fault-injection span
            # when driven through the injector); spans the whole outage.
            self._spans_by_name[name] = self.spans.start(
                f"partition:{name}", "fault", self.sim.now,
                links=[l.key() for l in links],
            )
        if self.trace is not None:
            self.trace.emit(
                self.sim.now,
                "fault",
                "partition-start",
                subject=name,
                links=[l.key() for l in links],
            )
        return name

    # -- healing ----------------------------------------------------------- #
    def heal(self, name: str) -> None:
        """Restore all links downed by the named partition."""
        links = self._active.pop(name, None)
        if links is None:
            raise KeyError(f"no active partition {name!r}")
        for link in links:
            link.set_up(True)
        if self.spans is not None:
            span = self._spans_by_name.pop(name, None)
            if span is not None:
                self.spans.record(f"heal:{name}", "recovery", self.sim.now,
                                  parent=span)
                self.spans.finish(span, self.sim.now, status="healed")
        if self.trace is not None:
            self.trace.emit(
                self.sim.now,
                "recovery",
                "partition-heal",
                subject=name,
                links=[l.key() for l in links],
            )

    def heal_all(self) -> None:
        for name in list(self._active):
            self.heal(name)

    # -- scheduled windows ----------------------------------------------- #
    def schedule_outage(
        self,
        start: float,
        duration: float,
        node: str,
        name: Optional[str] = None,
    ) -> str:
        """Isolate ``node`` during ``[start, start+duration)``."""
        outage_name = name or f"outage:{node}@{start}"
        self.sim.schedule_at(
            start, lambda _s: self.isolate_node(node, name=outage_name),
            label=f"partition:{outage_name}",
        )
        self.sim.schedule_at(
            start + duration, lambda _s: self.heal(outage_name),
            label=f"heal:{outage_name}",
        )
        return outage_name

"""Network topologies.

A :class:`Topology` is a networkx graph of node ids plus a :class:`Link`
per edge.  Builders construct the archetypal IoT layouts of Figure 1: a
cloud region, edge sites with their local device clusters, and the links
between the tiers.  Routing is shortest-path by expected latency, restricted
to links that are currently up.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import networkx as nx

from repro.network.link import LINK_PROFILES, Link, LinkProfile


class Topology:
    """A mutable graph of nodes and latency-annotated links."""

    def __init__(self, rng: Optional[random.Random] = None) -> None:
        self.graph = nx.Graph()
        self._rng = rng if rng is not None else random.Random(0)
        self._links: Dict[str, Link] = {}

    # -- construction ----------------------------------------------------- #
    def add_node(self, node: str, **attrs: object) -> None:
        self.graph.add_node(node, **attrs)

    def add_link(self, a: str, b: str, profile: str = "lan") -> Link:
        """Add a bidirectional link with a named profile (see LINK_PROFILES)."""
        if profile not in LINK_PROFILES:
            raise ValueError(f"unknown link profile {profile!r}")
        return self.add_link_with_profile(a, b, LINK_PROFILES[profile])

    def add_link_with_profile(self, a: str, b: str, profile: LinkProfile) -> Link:
        for node in (a, b):
            if node not in self.graph:
                self.graph.add_node(node)
        link = Link(a, b, profile, self._rng)
        self.graph.add_edge(a, b, link=link, weight=profile.base_latency)
        self._links[link.key()] = link
        return link

    def remove_node(self, node: str) -> None:
        if node in self.graph:
            for neighbor in list(self.graph.neighbors(node)):
                key = self.graph.edges[node, neighbor]["link"].key()
                self._links.pop(key, None)
            self.graph.remove_node(node)

    # -- access --------------------------------------------------------- #
    @property
    def nodes(self) -> List[str]:
        return list(self.graph.nodes)

    @property
    def links(self) -> List[Link]:
        return list(self._links.values())

    def has_node(self, node: str) -> bool:
        return node in self.graph

    def link_between(self, a: str, b: str) -> Optional[Link]:
        if self.graph.has_edge(a, b):
            return self.graph.edges[a, b]["link"]
        return None

    def neighbors(self, node: str) -> List[str]:
        if node not in self.graph:
            return []
        return list(self.graph.neighbors(node))

    def node_attr(self, node: str, key: str, default: object = None) -> object:
        return self.graph.nodes[node].get(key, default)

    # -- routing ---------------------------------------------------------- #
    def _up_subgraph(self) -> nx.Graph:
        up_edges = [
            (u, v) for u, v, data in self.graph.edges(data=True) if data["link"].up
        ]
        sub = nx.Graph()
        sub.add_nodes_from(self.graph.nodes)
        for u, v in up_edges:
            sub.add_edge(u, v, weight=self.graph.edges[u, v]["weight"])
        return sub

    def route(self, src: str, dst: str) -> Optional[List[str]]:
        """Lowest expected-latency path over up links, or None if unreachable."""
        if src == dst:
            return [src]
        if src not in self.graph or dst not in self.graph:
            return None
        sub = self._up_subgraph()
        try:
            return nx.shortest_path(sub, src, dst, weight="weight")
        except (nx.NetworkXNoPath, nx.NodeNotFound):
            return None

    def reachable(self, src: str, dst: str) -> bool:
        return self.route(src, dst) is not None

    def path_links(self, path: Sequence[str]) -> List[Link]:
        out = []
        for u, v in zip(path, path[1:]):
            link = self.link_between(u, v)
            if link is None:
                raise ValueError(f"no link {u!r}-{v!r} on path")
            out.append(link)
        return out

    def expected_latency(self, src: str, dst: str) -> Optional[float]:
        """Sum of base latencies along the current best route."""
        path = self.route(src, dst)
        if path is None:
            return None
        return sum(link.profile.base_latency for link in self.path_links(path))

    def components(self) -> List[set]:
        """Connected components over up links (partition structure)."""
        return [set(c) for c in nx.connected_components(self._up_subgraph())]


# ------------------------------------------------------------------------- #
# Builders for the archetypal layouts of Figure 1
# ------------------------------------------------------------------------- #
def build_edge_cloud_topology(
    n_sites: int,
    devices_per_site: int,
    rng: Optional[random.Random] = None,
    cloud_node: str = "cloud",
    device_profile: str = "wireless",
    site_uplink_profile: str = "wan",
    inter_site_profile: str = "metro",
    mesh_sites: bool = True,
) -> Tuple[Topology, Dict[str, List[str]]]:
    """The canonical paper landscape: cloud, edge sites, local devices.

    Returns the topology and a mapping ``edge_node -> [device ids]``.
    Device ids are ``d{site}.{index}``; edge nodes are ``edge{site}``.
    When ``mesh_sites`` is set, neighbouring edge sites get metro links so
    that decentralized coordination between edges (Fig. 3) has a path that
    does not traverse the cloud.
    """
    if n_sites < 1:
        raise ValueError("need at least one edge site")
    topo = Topology(rng=rng)
    topo.add_node(cloud_node, tier="cloud")
    site_devices: Dict[str, List[str]] = {}
    edge_nodes = []
    for s in range(n_sites):
        edge = f"edge{s}"
        edge_nodes.append(edge)
        topo.add_node(edge, tier="edge", site=s)
        topo.add_link(edge, cloud_node, profile=site_uplink_profile)
        members = []
        for d in range(devices_per_site):
            device = f"d{s}.{d}"
            topo.add_node(device, tier="device", site=s)
            topo.add_link(device, edge, profile=device_profile)
            members.append(device)
        site_devices[edge] = members
    if mesh_sites and n_sites > 1:
        for i in range(n_sites):
            j = (i + 1) % n_sites
            if i != j and topo.link_between(edge_nodes[i], edge_nodes[j]) is None:
                topo.add_link(edge_nodes[i], edge_nodes[j], profile=inter_site_profile)
    return topo, site_devices


def build_star_topology(
    center: str,
    leaves: Iterable[str],
    profile: str = "lan",
    rng: Optional[random.Random] = None,
) -> Topology:
    """A star: every leaf linked to ``center`` (the ML1/ML2 archetype)."""
    topo = Topology(rng=rng)
    topo.add_node(center, tier="hub")
    for leaf in leaves:
        topo.add_node(leaf, tier="leaf")
        topo.add_link(leaf, center, profile=profile)
    return topo


def build_mesh_topology(
    nodes: Sequence[str],
    profile: str = "lan",
    rng: Optional[random.Random] = None,
) -> Topology:
    """A full mesh among ``nodes`` (small coordination clusters)."""
    topo = Topology(rng=rng)
    for node in nodes:
        topo.add_node(node)
    for i, a in enumerate(nodes):
        for b in nodes[i + 1:]:
            topo.add_link(a, b, profile=profile)
    return topo

"""Message transport over a topology.

The :class:`Network` delivers :class:`Message` objects between named
endpoints by routing over the topology's currently-up links, summing
per-hop sampled latencies, and applying per-hop loss.  Handlers are
registered per destination; delivery is a scheduled kernel event, so all
communication is asynchronous and interleaves deterministically with the
rest of the simulation.

This is deliberately a *datagram* service (unreliable, unordered beyond
what latency sampling induces): reliability is the job of the coordination
and data layers above -- the paper's point is precisely that resilience
mechanisms must be built into the components, not assumed from the fabric.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.network.topology import Topology
from repro.observability.histogram import StreamingHistogram
from repro.observability.spans import SpanContext, SpanRecorder
from repro.simulation.kernel import Simulator
from repro.simulation.trace import TraceLog


@dataclass
class Message:
    """A datagram between two endpoints.

    ``kind`` is the protocol-level message type (e.g. ``"gossip"``,
    ``"raft.append_entries"``); ``payload`` is protocol-defined.
    ``span`` carries the causal context of the send (when the network has
    a :class:`~repro.observability.spans.SpanRecorder` attached), so work
    the handler triggers is attributed to the message that caused it.
    """

    src: str
    dst: str
    kind: str
    payload: Any = None
    size_bytes: int = 256
    msg_id: int = field(default=-1)
    sent_at: float = field(default=0.0)
    span: Optional[SpanContext] = field(default=None, compare=False)
    # Message-authentication tag (set by a signing interceptor, checked by
    # the delivery verifier).  None means "unauthenticated" -- whether that
    # is acceptable is the verifier's policy, not the transport's.
    auth: Optional[str] = field(default=None, compare=False)


@dataclass
class NetworkStats:
    """Aggregate transport counters, exposed for experiments.

    Beyond the aggregate counters, ``per_kind`` keeps one streaming
    latency histogram per message kind, so protocol chatter (gossip,
    raft) and user-facing traffic (``traffic.request``) are separable in
    exports instead of blurring into one ``mean_latency``.
    """

    sent: int = 0
    delivered: int = 0
    dropped_loss: int = 0
    dropped_unreachable: int = 0
    dropped_quarantined: int = 0
    dropped_auth: int = 0
    dropped_intercepted: int = 0
    total_latency: float = 0.0
    per_kind: Dict[str, StreamingHistogram] = field(default_factory=dict)
    # Per-sender [messages, bytes] totals: the observable substrate for
    # flooding detection (and a useful traffic-attribution export).
    per_source: Dict[str, List[int]] = field(default_factory=dict)

    @property
    def delivery_ratio(self) -> Optional[float]:
        """Delivered fraction, or None when nothing was ever sent.

        None (not a fabricated 0.0) matches the empty-stats convention of
        :class:`~repro.sweep.SweepCell`: an unused transport is *unknown*,
        not perfectly lossy.
        """
        return self.delivered / self.sent if self.sent else None

    @property
    def mean_latency(self) -> Optional[float]:
        """Mean delivery latency, or None when nothing was delivered."""
        return self.total_latency / self.delivered if self.delivered else None

    def observe_source(self, src: str, size_bytes: int) -> None:
        """Fold one send into the per-source [messages, bytes] totals."""
        entry = self.per_source.get(src)
        if entry is None:
            entry = self.per_source[src] = [0, 0]
        entry[0] += 1
        entry[1] += size_bytes

    def observe_latency(self, kind: str, latency: float) -> None:
        """Fold one delivery latency into the per-kind histogram."""
        hist = self.per_kind.get(kind)
        if hist is None:
            hist = self.per_kind[kind] = StreamingHistogram()
        hist.observe(latency)

    def kind_latency(self, kind: str) -> Optional[StreamingHistogram]:
        return self.per_kind.get(kind)


MessageHandler = Callable[[Message], None]


class Network:
    """Routing datagram transport bound to a simulator and topology."""

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        trace: Optional[TraceLog] = None,
        spans: Optional[SpanRecorder] = None,
    ) -> None:
        self.sim = sim
        self.topology = topology
        self.trace = trace
        # Causal span recorder; protocols read this attribute dynamically
        # so observability can be enabled on an already-wired system.
        self.spans = spans
        self.stats = NetworkStats()
        self._handlers: Dict[str, Dict[str, MessageHandler]] = {}
        self._msg_ids = itertools.count()
        # Nodes marked down drop all traffic addressed to or relayed
        # through them; device crash faults use this switch.
        self._down_nodes: set = set()
        # Send-side interceptor chain (see :meth:`add_interceptor`).  The
        # security plane installs its signer first and attack behaviors
        # after it, so a compromised node's tampering happens *below* the
        # legitimate signing layer and breaks the signature.
        self._interceptors: List[Callable[[Message], Any]] = []
        # Delivery-side authenticity check: ``verifier(message) -> bool``.
        # False drops the message with reason ``"auth"``.
        self.verifier: Optional[Callable[[Message], bool]] = None
        # Transport ACL: traffic from or to a quarantined node is dropped
        # at dispatch (and at delivery, for messages already in flight).
        self._quarantined: set = set()
        # Federation seam: when set, sends whose (src, dst) the router
        # claims are diverted into cross-shard mailboxes *before* a
        # Message is allocated or stats are touched, so local and
        # sharded runs stay digest-identical (see ``repro.shard``).
        self.remote_router = None

    # -- endpoint management ---------------------------------------------- #
    def register(self, node: str, kind: str, handler: MessageHandler) -> None:
        """Register ``handler`` for messages of ``kind`` arriving at ``node``."""
        self._handlers.setdefault(node, {})[kind] = handler

    def register_default(self, node: str, handler: MessageHandler) -> None:
        """Fallback handler for kinds without a specific registration."""
        self._handlers.setdefault(node, {})["*"] = handler

    def unregister_node(self, node: str) -> None:
        self._handlers.pop(node, None)

    def set_node_up(self, node: str, up: bool) -> None:
        if up:
            self._down_nodes.discard(node)
        else:
            self._down_nodes.add(node)

    def node_up(self, node: str) -> bool:
        return node not in self._down_nodes

    # -- security hooks ---------------------------------------------------- #
    def add_interceptor(self, interceptor: Callable[[Message], Any]) -> None:
        """Append a send-side interceptor.

        Interceptors run in installation order on every :meth:`send`,
        before routing.  Each receives the :class:`Message` and may mutate
        it (replace ``payload``, set ``auth``).  Return values: ``None``
        passes the message on, the string ``"drop"`` discards it (counted
        as ``dropped_intercepted``), and a float adds that much extra
        delivery delay.  With no interceptors installed the send path is
        byte-identical to the pre-security transport.
        """
        self._interceptors.append(interceptor)

    def remove_interceptor(self, interceptor: Callable[[Message], Any]) -> None:
        if interceptor in self._interceptors:
            self._interceptors.remove(interceptor)

    def quarantine(self, node: str) -> None:
        """Drop all traffic from or to ``node`` (transport-level ACL)."""
        self._quarantined.add(node)

    def unquarantine(self, node: str) -> None:
        self._quarantined.discard(node)

    def is_quarantined(self, node: str) -> bool:
        return node in self._quarantined

    @property
    def quarantined_nodes(self) -> List[str]:
        return sorted(self._quarantined)

    # -- sending ---------------------------------------------------------- #
    def send(
        self,
        src: str,
        dst: str,
        kind: str,
        payload: Any = None,
        size_bytes: int = 256,
    ) -> Message:
        """Send a datagram; returns the message (delivery not guaranteed)."""
        router = self.remote_router
        if router is not None and router.routes(src, dst):
            return router.send(src, dst, kind, payload, size_bytes)
        message = Message(
            src=src,
            dst=dst,
            kind=kind,
            payload=payload,
            size_bytes=size_bytes,
            msg_id=next(self._msg_ids),
            sent_at=self.sim.now,
        )
        self.stats.sent += 1
        self.stats.observe_source(src, size_bytes)
        span = None
        spans = self.spans
        if spans is not None:
            # The send span inherits whatever the sender is doing (a MAPE
            # iteration, a gossip round, a delivering message) and closes
            # at delivery or drop time.
            span = spans.start(
                f"msg:{kind}", "message", self.sim.now,
                src=src, dst=dst, msg_id=message.msg_id,
            )
            message.span = span.context
        extra_delay = 0.0
        for interceptor in self._interceptors:
            outcome = interceptor(message)
            if outcome is None:
                continue
            if outcome == "drop":
                self._drop(message, "intercepted", span)
                return message
            extra_delay += float(outcome)
        self._dispatch(message, span, extra_delay)
        return message

    def _dispatch(self, message: Message, span, extra_delay: float = 0.0) -> None:
        if self._quarantined and (message.src in self._quarantined
                                  or message.dst in self._quarantined):
            self._drop(message, "quarantined", span)
            return
        if message.src in self._down_nodes or message.dst in self._down_nodes:
            self._drop(message, "unreachable", span)
            return
        path = self.topology.route(message.src, message.dst)
        if path is None:
            self._drop(message, "unreachable", span)
            return
        intermediate = path[1:-1]
        if any(node in self._down_nodes for node in intermediate):
            # Down relays are invisible to shortest-path; model them as a
            # black hole, which is what a crashed gateway is.
            self._drop(message, "unreachable", span)
            return
        total_latency = 0.0
        for link in self.topology.path_links(path):
            if link.model.sample_loss():
                self._drop(message, "loss", span)
                return
            total_latency += link.model.sample_latency(message.size_bytes)
        total_latency += extra_delay
        self.sim.schedule(
            total_latency,
            lambda _s, m=message, lat=total_latency, sp=span: self._deliver(m, lat, sp),
            label=f"deliver:{message.kind}",
        )

    def _deliver(self, message: Message, latency: float, span=None) -> None:
        # Re-check destination liveness at arrival time: the node may have
        # crashed while the message was in flight.
        if message.dst in self._down_nodes:
            self._drop(message, "unreachable", span)
            return
        if self._quarantined and (message.src in self._quarantined
                                  or message.dst in self._quarantined):
            # In-flight messages to or from a node quarantined after the
            # send are still subject to the ACL.
            self._drop(message, "quarantined", span)
            return
        if self.verifier is not None and not self.verifier(message):
            self._drop(message, "auth", span)
            return
        handlers = self._handlers.get(message.dst)
        handler = None
        if handlers:
            handler = handlers.get(message.kind) or handlers.get("*")
        if handler is None:
            self._drop(message, "unreachable", span)
            return
        self.stats.delivered += 1
        self.stats.total_latency += latency
        self.stats.observe_latency(message.kind, latency)
        spans = self.spans
        if spans is not None and span is not None:
            spans.finish(span, self.sim.now, status="delivered",
                         latency=latency)
            # Handler-side work (replies, state changes) is caused by this
            # message: keep its context current while the handler runs.
            with spans.use(span):
                handler(message)
        else:
            handler(message)

    def _drop(self, message: Message, reason: str, span=None) -> None:
        if reason == "loss":
            self.stats.dropped_loss += 1
        elif reason == "quarantined":
            self.stats.dropped_quarantined += 1
        elif reason == "auth":
            self.stats.dropped_auth += 1
        elif reason == "intercepted":
            self.stats.dropped_intercepted += 1
        else:
            self.stats.dropped_unreachable += 1
        if span is not None and self.spans is not None:
            self.spans.finish(span, self.sim.now, status=f"dropped:{reason}")
        if self.trace is not None:
            self.trace.emit(
                self.sim.now,
                "message",
                "drop",
                subject=message.dst,
                kind=message.kind,
                reason=reason,
                src=message.src,
            )

    # -- convenience -------------------------------------------------------#
    def broadcast(
        self,
        src: str,
        dsts: List[str],
        kind: str,
        payload: Any = None,
        size_bytes: int = 256,
    ) -> List[Message]:
        """Unicast to each destination (no link-layer multicast modeled)."""
        return [
            self.send(src, dst, kind, payload=payload, size_bytes=size_bytes)
            for dst in dsts
            if dst != src
        ]

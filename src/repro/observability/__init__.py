"""Observability: spans, profiling, KPIs, SLOs, exportable telemetry.

The paper's Section VII keeps "models alive at runtime"; this package is
both the instrumentation surface those models are built from and the
quantitative layer monitored against goals:

* :class:`~repro.observability.spans.SpanRecorder` -- causal spans with
  trace/parent links, propagated through the transport, the MAPE loop,
  coordination protocols and the fault injector, so one disruption can be
  followed from injection to repaired state.
* :class:`~repro.observability.instrument.Instrument` -- a kernel profiler
  recording per-event wall-clock cost, per-label counts and queue depth;
  near-zero overhead when detached.
* :mod:`~repro.observability.kpis` -- resilience KPIs (MTTD/MTTR,
  availability, convergence, message overhead) derived from recorded
  telemetry, broken down by the roadmap's five disruption vectors.
* :mod:`~repro.observability.slo` -- SLO specs evaluated periodically
  *inside* the simulation; breaches fire alert events and feed the MAPE
  Monitor phase so goal burn triggers adaptation.
* :class:`~repro.observability.histogram.StreamingHistogram` --
  memory-bounded, mergeable latency distributions for million-event runs.
* :mod:`~repro.observability.export` -- JSONL, Chrome trace-event
  (Perfetto-loadable), Prometheus text, HTML report, metrics-snapshot and
  profile writers.
* :mod:`~repro.observability.flight` -- the always-on flight recorder:
  on an SLO breach, gate failure, crash fault or replay divergence it
  dumps a self-contained incident bundle whose triggering window is
  deterministically replayable (``python -m repro incident show|replay``).
* :mod:`~repro.observability.diagnosis` -- ranks the causal chain behind
  a trigger (fault arc → degraded subsystem → SLO breach) from the span
  tree's fault index and recorded series.
* :mod:`~repro.observability.profile` -- the profiling plane: per-plane
  subsystem cost attribution (transport/coordination/mape/traffic/...),
  collapsed-stack flamegraphs, request critical-path decomposition, and
  differential profiling (``python -m repro profile run|diff``) that
  names the subsystem responsible for a bench regression.
* :mod:`~repro.observability.overhead` -- the telemetry budget:
  deterministic head-based span sampling (:class:`SpanSampler`),
  self-metering of recording cost (:class:`OverheadMeter`) and the
  ``repro_observability_overhead_*`` / telemetry-health Prometheus lines.

Enable it on a system with :meth:`repro.core.system.IoTSystem.enable_observability`,
or run ``python -m repro trace <scenario>`` / ``python -m repro monitor
<scenario>`` for ready-made artifacts.
"""

from repro.observability.export import (
    chrome_trace_events,
    prometheus_text,
    write_chrome_trace,
    write_events_jsonl,
    write_html_report,
    write_metrics_snapshot,
    write_profile,
    write_prometheus,
    write_spans_jsonl,
)
from repro.observability.diagnosis import CausalLink, Diagnosis, diagnose
from repro.observability.flight import (
    FlightRecorder,
    IncidentTrigger,
    capture_divergence_incident,
    capture_gate_incident,
    load_manifest,
    replay_incident,
)
from repro.observability.histogram import StreamingHistogram, log_bounds
from repro.observability.instrument import (
    Instrument,
    InstrumentSnapshot,
    LabelStats,
)
from repro.observability.profile import (
    capture_profile,
    collapsed_kernel_stacks,
    collapsed_span_stacks,
    diff_profiles,
    load_profile,
    plane_of_category,
    plane_of_label,
    profile_prom_lines,
    render_profile_diff,
    request_critical_paths,
    save_profile,
    write_flamegraph,
    write_profile_chrome_trace,
)
from repro.observability.overhead import (
    OverheadMeter,
    SpanSampler,
    attach_meter,
    telemetry_health,
    telemetry_prom_lines,
)
from repro.observability.kpis import (
    DisruptionArc,
    KpiReport,
    VectorKpis,
    classify_fault_vector,
    compute_kpi_report,
    disruption_arcs,
    kpi_report_for_system,
)
from repro.observability.slo import (
    ReachabilityProbe,
    SloMonitor,
    SloSpec,
    SloStatus,
    default_slos,
)
from repro.observability.spans import Span, SpanContext, SpanRecorder

__all__ = [
    "CausalLink",
    "Diagnosis",
    "DisruptionArc",
    "FlightRecorder",
    "IncidentTrigger",
    "Instrument",
    "KpiReport",
    "LabelStats",
    "OverheadMeter",
    "ReachabilityProbe",
    "SloMonitor",
    "SloSpec",
    "SloStatus",
    "Span",
    "SpanContext",
    "SpanRecorder",
    "SpanSampler",
    "StreamingHistogram",
    "VectorKpis",
    "attach_meter",
    "capture_divergence_incident",
    "capture_gate_incident",
    "chrome_trace_events",
    "classify_fault_vector",
    "compute_kpi_report",
    "default_slos",
    "diagnose",
    "disruption_arcs",
    "kpi_report_for_system",
    "load_manifest",
    "log_bounds",
    "InstrumentSnapshot",
    "capture_profile",
    "collapsed_kernel_stacks",
    "collapsed_span_stacks",
    "diff_profiles",
    "load_profile",
    "plane_of_category",
    "plane_of_label",
    "profile_prom_lines",
    "prometheus_text",
    "render_profile_diff",
    "replay_incident",
    "request_critical_paths",
    "save_profile",
    "telemetry_health",
    "telemetry_prom_lines",
    "write_chrome_trace",
    "write_events_jsonl",
    "write_flamegraph",
    "write_html_report",
    "write_metrics_snapshot",
    "write_profile",
    "write_profile_chrome_trace",
    "write_prometheus",
    "write_spans_jsonl",
]

"""Observability: causal spans, kernel profiling, exportable telemetry.

The paper's Section VII keeps "models alive at runtime"; this package is
the instrumentation surface those models are built from:

* :class:`~repro.observability.spans.SpanRecorder` -- causal spans with
  trace/parent links, propagated through the transport, the MAPE loop,
  coordination protocols and the fault injector, so one disruption can be
  followed from injection to repaired state.
* :class:`~repro.observability.instrument.Instrument` -- a kernel profiler
  recording per-event wall-clock cost, per-label counts and queue depth;
  near-zero overhead when detached.
* :mod:`~repro.observability.export` -- JSONL, Chrome trace-event
  (Perfetto-loadable), metrics-snapshot and profile writers.

Enable it on a system with :meth:`repro.core.system.IoTSystem.enable_observability`
or run ``python -m repro trace <scenario>`` for ready-made artifacts.
"""

from repro.observability.export import (
    chrome_trace_events,
    write_chrome_trace,
    write_events_jsonl,
    write_metrics_snapshot,
    write_profile,
    write_spans_jsonl,
)
from repro.observability.instrument import Instrument, LabelStats
from repro.observability.spans import Span, SpanContext, SpanRecorder

__all__ = [
    "Instrument",
    "LabelStats",
    "Span",
    "SpanContext",
    "SpanRecorder",
    "chrome_trace_events",
    "write_chrome_trace",
    "write_events_jsonl",
    "write_metrics_snapshot",
    "write_profile",
    "write_spans_jsonl",
]

"""Observability: spans, profiling, KPIs, SLOs, exportable telemetry.

The paper's Section VII keeps "models alive at runtime"; this package is
both the instrumentation surface those models are built from and the
quantitative layer monitored against goals:

* :class:`~repro.observability.spans.SpanRecorder` -- causal spans with
  trace/parent links, propagated through the transport, the MAPE loop,
  coordination protocols and the fault injector, so one disruption can be
  followed from injection to repaired state.
* :class:`~repro.observability.instrument.Instrument` -- a kernel profiler
  recording per-event wall-clock cost, per-label counts and queue depth;
  near-zero overhead when detached.
* :mod:`~repro.observability.kpis` -- resilience KPIs (MTTD/MTTR,
  availability, convergence, message overhead) derived from recorded
  telemetry, broken down by the roadmap's five disruption vectors.
* :mod:`~repro.observability.slo` -- SLO specs evaluated periodically
  *inside* the simulation; breaches fire alert events and feed the MAPE
  Monitor phase so goal burn triggers adaptation.
* :class:`~repro.observability.histogram.StreamingHistogram` --
  memory-bounded, mergeable latency distributions for million-event runs.
* :mod:`~repro.observability.export` -- JSONL, Chrome trace-event
  (Perfetto-loadable), Prometheus text, HTML report, metrics-snapshot and
  profile writers.

Enable it on a system with :meth:`repro.core.system.IoTSystem.enable_observability`,
or run ``python -m repro trace <scenario>`` / ``python -m repro monitor
<scenario>`` for ready-made artifacts.
"""

from repro.observability.export import (
    chrome_trace_events,
    prometheus_text,
    write_chrome_trace,
    write_events_jsonl,
    write_html_report,
    write_metrics_snapshot,
    write_profile,
    write_prometheus,
    write_spans_jsonl,
)
from repro.observability.histogram import StreamingHistogram, log_bounds
from repro.observability.instrument import Instrument, LabelStats
from repro.observability.kpis import (
    DisruptionArc,
    KpiReport,
    VectorKpis,
    classify_fault_vector,
    compute_kpi_report,
    disruption_arcs,
    kpi_report_for_system,
)
from repro.observability.slo import (
    ReachabilityProbe,
    SloMonitor,
    SloSpec,
    SloStatus,
    default_slos,
)
from repro.observability.spans import Span, SpanContext, SpanRecorder

__all__ = [
    "DisruptionArc",
    "Instrument",
    "KpiReport",
    "LabelStats",
    "ReachabilityProbe",
    "SloMonitor",
    "SloSpec",
    "SloStatus",
    "Span",
    "SpanContext",
    "SpanRecorder",
    "StreamingHistogram",
    "VectorKpis",
    "chrome_trace_events",
    "classify_fault_vector",
    "compute_kpi_report",
    "default_slos",
    "disruption_arcs",
    "kpi_report_for_system",
    "log_bounds",
    "prometheus_text",
    "write_chrome_trace",
    "write_events_jsonl",
    "write_html_report",
    "write_metrics_snapshot",
    "write_profile",
    "write_prometheus",
    "write_spans_jsonl",
]

"""Incident diagnosis: rank the causal chain behind a trigger.

The resilience survey places *diagnosis* between detection and recovery:
knowing that an SLO burned is detection; knowing *which fault arc caused
it through which subsystem* is what makes the recovery actionable.  This
module walks the telemetry a run already records --

* the span tree's fault index (``injection`` spans and their descendant
  counts, via shared trace ids),
* the ``up:*`` / ``reach:*`` level series (what was down at the trigger),
* ``alert``/``slo-breach`` trace events (which objectives burned),

-- and emits a :class:`Diagnosis`: a ranked chain of
:class:`CausalLink`s ordered fault → degraded subsystem → breach.  The
flight recorder embeds the chain in every incident bundle's manifest,
``python -m repro incident show`` prints it, and the HTML report renders
it as the "Incidents" section.

Scores are heuristic but deterministic: an arc still active at the
trigger outranks a recovered one, recency breaks ties, and downstream
impact (spans recorded under the arc's trace) separates a fault that
cascaded from one the system absorbed silently.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

#: Padding added to the trigger time when selecting trace events, so an
#: event emitted *at* the trigger instant (the breach that fired it) is
#: included despite the trace's half-open window convention.
_EDGE = 1e-9


@dataclass
class CausalLink:
    """One step of a ranked causal chain."""

    kind: str          # "fault" | "degraded" | "breach"
    subject: str
    time: float
    summary: str
    score: float
    trace_id: Optional[str] = None
    detail: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "subject": self.subject,
            "time": self.time,
            "summary": self.summary,
            "score": self.score,
            "trace_id": self.trace_id,
            "detail": dict(self.detail),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CausalLink":
        return cls(kind=data["kind"], subject=data["subject"],
                   time=float(data["time"]), summary=data["summary"],
                   score=float(data["score"]),
                   trace_id=data.get("trace_id"),
                   detail=dict(data.get("detail", {})))


@dataclass
class Diagnosis:
    """A ranked causal chain around one trigger."""

    trigger_reason: str
    trigger_time: float
    window: float
    chain: List[CausalLink] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "trigger_reason": self.trigger_reason,
            "trigger_time": self.trigger_time,
            "window": self.window,
            "chain": [link.to_dict() for link in self.chain],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Diagnosis":
        return cls(trigger_reason=data.get("trigger_reason", ""),
                   trigger_time=float(data.get("trigger_time", 0.0)),
                   window=float(data.get("window", 0.0)),
                   chain=[CausalLink.from_dict(link)
                          for link in data.get("chain", [])])

    def table_rows(self) -> List[List[Any]]:
        """``[rank, kind, subject, t, score, summary]`` rows for CLI/HTML."""
        return [[rank + 1, link.kind, link.subject,
                 round(link.time, 3), round(link.score, 3), link.summary]
                for rank, link in enumerate(self.chain)]


def _fault_links(system: Any, start: float, trigger_time: float) -> List[CausalLink]:
    """Score injection spans overlapping the window (span path)."""
    spans = system.spans
    links: List[CausalLink] = []
    for span in spans.select(category="injection"):
        if span.start > trigger_time:
            continue
        end = span.end if span.end is not None else trigger_time
        if end < start:
            continue
        active = span.end is None or span.end >= trigger_time
        downstream = [s for s in spans.select(trace_id=span.trace_id)
                      if s.span_id != span.span_id]
        by_category = Counter(s.category for s in downstream)
        impact = len(downstream)
        score = ((2.0 if active else 1.0)
                 + 1.0 / (1.0 + max(0.0, trigger_time - span.start))
                 + min(impact, 50) / 50.0)
        state = "active at trigger" if active else f"recovered at t={end:g}"
        links.append(CausalLink(
            kind="fault",
            subject=str(span.attrs.get("subject", span.name)),
            time=span.start,
            summary=(f"fault arc {span.name!r} ({state}) with "
                     f"{impact} downstream span(s)"),
            score=round(score, 4),
            trace_id=span.trace_id,
            detail={"status": span.status,
                    "downstream": dict(sorted(by_category.items()))},
        ))
    return links


def _fault_links_from_trace(system: Any, start: float,
                            trigger_time: float) -> List[CausalLink]:
    """Fallback fault scoring from trace events when spans are off."""
    links: List[CausalLink] = []
    recovered = {e.subject: e.time for e in system.trace.select(
        category="recovery", start=start, end=trigger_time + _EDGE)}
    for event in system.trace.select(category="fault", start=start,
                                     end=trigger_time + _EDGE):
        healed_at = recovered.get(event.subject)
        active = healed_at is None or healed_at >= trigger_time
        score = ((2.0 if active else 1.0)
                 + 1.0 / (1.0 + max(0.0, trigger_time - event.time)))
        state = ("active at trigger" if active
                 else f"recovered at t={healed_at:g}")
        links.append(CausalLink(
            kind="fault", subject=event.subject or event.name,
            time=event.time,
            summary=f"fault {event.name!r} ({state})",
            score=round(score, 4),
            detail=dict(event.attrs)))
    return links


def _degraded_links(system: Any, start: float,
                    trigger_time: float) -> List[CausalLink]:
    """Level series (``up:*`` / ``reach:*``) sitting at 0 at the trigger."""
    links: List[CausalLink] = []
    for name in system.metrics.series_names:
        if not (name.startswith("up:") or name.startswith("reach:")):
            continue
        series = system.metrics.series(name)
        if series.kind != "level" or series.value_at(trigger_time) != 0.0:
            continue
        down_since = trigger_time
        for time, value in reversed(series.window(start, trigger_time + _EDGE)):
            if value != 0.0:
                break
            down_since = time
        subject = name.split(":", 1)[1]
        score = 1.0 + 1.0 / (1.0 + max(0.0, trigger_time - down_since))
        links.append(CausalLink(
            kind="degraded", subject=subject, time=down_since,
            summary=f"{name} held at 0 since t={down_since:g}",
            score=round(score, 4),
            detail={"series": name}))
    return links


def _breach_links(system: Any, start: float,
                  trigger_time: float) -> List[CausalLink]:
    """SLO breach alerts inside the window, newest-first."""
    links: List[CausalLink] = []
    for event in system.trace.select(category="alert", name="slo-breach",
                                     start=start, end=trigger_time + _EDGE):
        burn = event.attrs.get("burn_rate")
        measured = event.attrs.get("measured")
        slo_name = event.attrs.get("slo", event.subject)
        bits = [f"SLO {slo_name!r} breached on {event.subject!r}"]
        if measured is not None:
            bits.append(f"measured {measured:.4g}")
        if burn is not None:
            bits.append(f"burn {burn:.3g}x")
        score = 1.0 + 1.0 / (1.0 + max(0.0, trigger_time - event.time))
        links.append(CausalLink(
            kind="breach", subject=event.subject, time=event.time,
            summary=", ".join(bits), score=round(score, 4),
            detail=dict(event.attrs)))
    links.sort(key=lambda link: (-link.score, link.time, link.subject))
    return links


def diagnose(system: Any, trigger_time: float, trigger_reason: str = "",
             window: float = 30.0) -> Diagnosis:
    """Build the ranked causal chain for a trigger at ``trigger_time``.

    The chain is ordered by mechanism class (fault arcs first, then
    degraded subsystems, then breaches) and by score within each class,
    so reading it top-down follows the causal story: what was injected,
    what it took down, which objective burned.
    """
    start = max(0.0, trigger_time - window)
    if system.spans is not None and system.spans.select(category="injection"):
        faults = _fault_links(system, start, trigger_time)
    else:
        faults = _fault_links_from_trace(system, start, trigger_time)
    faults.sort(key=lambda link: (-link.score, link.time, link.subject))
    degraded = _degraded_links(system, start, trigger_time)
    degraded.sort(key=lambda link: (-link.score, link.time, link.subject))
    breaches = _breach_links(system, start, trigger_time)
    return Diagnosis(trigger_reason=trigger_reason,
                     trigger_time=trigger_time, window=window,
                     chain=faults + degraded + breaches)

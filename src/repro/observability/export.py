"""Exporters: JSONL, Chrome trace-event, Prometheus, HTML, snapshots.

Spans and trace events are simulator-domain data; these functions turn
them into artifacts standard tooling reads:

* ``write_spans_jsonl`` / ``write_events_jsonl`` -- one JSON object per
  line, grep/jq-friendly, stable field order.
* ``write_chrome_trace`` -- the Trace Event Format consumed by
  ``chrome://tracing`` and https://ui.perfetto.dev: spans become complete
  ("X") slices on one thread per category, trace events become instants.
  Simulated seconds are mapped to microseconds so one trace-viewer "us"
  equals one simulated microsecond.
* ``prometheus_text`` / ``write_prometheus`` -- Prometheus text
  exposition (format 0.0.4) of counters, series summaries and streaming
  histograms, so a run's final state scrapes into any Prometheus stack.
* ``write_html_report`` -- a single self-contained HTML file with the
  KPI tables, SLO statuses and availability bars of one observed run.
* ``write_metrics_snapshot`` / ``write_profile`` -- JSON dumps of the
  :meth:`MetricsRecorder.snapshot` and :meth:`Instrument.report` dicts.

All writers take a path, write atomically-enough (single open/write), and
return the number of records written so CLIs can report artifact sizes.
"""

from __future__ import annotations

import html as _html
import json
import re
from typing import IO, Any, Dict, Iterable, List, Optional, Union

from repro.observability.histogram import StreamingHistogram
from repro.observability.instrument import Instrument
from repro.observability.spans import Span
from repro.simulation.metrics import MetricsRecorder
from repro.simulation.trace import TraceEvent

PathLike = Union[str, "os.PathLike[str]"]  # noqa: F821 - typing alias only

_US = 1e6  # simulated seconds -> trace-viewer microseconds


def _default(obj: Any) -> str:
    """Fallback serializer: repr anything JSON doesn't know (sets, objects)."""
    if isinstance(obj, (set, frozenset)):
        return sorted(obj)  # type: ignore[return-value]
    return repr(obj)


def write_spans_jsonl(spans: Iterable[Span], path: PathLike) -> int:
    """One span per line; returns the number of spans written."""
    count = 0
    with open(path, "w", encoding="utf-8") as fh:
        for span in spans:
            fh.write(json.dumps(span.to_dict(), default=_default) + "\n")
            count += 1
    return count


def event_to_dict(event: TraceEvent) -> Dict[str, Any]:
    return {
        "time": event.time,
        "category": event.category,
        "name": event.name,
        "subject": event.subject,
        "attrs": event.attrs,
    }


def write_events_jsonl(events: Iterable[TraceEvent], path: PathLike) -> int:
    """One trace event per line; returns the number of events written."""
    count = 0
    with open(path, "w", encoding="utf-8") as fh:
        for event in events:
            fh.write(json.dumps(event_to_dict(event), default=_default) + "\n")
            count += 1
    return count


def chrome_trace_events(
    spans: Iterable[Span] = (),
    events: Iterable[TraceEvent] = (),
) -> List[Dict[str, Any]]:
    """Build the Trace Event Format record list for spans + trace events.

    Each span/event category gets its own named thread so Perfetto's track
    view groups the stack layer by layer (messages, mape, faults, ...).
    """
    records: List[Dict[str, Any]] = [
        {"ph": "M", "name": "process_name", "pid": 1, "tid": 0,
         "args": {"name": "repro simulation"}},
    ]
    tids: Dict[str, int] = {}

    def tid_for(category: str) -> int:
        tid = tids.get(category)
        if tid is None:
            tid = tids[category] = len(tids) + 1
            records.append({
                "ph": "M", "name": "thread_name", "pid": 1, "tid": tid,
                "args": {"name": category},
            })
        return tid

    for span in spans:
        end = span.end if span.end is not None else span.start
        args = {"trace_id": span.trace_id, "span_id": span.span_id,
                "status": span.status}
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        args.update({k: repr(v) if not isinstance(v, (int, float, str, bool, type(None))) else v
                     for k, v in span.attrs.items()})
        records.append({
            "ph": "X",
            "name": span.name,
            "cat": span.category,
            "ts": span.start * _US,
            "dur": max((end - span.start) * _US, 1.0),
            "pid": 1,
            "tid": tid_for(span.category),
            "args": args,
        })
    for event in events:
        args = {"subject": event.subject}
        args.update({k: repr(v) if not isinstance(v, (int, float, str, bool, type(None))) else v
                     for k, v in event.attrs.items()})
        records.append({
            "ph": "i",
            "name": event.name,
            "cat": event.category,
            "ts": event.time * _US,
            "pid": 1,
            "tid": tid_for(f"events:{event.category}"),
            "s": "t",
            "args": args,
        })
    return records


def write_chrome_trace(
    path: PathLike,
    spans: Iterable[Span] = (),
    events: Iterable[TraceEvent] = (),
) -> int:
    """Write a chrome://tracing / Perfetto-loadable JSON file."""
    records = chrome_trace_events(spans=spans, events=events)
    payload = {"traceEvents": records, "displayTimeUnit": "ms"}
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, default=_default)
    return len(records)


def write_metrics_snapshot(metrics: MetricsRecorder, path: PathLike) -> Dict[str, Any]:
    """Dump ``metrics.snapshot()`` (series summaries + counters) as JSON."""
    snapshot = metrics.snapshot()
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(snapshot, fh, indent=2, sort_keys=True, default=_default)
    return snapshot


def write_profile(instrument: Optional[Instrument], path: PathLike) -> Dict[str, Any]:
    """Dump the kernel profile report as JSON (empty report if detached)."""
    report = instrument.report() if instrument is not None else {"events": 0}
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True, default=_default)
    return report


# --------------------------------------------------------------------------- #
# Shared render inputs (file exporters + live HTTP endpoints)
# --------------------------------------------------------------------------- #
def report_inputs(system: Any, scenario: Optional[str] = None,
                  kpi_report: Optional[Any] = None,
                  shards: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """Assemble everything the Prometheus and HTML renderers consume.

    One assembly path for ``python -m repro report`` (file artifacts) and
    the live telemetry server (``/metrics``, dashboard), so served and
    written telemetry can never drift.  Pure reads: safe to call mid-run
    from an HTTP handler thread under the service lock (in particular it
    never finishes open spans -- end-of-run callers do that themselves
    before asking for a report).

    Returns a dict with ``kpi_report``, ``histograms``, ``per_kind``,
    ``per_source``, ``telemetry``, ``profile`` and ``availability``.
    ``shards`` (a federation summary dict with ``rows`` from
    :meth:`~repro.shard.driver.FederationResult.shard_rows`) is passed
    through verbatim for the ``repro_shard_*`` Prometheus families and
    the HTML "Shards" table.
    """
    from repro.observability.kpis import availability_kpis
    from repro.observability.overhead import telemetry_health

    report = kpi_report if kpi_report is not None else system.kpi_report()
    histograms: Dict[str, StreamingHistogram] = {}
    if report.repair_latency is not None and report.repair_latency.count:
        histograms["repair_latency_seconds"] = report.repair_latency
    per_kind = system.network.stats.per_kind
    for kind, hist in sorted(per_kind.items()):
        if hist.count:
            histograms[f"network_latency_seconds_{kind}"] = hist
    meta = {"scenario": scenario} if scenario else None
    return {
        "kpi_report": report,
        "histograms": histograms,
        "per_kind": per_kind,
        "per_source": system.network.stats.per_source,
        "telemetry": telemetry_health(system),
        "profile": system.profile_snapshot(meta=meta),
        "availability": availability_kpis(system.metrics, system.sim.now),
        "shards": shards,
    }


# --------------------------------------------------------------------------- #
# Prometheus text exposition
# --------------------------------------------------------------------------- #
_PROM_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str, prefix: str = "repro_") -> str:
    """Sanitize a recorder metric name into a Prometheus metric name."""
    sanitized = _PROM_NAME_RE.sub("_", name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return prefix + sanitized


def _prom_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    return repr(float(value))


def prometheus_text(
    metrics: MetricsRecorder,
    histograms: Optional[Dict[str, StreamingHistogram]] = None,
    prefix: str = "repro_",
    per_source: Optional[Dict[str, List[int]]] = None,
    telemetry: Optional[Dict[str, Any]] = None,
    profile: Optional[Dict[str, Any]] = None,
    shards: Optional[Dict[str, Any]] = None,
) -> str:
    """Render recorder state in the Prometheus text exposition format.

    Counters become ``counter`` metrics; each sample/level series becomes
    a ``summary`` (count/sum-free: quantile gauges from the recorder's
    nearest-rank percentiles plus ``_count``); streaming histograms
    become classic cumulative-``le`` ``histogram`` metrics that
    downstream aggregation can sum across runs.  ``per_source`` (the
    transport's :attr:`NetworkStats.per_source` map) adds per-sender
    ``src``-labeled message/byte counters -- the attribution substrate
    flooding detection reads.  ``telemetry`` (a
    :func:`~repro.observability.overhead.telemetry_health` dict) appends
    the telemetry-budget gauges: ring-buffer drops, span retention and
    the ``repro_observability_overhead_*`` self-metering family.
    ``profile`` (a :func:`~repro.observability.profile.capture_profile`
    snapshot) appends the ``repro_profile_*`` plane-attribution and
    request-segment families.  ``shards`` (a federation summary with
    per-shard ``rows``) appends the ``repro_shard_*`` families: events,
    mailbox depth, window count and synchronization-wait wall time.
    """
    lines: List[str] = []
    if per_source:
        msg_metric = prefix + "network_source_messages_total"
        byte_metric = prefix + "network_source_bytes_total"
        lines.append(f"# TYPE {msg_metric} counter")
        for src in sorted(per_source):
            lines.append(f'{msg_metric}{{src="{src}"}} {per_source[src][0]}')
        lines.append(f"# TYPE {byte_metric} counter")
        for src in sorted(per_source):
            lines.append(f'{byte_metric}{{src="{src}"}} {per_source[src][1]}')
    for name in metrics.counter_names:
        metric = _prom_name(name, prefix)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_prom_value(metrics.counter(name))}")
    summaries = metrics.summary(include_counters=False)
    for name in sorted(summaries):
        entry = summaries[name]
        metric = _prom_name(name, prefix)
        lines.append(f"# TYPE {metric} summary")
        for q_label, key in (("0.5", "p50"), ("0.95", "p95"), ("0.99", "p99")):
            if key in entry:
                lines.append(
                    f'{metric}{{quantile="{q_label}"}} {_prom_value(entry[key])}')
        lines.append(f"{metric}_count {_prom_value(entry['count'])}")
        for suffix in ("mean", "min", "max"):
            if suffix in entry:
                lines.append(
                    f"{metric}_{suffix} {_prom_value(entry[suffix])}")
    for name in sorted(histograms or {}):
        hist = histograms[name]
        metric = _prom_name(name, prefix)
        lines.append(f"# TYPE {metric} histogram")
        for bound, cumulative in zip(hist.bounds, hist.cumulative_counts()):
            lines.append(
                f'{metric}_bucket{{le="{_prom_value(bound)}"}} {cumulative}')
        lines.append(f'{metric}_bucket{{le="+Inf"}} {hist.count}')
        lines.append(f"{metric}_sum {_prom_value(hist.total)}")
        lines.append(f"{metric}_count {hist.count}")
    if telemetry is not None:
        from repro.observability.overhead import telemetry_prom_lines

        lines.extend(telemetry_prom_lines(telemetry, prefix=prefix))
    if profile is not None:
        from repro.observability.profile import profile_prom_lines

        lines.extend(profile_prom_lines(profile, prefix=prefix))
    if shards is not None:
        lines.extend(shard_prom_lines(shards, prefix=prefix))
    return "\n".join(lines) + ("\n" if lines else "")


def shard_prom_lines(shards: Dict[str, Any], prefix: str = "repro_") -> List[str]:
    """The ``repro_shard_*`` federation families.

    ``shards`` is the summary dict the shard CLI builds from a
    :class:`~repro.shard.driver.FederationResult`: scalar run facts
    (``shards``, ``windows``, ``lookahead``, ``wall_s``) plus per-shard
    ``rows`` (:meth:`~repro.shard.driver.FederationResult.shard_rows`).
    Per-shard series carry a ``shard`` label so dashboards can spot a
    straggler (high ``sync_wait``) or a hot mailbox at a glance.
    """
    lines: List[str] = []
    for key, suffix, kind in (
        ("shards", "shard_count", "gauge"),
        ("windows", "shard_windows_total", "counter"),
        ("lookahead", "shard_lookahead_seconds", "gauge"),
        ("wall_s", "shard_wall_seconds", "gauge"),
        ("devices", "shard_devices", "gauge"),
    ):
        if key in shards and shards[key] is not None:
            metric = prefix + suffix
            lines.append(f"# TYPE {metric} {kind}")
            lines.append(f"{metric} {_prom_value(shards[key])}")
    rows = shards.get("rows") or []
    for key, suffix, kind in (
        ("events", "shard_events_total", "counter"),
        ("mailbox_peak", "shard_mailbox_depth_peak", "gauge"),
        ("injected", "shard_mailbox_injected_total", "counter"),
        ("sync_wait_s", "shard_sync_wait_seconds_total", "counter"),
        ("wall_s", "shard_run_wall_seconds_total", "counter"),
    ):
        if not rows or key not in rows[0]:
            continue
        metric = prefix + suffix
        lines.append(f"# TYPE {metric} {kind}")
        for row in rows:
            lines.append(
                f'{metric}{{shard="{row["shard"]}"}} {_prom_value(row[key])}')
    return lines


def write_prometheus(
    metrics: MetricsRecorder,
    path: PathLike,
    histograms: Optional[Dict[str, StreamingHistogram]] = None,
    prefix: str = "repro_",
    per_source: Optional[Dict[str, List[int]]] = None,
    telemetry: Optional[Dict[str, Any]] = None,
    profile: Optional[Dict[str, Any]] = None,
    shards: Optional[Dict[str, Any]] = None,
) -> int:
    """Write the Prometheus exposition; returns the number of lines."""
    text = prometheus_text(metrics, histograms=histograms, prefix=prefix,
                           per_source=per_source, telemetry=telemetry,
                           profile=profile, shards=shards)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text)
    return text.count("\n")


# --------------------------------------------------------------------------- #
# HTML resilience report
# --------------------------------------------------------------------------- #
_HTML_STYLE = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2rem auto; max-width: 60rem; color: #1a2332; }
h1 { font-size: 1.5rem; } h2 { font-size: 1.15rem; margin-top: 2rem; }
table { border-collapse: collapse; width: 100%; margin: 0.75rem 0; }
th, td { text-align: left; padding: 0.35rem 0.6rem;
         border-bottom: 1px solid #dde3ea; font-size: 0.9rem; }
th { background: #f2f5f8; font-weight: 600; }
.ok { color: #1b7f4d; font-weight: 600; }
.breach { color: #b3261e; font-weight: 600; }
.kpi-grid { display: flex; flex-wrap: wrap; gap: 0.75rem; margin: 1rem 0; }
.kpi { border: 1px solid #dde3ea; border-radius: 0.5rem;
       padding: 0.6rem 1rem; min-width: 9rem; }
.kpi .value { font-size: 1.3rem; font-weight: 700; }
.kpi .label { font-size: 0.75rem; color: #5b6776; text-transform: uppercase; }
.bar { background: #eef1f5; border-radius: 3px; height: 0.7rem;
       width: 12rem; display: inline-block; vertical-align: middle; }
.bar > span { background: #2f6fd6; height: 100%; display: block;
              border-radius: 3px; }
footer { margin-top: 2.5rem; font-size: 0.75rem; color: #8a94a1; }
"""


def _html_cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4f}"
    return _html.escape(str(value))


def _html_table(headers: List[str], rows: List[List[Any]],
                classes: Optional[List[Optional[str]]] = None) -> str:
    head = "".join(f"<th>{_html.escape(str(h))}</th>" for h in headers)
    body = []
    for i, row in enumerate(rows):
        cls = classes[i] if classes and i < len(classes) and classes[i] else None
        attr = f' class="{cls}"' if cls else ""
        cells = "".join(f"<td>{_html_cell(c)}</td>" for c in row)
        body.append(f"<tr{attr}>{cells}</tr>")
    return (f"<table><thead><tr>{head}</tr></thead>"
            f"<tbody>{''.join(body)}</tbody></table>")


def bench_trajectory_rows(
    snapshots: List[Dict[str, Any]],
) -> List[List[Any]]:
    """Per-metric drift rows across an ordered list of bench snapshots.

    ``snapshots`` are loaded ``BENCH_*.json`` payloads (oldest first),
    each ``{"label": ..., "benches": {bench: {metric: value}}}``.  Rows
    are ``[bench.metric, first, last, drift, drift%]`` for every metric
    present in the newest snapshot; metrics absent from the oldest show
    "-" for first/drift so new benches don't read as infinite growth.
    """
    if not snapshots:
        return []
    first, last = snapshots[0], snapshots[-1]
    rows: List[List[Any]] = []
    for bench in sorted(last.get("benches", {})):
        newest = last["benches"][bench]
        oldest = first.get("benches", {}).get(bench, {})
        for metric in sorted(newest):
            new_value = newest[metric]
            if not isinstance(new_value, (int, float)):
                continue
            old_value = oldest.get(metric)
            if isinstance(old_value, (int, float)):
                drift = new_value - old_value
                pct = (f"{drift / old_value:+.1%}" if old_value else
                       ("0.0%" if not drift else "new"))
                rows.append([f"{bench}.{metric}", old_value, new_value,
                             drift, pct])
            else:
                rows.append([f"{bench}.{metric}", "-", new_value, "-", "new"])
    return rows


def chaos_campaign_rows(campaign: Dict[str, Any]) -> List[List[Any]]:
    """Case rows for a campaign dict (``CampaignResult.to_dict()``)."""
    rows: List[List[Any]] = []
    for index, case in enumerate(campaign.get("cases", [])):
        violations = case.get("violations") or []
        rows.append([
            index,
            case.get("describe", "?"),
            case.get("spec_digest", "?"),
            case.get("events", 0),
            ", ".join(violations) if violations else "ok",
        ])
    return rows


def _render_chaos_section(chaos: Dict[str, Any]) -> str:
    """The "Chaos campaign" report section.

    ``chaos`` carries ``campaign`` (a ``CampaignResult.to_dict()``) and
    optionally ``corpus`` (a list of ``BundleVerdict.to_dict()``).
    """
    parts: List[str] = []
    campaign = chaos.get("campaign")
    if campaign:
        parts.append("<h2>Chaos campaign</h2>")
        parts.append(
            f"<p>Seed <code>{campaign.get('seed')}</code>: "
            f"{campaign.get('runs', 0)} sampled specs, "
            f"{campaign.get('violations', 0)} violation(s), "
            f"{campaign.get('wall_s', 0.0):.1f}s wall.</p>")
        rows = chaos_campaign_rows(campaign)
        classes = ["ok" if row[-1] == "ok" else "breach" for row in rows]
        parts.append(_html_table(
            ["case", "spec", "digest", "events", "verdict"], rows,
            classes=classes))
        findings = campaign.get("findings") or []
        if findings:
            parts.append("<h3>Shrunk findings</h3>")
            parts.append(_html_table(
                ["found", "shrunk to", "attempts", "violations", "bundle"],
                [[f.get("found", {}).get("describe", "?"),
                  f.get("shrunk_describe", "?"),
                  f.get("shrink_attempts", 0),
                  ", ".join(f.get("shrunk_violations") or []),
                  f.get("bundle") or "-"] for f in findings]))
    corpus = chaos.get("corpus")
    if corpus:
        parts.append("<h2>Failure corpus</h2>")
        classes = ["ok" if v.get("ok") else "breach" for v in corpus]
        parts.append(_html_table(
            ["bundle", "barrier (s)", "events", "verdict"],
            [[v.get("bundle", "?"),
              "-" if v.get("barrier_time") is None else v["barrier_time"],
              "-" if v.get("barrier_fired") is None else v["barrier_fired"],
              "replayed (digest match)" if v.get("ok")
              else (v.get("error") or "failed")] for v in corpus],
            classes=classes))
    return "".join(parts)


def _render_shards_section(shards: Dict[str, Any]) -> str:
    """The "Shards" report section (federation summary + per-shard rows).

    ``shards`` is the summary dict built from a
    :class:`~repro.shard.driver.FederationResult`: scalar run facts plus
    per-shard ``rows``.
    """
    parts: List[str] = ["<h2>Shards</h2>"]
    facts: List[str] = []
    if shards.get("shards") is not None:
        facts.append(f"{shards['shards']} shard(s)")
    if shards.get("workers") is not None:
        facts.append(f"{shards['workers']} worker(s)")
    if shards.get("windows") is not None:
        facts.append(f"{shards['windows']} lookahead window(s)")
    if shards.get("lookahead") is not None:
        facts.append(f"W={shards['lookahead']:g}s")
    if shards.get("devices"):
        facts.append(f"{shards['devices']:,} devices")
    if shards.get("wall_s") is not None:
        facts.append(f"{shards['wall_s']:.1f}s wall")
    if facts:
        parts.append(f"<p>{_html.escape(', '.join(facts))}.</p>")
    rows = shards.get("rows") or []
    if rows:
        parts.append(_html_table(
            ["shard", "domains", "events", "wall (s)", "sync wait (s)",
             "mailbox peak", "injected", "digest"],
            [[row.get("shard"),
              ", ".join(row.get("domains") or []),
              row.get("events"),
              "-" if row.get("wall_s") is None else f"{row['wall_s']:.2f}",
              ("-" if row.get("sync_wait_s") is None
               else f"{row['sync_wait_s']:.2f}"),
              row.get("mailbox_peak"),
              row.get("injected"),
              (row.get("digest") or "-")[:16]] for row in rows]))
    digest = shards.get("federation_digest")
    if digest:
        parts.append(
            f"<p>Federation digest: <code>{_html.escape(str(digest))}</code> "
            "(verify with <code>python -m repro shard verify</code>).</p>")
    return "".join(parts)


def write_chaos_report(path: PathLike, title: str,
                       campaign: Optional[Dict[str, Any]] = None,
                       corpus: Optional[List[Dict[str, Any]]] = None) -> int:
    """Standalone self-contained HTML page for a chaos campaign/corpus."""
    body = _render_chaos_section({"campaign": campaign, "corpus": corpus})
    document = (
        "<!DOCTYPE html><html><head><meta charset=\"utf-8\">"
        f"<title>{_html.escape(title)}</title>"
        f"<style>{_HTML_STYLE}</style></head><body>"
        f"<h1>{_html.escape(title)}</h1>"
        f"{body}"
        "<footer>Generated by <code>python -m repro chaos</code> — all data "
        "derives deterministically from the campaign seed.</footer>"
        "</body></html>"
    )
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(document)
    return len(document.encode("utf-8"))


def render_html_report(
    title: str,
    kpi_report: Any,
    slo_monitor: Any = None,
    availability_per_device: Optional[Dict[str, float]] = None,
    network_kinds: Optional[Dict[str, StreamingHistogram]] = None,
    per_source: Optional[Dict[str, List[int]]] = None,
    incidents: Optional[List[Dict[str, Any]]] = None,
    telemetry: Optional[Dict[str, Any]] = None,
    bench_trajectory: Optional[List[List[Any]]] = None,
    profile: Optional[Dict[str, Any]] = None,
    chaos: Optional[Dict[str, Any]] = None,
    shards: Optional[Dict[str, Any]] = None,
    refresh: Optional[float] = None,
) -> str:
    """Build the self-contained HTML resilience report.

    ``refresh`` (seconds) adds a ``<meta http-equiv="refresh">`` tag --
    the live telemetry server serves an auto-refreshing dashboard from
    the same renderer the file exporter uses.

    ``kpi_report`` is a :class:`~repro.observability.kpis.KpiReport`;
    ``slo_monitor`` (optional) a :class:`~repro.observability.slo.SloMonitor`.
    Everything (style included) is inlined: the file opens anywhere, no
    network access, no external assets.

    ``incidents`` entries are dicts with ``reason``, ``time`` and the
    diagnosis ``rows`` (:meth:`~repro.observability.diagnosis.Diagnosis.table_rows`),
    plus an optional ``bundle`` path.  ``telemetry`` is a
    :func:`~repro.observability.overhead.telemetry_health` dict;
    ``bench_trajectory`` rows come from :func:`bench_trajectory_rows`;
    ``profile`` is a :func:`~repro.observability.profile.capture_profile`
    snapshot rendered as the "Profile" section (per-plane cost
    attribution + request critical-path breakdown).

    ``kpi_report`` may be ``None`` for federation-level reports (a
    sharded run has per-shard systems but no single-system KPI report);
    ``shards`` (the federation summary dict) then renders the "Shards"
    table standalone.
    """
    parts: List[str] = []
    if kpi_report is not None:
        headline = [
            ("availability", kpi_report.availability, "{:.4f}"),
            ("worst device", kpi_report.worst_availability, "{:.4f}"),
            ("degraded time (s)", kpi_report.degraded_time, "{:.1f}"),
            ("disruptions", len(kpi_report.arcs), "{}"),
            ("SLO alerts", kpi_report.alerts, "{}"),
            ("violations", kpi_report.violations, "{}"),
        ]
        tiles = []
        for label, value, fmt in headline:
            rendered = "-" if value is None else fmt.format(value)
            tiles.append(
                f'<div class="kpi"><div class="value">{rendered}</div>'
                f'<div class="label">{_html.escape(label)}</div></div>')
        parts.append(f'<div class="kpi-grid">{"".join(tiles)}</div>')

        parts.append("<h2>Resilience KPIs by disruption vector</h2>")
        parts.append(_html_table(
            ["vector", "faults", "resolved", "MTTD mean (s)", "MTTR mean (s)",
             "msgs/disruption", "disrupted time (s)"],
            kpi_report.vector_rows()))

    if shards:
        parts.append(_render_shards_section(shards))

    if slo_monitor is not None:
        parts.append("<h2>SLOs</h2>")
        rows = slo_monitor.table_rows()
        classes = ["breach" if row[-1] == "BREACH" else "ok" for row in rows]
        parts.append(_html_table(
            ["SLO", "kind", "objective", "measured", "burn rate", "status"],
            rows, classes=classes))
        parts.append(
            f"<p>{slo_monitor.evaluations} evaluations, "
            f"{slo_monitor.breach_events} breach event(s).</p>")

    if network_kinds:
        parts.append("<h2>Message latency by kind</h2>")
        parts.append(_html_table(
            ["kind", "delivered", "mean (s)", "p50 (s)", "p99 (s)", "max (s)"],
            [[kind, hist.count, hist.mean, hist.quantile(0.5),
              hist.quantile(0.99), hist.max]
             for kind, hist in sorted(network_kinds.items())
             if hist.count]))

    if per_source:
        total_msgs = sum(entry[0] for entry in per_source.values()) or 1
        parts.append("<h2>Messages by source</h2>")
        parts.append(_html_table(
            ["source", "messages", "bytes", "share"],
            [[src, entry[0], entry[1], f"{entry[0] / total_msgs:.1%}"]
             for src, entry in sorted(per_source.items(),
                                      key=lambda kv: -kv[1][0])]))

    security = getattr(kpi_report, "security", None)
    if security:
        parts.append("<h2>Security</h2>")
        parts.append(_html_table(
            ["signal", "value"],
            [["compromised nodes", ", ".join(security.get("compromised", [])) or "-"],
             ["quarantined nodes", ", ".join(security.get("quarantined", [])) or "-"],
             ["distrusted nodes", ", ".join(security.get("distrusted", [])) or "-"],
             ["key rotations", security.get("key_rotations", 0)],
             ["auth drops", security.get("dropped_auth", 0)],
             ["quarantine drops", security.get("dropped_quarantined", 0)]]))
        trust = security.get("trust") or {}
        if trust:
            parts.append(_html_table(
                ["node", "aggregate trust"],
                [[node, f"{score:.3f}"] for node, score in sorted(trust.items())]))

    if kpi_report is not None and kpi_report.convergence:
        parts.append("<h2>Protocol convergence</h2>")
        parts.append(_html_table(
            ["protocol", "rounds", "mean (s)", "p95 (s)", "max (s)"],
            [[name, int(stats["rounds"]), stats["mean"], stats["p95"],
              stats["max"]]
             for name, stats in sorted(kpi_report.convergence.items())]))

    if availability_per_device:
        parts.append("<h2>Per-device availability</h2>")
        bar_rows = []
        for device, value in sorted(availability_per_device.items()):
            width = max(0.0, min(1.0, value)) * 100.0
            bar = (f'<div class="bar"><span style="width:{width:.1f}%">'
                   f"</span></div> {value:.4f}")
            bar_rows.append(f"<tr><td>{_html.escape(device)}</td>"
                            f"<td>{bar}</td></tr>")
        parts.append("<table><thead><tr><th>device</th><th>availability</th>"
                     f"</tr></thead><tbody>{''.join(bar_rows)}</tbody></table>")

    if kpi_report is not None and kpi_report.arcs:
        parts.append("<h2>Disruption arcs</h2>")
        parts.append(_html_table(
            ["fault", "vector", "injected at (s)", "MTTD (s)", "MTTR (s)",
             "messages", "resolved"],
            [[arc.fault, arc.vector.value, arc.injected_at,
              "-" if arc.mttd is None else arc.mttd,
              "-" if arc.mttr is None else arc.mttr,
              arc.messages, "yes" if arc.resolved else "no"]
             for arc in kpi_report.arcs]))

    if incidents:
        parts.append("<h2>Incidents</h2>")
        for incident in incidents:
            reason = incident.get("reason", "?")
            time = incident.get("time", 0.0)
            parts.append(
                f'<p class="breach">Trigger: {_html.escape(str(reason))} '
                f"at t={time:g}s.</p>")
            rows = incident.get("rows") or []
            if rows:
                parts.append(_html_table(
                    ["rank", "kind", "subject", "t (s)", "score", "summary"],
                    rows))
            bundle = incident.get("bundle")
            if bundle:
                parts.append(
                    f"<p>Bundle: <code>{_html.escape(str(bundle))}</code> "
                    "(replay with <code>python -m repro incident replay"
                    "</code>).</p>")

    if telemetry:
        parts.append("<h2>Telemetry budget</h2>")
        trace_h = telemetry.get("trace", {})
        spans_h = telemetry.get("spans", {})
        series_h = telemetry.get("series", {})
        rows = [
            ["trace events buffered", trace_h.get("events", 0)],
            ["trace ring-buffer drops", trace_h.get("dropped", 0)],
            ["trace subscriber errors", trace_h.get("subscriber_errors", 0)],
            ["spans retained", spans_h.get("recorded", 0)],
            ["spans retained (approx bytes)", spans_h.get("approx_bytes", 0)],
            ["spans sampled out", spans_h.get("sampled_out", 0)],
            ["metric series", series_h.get("count", 0)],
            ["metric points retained", series_h.get("points", 0)],
        ]
        sampling = spans_h.get("sampling")
        if sampling:
            rows.append(["span sampling rate", sampling.get("rate")])
        overhead = telemetry.get("overhead")
        if overhead:
            rows.extend([
                ["telemetry records", overhead.get("records", 0)],
                ["recording wall time (s)",
                 overhead.get("recording_wall_s", 0.0)],
            ])
            fraction = overhead.get("recording_fraction")
            if fraction is not None:
                rows.append(["recording fraction of run", f"{fraction:.2%}"])
        parts.append(_html_table(["signal", "value"], rows))

    if profile:
        from repro.observability.profile import (
            profile_plane_rows,
            profile_segment_rows,
        )

        parts.append("<h2>Profile</h2>")
        plane_rows = profile_plane_rows(profile)
        if plane_rows:
            parts.append(_html_table(
                ["plane", "events", "wall (ms)", "share", "mean (µs)",
                 "queue lag (s)"],
                plane_rows))
        kernel = profile.get("kernel")
        if kernel:
            parts.append(
                f"<p>{kernel['events']} kernel events, "
                f"{kernel['busy_ms']:.1f} ms busy, mean queue depth "
                f"{kernel['mean_queue_depth']:.1f} "
                f"(max {kernel['max_queue_depth']}).</p>")
        segment_rows = profile_segment_rows(profile)
        if segment_rows:
            parts.append("<h2>Request critical path</h2>")
            parts.append(_html_table(
                ["segment", "summed time (s)", "share"], segment_rows))
            critical = profile["critical_path"]
            parts.append(
                f"<p>{critical['requests']} requests "
                f"({critical['failed']} failed), mean latency "
                f"{critical['mean_latency_s'] * 1e3:.2f} ms; dominant "
                f"segment: <strong>{_html.escape(str(critical['dominant_segment']))}"
                "</strong>.</p>")
            top = critical.get("top") or []
            if top:
                parts.append(_html_table(
                    ["trace", "request", "status", "latency (ms)", "queue (ms)",
                     "service (ms)", "network (ms)", "retry (ms)", "attempts"],
                    [[row["trace_id"], row["name"], row["status"],
                      row["latency_s"] * 1e3,
                      row["segments"]["queue"] * 1e3,
                      row["segments"]["service"] * 1e3,
                      row["segments"]["network"] * 1e3,
                      row["segments"]["retry"] * 1e3,
                      row["attempts"]] for row in top]))

    if chaos:
        parts.append(_render_chaos_section(chaos))

    if bench_trajectory:
        parts.append("<h2>Bench trajectory</h2>")
        parts.append(_html_table(
            ["metric", "first", "last", "drift", "drift %"],
            bench_trajectory))

    body = "".join(parts)
    meta_refresh = (f'<meta http-equiv="refresh" content="{refresh:g}">'
                    if refresh else "")
    if kpi_report is not None:
        horizon_line = f"<p>Simulated horizon: {kpi_report.horizon:.1f}s.</p>"
    elif shards and shards.get("horizon") is not None:
        horizon_line = (f"<p>Simulated horizon: {shards['horizon']:.1f}s "
                        f"across {shards.get('shards', '?')} shard(s).</p>")
    else:
        horizon_line = ""
    return (
        "<!DOCTYPE html><html><head><meta charset=\"utf-8\">"
        f"{meta_refresh}"
        f"<title>{_html.escape(title)}</title>"
        f"<style>{_HTML_STYLE}</style></head><body>"
        f"<h1>{_html.escape(title)}</h1>"
        f"{horizon_line}"
        f"{body}"
        "<footer>Generated by <code>python -m repro report</code> — all data "
        "derives deterministically from the run's seed.</footer>"
        "</body></html>"
    )


def write_html_report(
    path: PathLike,
    title: str,
    kpi_report: Any,
    slo_monitor: Any = None,
    availability_per_device: Optional[Dict[str, float]] = None,
    network_kinds: Optional[Dict[str, StreamingHistogram]] = None,
    per_source: Optional[Dict[str, List[int]]] = None,
    incidents: Optional[List[Dict[str, Any]]] = None,
    telemetry: Optional[Dict[str, Any]] = None,
    bench_trajectory: Optional[List[List[Any]]] = None,
    profile: Optional[Dict[str, Any]] = None,
    chaos: Optional[Dict[str, Any]] = None,
    shards: Optional[Dict[str, Any]] = None,
) -> int:
    """Write the HTML resilience report; returns bytes written."""
    document = render_html_report(
        title, kpi_report, slo_monitor=slo_monitor,
        availability_per_device=availability_per_device,
        network_kinds=network_kinds, per_source=per_source,
        incidents=incidents, telemetry=telemetry,
        bench_trajectory=bench_trajectory, profile=profile, chaos=chaos,
        shards=shards)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(document)
    return len(document.encode("utf-8"))

"""Exporters: JSONL, Chrome trace-event, metrics and profile snapshots.

Spans and trace events are simulator-domain data; these functions turn
them into artifacts standard tooling reads:

* ``write_spans_jsonl`` / ``write_events_jsonl`` -- one JSON object per
  line, grep/jq-friendly, stable field order.
* ``write_chrome_trace`` -- the Trace Event Format consumed by
  ``chrome://tracing`` and https://ui.perfetto.dev: spans become complete
  ("X") slices on one thread per category, trace events become instants.
  Simulated seconds are mapped to microseconds so one trace-viewer "us"
  equals one simulated microsecond.
* ``write_metrics_snapshot`` / ``write_profile`` -- JSON dumps of the
  :meth:`MetricsRecorder.snapshot` and :meth:`Instrument.report` dicts.

All writers take a path, write atomically-enough (single open/write), and
return the number of records written so CLIs can report artifact sizes.
"""

from __future__ import annotations

import json
from typing import IO, Any, Dict, Iterable, List, Optional, Union

from repro.observability.instrument import Instrument
from repro.observability.spans import Span
from repro.simulation.metrics import MetricsRecorder
from repro.simulation.trace import TraceEvent

PathLike = Union[str, "os.PathLike[str]"]  # noqa: F821 - typing alias only

_US = 1e6  # simulated seconds -> trace-viewer microseconds


def _default(obj: Any) -> str:
    """Fallback serializer: repr anything JSON doesn't know (sets, objects)."""
    if isinstance(obj, (set, frozenset)):
        return sorted(obj)  # type: ignore[return-value]
    return repr(obj)


def write_spans_jsonl(spans: Iterable[Span], path: PathLike) -> int:
    """One span per line; returns the number of spans written."""
    count = 0
    with open(path, "w", encoding="utf-8") as fh:
        for span in spans:
            fh.write(json.dumps(span.to_dict(), default=_default) + "\n")
            count += 1
    return count


def event_to_dict(event: TraceEvent) -> Dict[str, Any]:
    return {
        "time": event.time,
        "category": event.category,
        "name": event.name,
        "subject": event.subject,
        "attrs": event.attrs,
    }


def write_events_jsonl(events: Iterable[TraceEvent], path: PathLike) -> int:
    """One trace event per line; returns the number of events written."""
    count = 0
    with open(path, "w", encoding="utf-8") as fh:
        for event in events:
            fh.write(json.dumps(event_to_dict(event), default=_default) + "\n")
            count += 1
    return count


def chrome_trace_events(
    spans: Iterable[Span] = (),
    events: Iterable[TraceEvent] = (),
) -> List[Dict[str, Any]]:
    """Build the Trace Event Format record list for spans + trace events.

    Each span/event category gets its own named thread so Perfetto's track
    view groups the stack layer by layer (messages, mape, faults, ...).
    """
    records: List[Dict[str, Any]] = [
        {"ph": "M", "name": "process_name", "pid": 1, "tid": 0,
         "args": {"name": "repro simulation"}},
    ]
    tids: Dict[str, int] = {}

    def tid_for(category: str) -> int:
        tid = tids.get(category)
        if tid is None:
            tid = tids[category] = len(tids) + 1
            records.append({
                "ph": "M", "name": "thread_name", "pid": 1, "tid": tid,
                "args": {"name": category},
            })
        return tid

    for span in spans:
        end = span.end if span.end is not None else span.start
        args = {"trace_id": span.trace_id, "span_id": span.span_id,
                "status": span.status}
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        args.update({k: repr(v) if not isinstance(v, (int, float, str, bool, type(None))) else v
                     for k, v in span.attrs.items()})
        records.append({
            "ph": "X",
            "name": span.name,
            "cat": span.category,
            "ts": span.start * _US,
            "dur": max((end - span.start) * _US, 1.0),
            "pid": 1,
            "tid": tid_for(span.category),
            "args": args,
        })
    for event in events:
        args = {"subject": event.subject}
        args.update({k: repr(v) if not isinstance(v, (int, float, str, bool, type(None))) else v
                     for k, v in event.attrs.items()})
        records.append({
            "ph": "i",
            "name": event.name,
            "cat": event.category,
            "ts": event.time * _US,
            "pid": 1,
            "tid": tid_for(f"events:{event.category}"),
            "s": "t",
            "args": args,
        })
    return records


def write_chrome_trace(
    path: PathLike,
    spans: Iterable[Span] = (),
    events: Iterable[TraceEvent] = (),
) -> int:
    """Write a chrome://tracing / Perfetto-loadable JSON file."""
    records = chrome_trace_events(spans=spans, events=events)
    payload = {"traceEvents": records, "displayTimeUnit": "ms"}
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, default=_default)
    return len(records)


def write_metrics_snapshot(metrics: MetricsRecorder, path: PathLike) -> Dict[str, Any]:
    """Dump ``metrics.snapshot()`` (series summaries + counters) as JSON."""
    snapshot = metrics.snapshot()
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(snapshot, fh, indent=2, sort_keys=True, default=_default)
    return snapshot


def write_profile(instrument: Optional[Instrument], path: PathLike) -> Dict[str, Any]:
    """Dump the kernel profile report as JSON (empty report if detached)."""
    report = instrument.report() if instrument is not None else {"events": 0}
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True, default=_default)
    return report

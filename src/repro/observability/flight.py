"""Flight recorder: the always-on black box behind every gated run.

When a CLI gate, SLO monitor or determinism check fails, the boolean
exit code used to be all that survived -- the spans, series and journal
tail that explain the failure died with the process.  A
:class:`FlightRecorder` fixes that: armed on a live system, it watches
the trace for trigger events (SLO breaches, harness crashes), chains
into the kernel's ``on_event`` observer to sample queue depths and to
pin evidence to an exact inter-event barrier, and on demand dumps a
self-contained *incident bundle*:

``manifest.json``
    Trigger(s), barrier (time / fired / digest), scenario spec, the
    ranked causal chain from :mod:`~repro.observability.diagnosis`, a
    telemetry-health snapshot and an evidence inventory.
``checkpoint.json``
    A standard persistence checkpoint at the barrier, so ``python -m
    repro incident replay <bundle>`` deterministically reproduces the
    triggering window with :func:`~repro.persistence.runner.fast_forward`
    and verifies the whole-system digest bit-for-bit.
``events.jsonl`` / ``spans.jsonl`` / ``metrics.json`` /
``queue_depth.json`` / ``knowledge.json`` / ``trust.json``
    Bounded telemetry tails: recent trace events, recent spans, the last
    points of every metric series plus all counters, a kernel
    queue-depth ring, per-loop MAPE knowledge snapshots and the security
    plane's trust scores.
``journal.jsonl``
    The run's event journal (copied, or written in place by the gate
    helpers), replayable with the existing persistence machinery.

Digest discipline: the recorder NEVER emits trace events or increments
counters -- both feed :func:`~repro.persistence.snapshot.system_digest`,
and an armed flight recorder must not make a journaled run diverge from
an unarmed one.  Everything it captures is read-only observation.
"""

from __future__ import annotations

import json
import os
import shutil
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional

from repro.observability.diagnosis import Diagnosis, diagnose
from repro.observability.export import event_to_dict
from repro.observability.overhead import telemetry_health
from repro.persistence.checkpoint import Checkpoint, CheckpointError
from repro.persistence.scenarios import ScenarioSpec, prepare
from repro.persistence.snapshot import system_digest, system_snapshot

MANIFEST_NAME = "manifest.json"
BUNDLE_VERSION = 1

#: Trigger classes a bundle's manifest may carry.
TRIGGER_REASONS = ("slo-breach", "gate-failure", "harness-crash",
                   "replay-divergence", "exception")


class FlightError(RuntimeError):
    """Raised for misuse (capturing without a trigger) or bad bundles."""


@dataclass
class IncidentTrigger:
    """One reason the flight recorder decided this run is an incident."""

    reason: str
    time: float
    fired: int
    detail: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {"reason": self.reason, "time": self.time,
                "fired": self.fired, "detail": dict(self.detail)}


def _json_default(obj: Any) -> Any:
    if isinstance(obj, (set, frozenset)):
        return sorted(obj)
    return repr(obj)


def _write_json(path: str, payload: Any) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True,
                  default=_json_default)
        fh.write("\n")


class FlightRecorder:
    """Bounded black box over one live :class:`~repro.core.system.IoTSystem`.

    Parameters
    ----------
    system:
        The live system to observe.
    spec:
        The run's :class:`~repro.persistence.scenarios.ScenarioSpec`, when
        known.  Required for the bundle to carry a replayable checkpoint;
        without it the bundle still holds telemetry tails and a diagnosis.
    loops:
        MAPE loops whose knowledge bases should be snapshotted.
    window:
        Diagnosis lookback in simulated seconds.
    max_events / max_spans / series_tail:
        Evidence bounds: recent trace events, recent spans, and trailing
        points per metric series kept in the bundle.
    queue_sample_every / queue_samples:
        Kernel queue depth is sampled every Nth fired event into a ring
        of the given size.
    """

    def __init__(self, system: Any, spec: Optional[ScenarioSpec] = None,
                 loops: Optional[List[Any]] = None, window: float = 30.0,
                 max_events: int = 512, max_spans: int = 512,
                 series_tail: int = 50, queue_sample_every: int = 16,
                 queue_samples: int = 256) -> None:
        self.system = system
        self.spec = spec
        self.loops = list(loops or [])
        self.window = float(window)
        self.max_events = int(max_events)
        self.max_spans = int(max_spans)
        self.series_tail = int(series_tail)
        self.queue_sample_every = max(1, int(queue_sample_every))
        self.queue_samples = int(queue_samples)
        self.triggers: List[IncidentTrigger] = []
        self.armed = False
        self._pending = False
        self._evidence: Optional[Dict[str, Any]] = None
        self._events_seen = 0
        self._queue_ring: List[List[float]] = []
        self._prev_observer: Optional[Callable[[Any], None]] = None
        self._unsubscribe: Optional[Callable[[], None]] = None

    # ------------------------------------------------------------------ #
    # Arming and trigger detection
    # ------------------------------------------------------------------ #
    def arm(self) -> "FlightRecorder":
        """Hook the trace log and the kernel observer chain.

        The previous ``on_event`` observer (typically a journaling
        :class:`~repro.persistence.runner.RunRecorder`) keeps running
        first, so the journal sees exactly the stream it would without a
        flight recorder attached.
        """
        if self.armed:
            return self
        self.armed = True
        self._unsubscribe = self.system.trace.subscribe(self._on_trace)
        self._prev_observer = self.system.sim.on_event
        self.system.sim.on_event = self._on_event
        return self

    def disarm(self) -> None:
        """Restore the observer chain and trace subscription."""
        if not self.armed:
            return
        self.armed = False
        if self._unsubscribe is not None:
            self._unsubscribe()
            self._unsubscribe = None
        if self.system.sim.on_event == self._on_event:
            self.system.sim.on_event = self._prev_observer
        self._prev_observer = None

    def _on_trace(self, event: Any) -> None:
        if event.category == "alert" and event.name == "slo-breach":
            self.trigger("slo-breach", detail={
                "subject": event.subject,
                "slo": event.attrs.get("slo"),
                "measured": event.attrs.get("measured"),
                "burn_rate": event.attrs.get("burn_rate"),
            }, time=event.time)
        elif event.category == "fault" and event.name == "harness-crash":
            self.trigger("harness-crash",
                         detail={"subject": event.subject}, time=event.time)

    def _on_event(self, event: Any) -> None:
        prev = self._prev_observer
        if prev is not None:
            prev(event)
        self._events_seen += 1
        if self._events_seen % self.queue_sample_every == 0:
            sim = self.system.sim
            if len(self._queue_ring) >= self.queue_samples:
                self._queue_ring.pop(0)
            self._queue_ring.append(
                [sim.now, float(sim.fired_count), float(sim.pending_count)])
        if self._pending and self._evidence is None:
            # First post-event boundary after the trigger: the exact
            # barrier fast_forward can reproduce (between events, digest
            # over post-event state).
            self._capture_evidence(exact=True)

    def trigger(self, reason: str, detail: Optional[Dict[str, Any]] = None,
                time: Optional[float] = None) -> IncidentTrigger:
        """Record a trigger; the first one pins the evidence barrier."""
        sim = self.system.sim
        trig = IncidentTrigger(
            reason=reason,
            time=sim.now if time is None else float(time),
            fired=sim.fired_count,
            detail=dict(detail or {}))
        self.triggers.append(trig)
        if len(self.triggers) == 1:
            self._pending = True
        return trig

    @property
    def triggered(self) -> bool:
        return bool(self.triggers)

    @property
    def diagnosis(self) -> Optional[Diagnosis]:
        """The captured causal chain, once evidence exists."""
        if self._evidence is None:
            return None
        return self._evidence["diagnosis"]

    @contextmanager
    def guard(self) -> Iterator["FlightRecorder"]:
        """Convert an unhandled exception into an ``exception`` trigger.

        The exception is re-raised; the caller decides where (and
        whether) to :meth:`capture` the bundle.
        """
        try:
            yield self
        except Exception as exc:
            self.trigger("exception", detail={
                "type": type(exc).__name__, "message": str(exc)})
            raise

    # ------------------------------------------------------------------ #
    # Evidence capture
    # ------------------------------------------------------------------ #
    def finalize(self) -> None:
        """Capture evidence at the current (post-run) barrier if pending.

        Called after the run returns -- the kernel sits between events,
        so the barrier is exact; a post-run ``advance_to`` inside
        ``fast_forward`` reproduces a clock past the last fired event.
        """
        if self._pending and self._evidence is None:
            self._capture_evidence(exact=not self.system.sim._running)

    def _capture_evidence(self, exact: bool) -> None:
        system = self.system
        sim = system.sim
        trigger = self.triggers[0]
        barrier = {"time": sim.now, "fired": sim.fired_count,
                   "digest": system_digest(system), "exact": bool(exact)}
        checkpoint = None
        if self.spec is not None:
            checkpoint = Checkpoint(
                scenario=self.spec.to_dict(), time=sim.now,
                fired=sim.fired_count, digest=barrier["digest"],
                state=system_snapshot(system))
        events_tail = [event_to_dict(e)
                       for e in system.trace.events[-self.max_events:]]
        spans_tail = []
        if system.spans is not None:
            spans_tail = [s.to_dict()
                          for s in system.spans.spans[-self.max_spans:]]
        series: Dict[str, Any] = {}
        for name in system.metrics.series_names:
            ts = system.metrics.series(name)
            tail = list(zip(ts.times[-self.series_tail:],
                            ts.values[-self.series_tail:]))
            series[name] = {"kind": ts.kind, "total": len(ts),
                            "tail": [[t, v] for t, v in tail]}
        metrics = {
            "series": series,
            "counters": {name: system.metrics.counter(name)
                         for name in system.metrics.counter_names},
        }
        knowledge = {}
        for loop in self.loops:
            base = getattr(loop, "knowledge", None)
            if base is not None:
                knowledge[getattr(loop, "host", f"loop{len(knowledge)}")] = \
                    base.snapshot_state()
        trust = self._trust_snapshot()
        diagnosis = diagnose(system, trigger_time=trigger.time,
                             trigger_reason=trigger.reason,
                             window=self.window)
        self._evidence = {
            "barrier": barrier,
            "checkpoint": checkpoint,
            "events": events_tail,
            "spans": spans_tail,
            "metrics": metrics,
            "queue_depth": list(self._queue_ring),
            "knowledge": knowledge,
            "trust": trust,
            "diagnosis": diagnosis,
            "telemetry": telemetry_health(system),
        }

    def _trust_snapshot(self) -> Dict[str, Any]:
        plane = self.system.sim.context.get("security")
        if plane is None:
            return {}
        trust = getattr(plane, "trust", None)
        out: Dict[str, Any] = {
            "quarantined": list(getattr(plane, "quarantined", [])),
            "key_rotations": getattr(plane, "key_rotations", 0),
        }
        if trust is not None:
            # TrustRegistry exposes ``registered``/``flagged`` as
            # properties and ``distrusted``/``aggregate`` as methods.
            subjects = sorted(trust.registered)
            out["aggregate"] = {s: trust.aggregate(s) for s in subjects}
            out["distrusted"] = trust.distrusted()
            out["flagged"] = trust.flagged
        return out

    # ------------------------------------------------------------------ #
    # Bundle writing
    # ------------------------------------------------------------------ #
    def capture(self, directory: str,
                journal_path: Optional[str] = None) -> str:
        """Write the incident bundle into ``directory``; returns its path.

        ``journal_path`` (if given and outside ``directory``) is copied
        in as ``journal.jsonl`` so the bundle is self-contained.
        """
        if not self.triggered:
            raise FlightError("no trigger recorded; nothing to capture")
        if self._evidence is None:
            self.finalize()
        evidence = self._evidence
        if evidence is None:  # pragma: no cover - finalize always captures
            raise FlightError("evidence capture failed")
        os.makedirs(directory, exist_ok=True)
        bundle_journal = os.path.join(directory, "journal.jsonl")
        if journal_path and os.path.exists(journal_path):
            if os.path.abspath(journal_path) != os.path.abspath(bundle_journal):
                shutil.copyfile(journal_path, bundle_journal)
        checkpoint = evidence["checkpoint"]
        if checkpoint is not None:
            checkpoint.save(os.path.join(directory, "checkpoint.json"))
        with open(os.path.join(directory, "events.jsonl"), "w",
                  encoding="utf-8") as fh:
            for event in evidence["events"]:
                fh.write(json.dumps(event, default=_json_default) + "\n")
        with open(os.path.join(directory, "spans.jsonl"), "w",
                  encoding="utf-8") as fh:
            for span in evidence["spans"]:
                fh.write(json.dumps(span, default=_json_default) + "\n")
        _write_json(os.path.join(directory, "metrics.json"),
                    evidence["metrics"])
        _write_json(os.path.join(directory, "queue_depth.json"),
                    evidence["queue_depth"])
        _write_json(os.path.join(directory, "knowledge.json"),
                    evidence["knowledge"])
        _write_json(os.path.join(directory, "trust.json"),
                    evidence["trust"])
        diagnosis: Diagnosis = evidence["diagnosis"]
        manifest = {
            "version": BUNDLE_VERSION,
            "trigger": self.triggers[0].to_dict(),
            "additional_triggers": [t.to_dict() for t in self.triggers[1:]],
            "barrier": evidence["barrier"],
            "scenario": self.spec.to_dict() if self.spec else None,
            "diagnosis": diagnosis.to_dict(),
            "telemetry": evidence["telemetry"],
            "evidence": {
                "events": len(evidence["events"]),
                "spans": len(evidence["spans"]),
                "series": len(evidence["metrics"]["series"]),
                "queue_samples": len(evidence["queue_depth"]),
                "knowledge_bases": len(evidence["knowledge"]),
                "trust": bool(evidence["trust"]),
                "checkpoint": checkpoint is not None,
                "journal": os.path.exists(bundle_journal),
            },
        }
        _write_json(os.path.join(directory, MANIFEST_NAME), manifest)
        return directory


# --------------------------------------------------------------------------- #
# Bundle reading / replay
# --------------------------------------------------------------------------- #
def load_manifest(bundle: str) -> Dict[str, Any]:
    """Read and minimally validate a bundle's manifest."""
    path = os.path.join(bundle, MANIFEST_NAME)
    try:
        with open(path, encoding="utf-8") as fh:
            manifest = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        raise FlightError(f"{bundle}: not an incident bundle: {exc}") from exc
    if "trigger" not in manifest or "barrier" not in manifest:
        raise FlightError(f"{bundle}: manifest has no trigger/barrier")
    return manifest


def replay_incident(bundle: str) -> Dict[str, Any]:
    """Deterministically reproduce a bundle's triggering window.

    Loads the bundle's checkpoint, rebuilds the scenario from its
    embedded spec and :func:`~repro.persistence.runner.fast_forward`\\ s
    to the barrier -- stepping exactly ``fired`` events and verifying
    the whole-system digest bit-for-bit.  Returns a result dict; raises
    :class:`~repro.persistence.checkpoint.CheckpointError` on divergence
    and :class:`FlightError` when the bundle carries no checkpoint.
    """
    from repro.persistence.runner import fast_forward

    manifest = load_manifest(bundle)
    checkpoint_path = os.path.join(bundle, "checkpoint.json")
    if not os.path.exists(checkpoint_path):
        raise FlightError(
            f"{bundle}: no checkpoint (captured without a scenario spec); "
            "the triggering window cannot be replayed")
    checkpoint = Checkpoint.load(checkpoint_path)
    spec = ScenarioSpec.from_dict(checkpoint.scenario)
    prepared = prepare(spec)
    elapsed = fast_forward(prepared.system, checkpoint)
    return {
        "manifest": manifest,
        "spec": spec,
        "system": prepared.system,
        "barrier_time": checkpoint.time,
        "barrier_fired": checkpoint.fired,
        "digest": checkpoint.digest,
        "replay_wall_s": elapsed,
    }


# --------------------------------------------------------------------------- #
# Gate helpers: capture incidents for runs that were not flight-armed
# --------------------------------------------------------------------------- #
def capture_gate_incident(spec: ScenarioSpec, directory: str,
                          reason: str = "gate-failure",
                          detail: Optional[Dict[str, Any]] = None,
                          until: Optional[float] = None) -> str:
    """Re-run a failing gated scenario with the flight recorder armed.

    The traffic/security gates aggregate several variant runs and only
    know about a failure after the fact; this helper deterministically
    re-runs the *failing* variant's spec with journaling and a flight
    recorder attached, triggers at the horizon, and writes the bundle
    (journal included) into ``directory``.
    """
    from repro.persistence.journal import JournalWriter
    from repro.persistence.runner import RunRecorder, _drive_to_horizon

    prepared = prepare(spec)
    system = prepared.system
    os.makedirs(directory, exist_ok=True)
    journal_path = os.path.join(directory, "journal.jsonl")
    recorder = RunRecorder(system, JournalWriter(journal_path, spec.to_dict()))
    flight = FlightRecorder(system, spec=spec,
                            loops=prepared.aux.get("loops"))
    flight.arm()
    horizon = until if until is not None else prepared.horizon
    try:
        _drive_to_horizon(system, horizon)
    except BaseException:
        flight.disarm()
        recorder.abandon()
        raise
    flight.trigger(reason, detail=detail)
    flight.finalize()
    flight.disarm()
    recorder.finish()
    return flight.capture(directory, journal_path=journal_path)


def capture_divergence_incident(journal_path: str, report: Any,
                                directory: str) -> str:
    """Capture an incident bundle for a replay divergence.

    Rebuilds the journaled scenario, re-runs it to the divergence point
    (the recorded side's event count) with a flight recorder armed, and
    captures at that barrier with a ``replay-divergence`` trigger whose
    detail embeds both sides of the disagreement.  ``report`` is the
    :class:`~repro.persistence.replay.ReplayReport` the replay produced.
    """
    divergence = report.divergence
    if divergence is None:
        raise FlightError("replay report has no divergence to capture")
    spec = ScenarioSpec.from_dict(report.scenario)
    prepared = prepare(spec)
    system = prepared.system
    flight = FlightRecorder(system, spec=spec,
                            loops=prepared.aux.get("loops"))
    flight.arm()
    target = max(0, divergence.fired)
    while system.sim.fired_count < target:
        if not system.sim.step():
            break
    flight.trigger("replay-divergence", detail=divergence.to_dict())
    flight.finalize()
    flight.disarm()
    return flight.capture(directory, journal_path=journal_path)

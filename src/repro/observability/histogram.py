"""Memory-bounded streaming histograms.

Latency distributions over million-event runs cannot keep every sample;
a :class:`StreamingHistogram` keeps a *fixed* set of bucket counters
instead, so memory is O(buckets) regardless of how many observations are
folded in.  Histograms with identical bounds merge by counter addition,
which makes them safe to aggregate across shards/sites/runs -- the same
property Prometheus histograms rely on, and the exporters here emit them
in exactly that cumulative-``le`` form.

Quantiles are estimated by linear interpolation inside the bucket that
contains the target rank; exact ``min``/``max``/``sum`` are tracked on
the side so headline numbers stay sample-accurate even though the
distribution body is bucketed.
"""

from __future__ import annotations

import bisect
import math
from typing import Dict, List, Optional, Sequence


def log_bounds(
    low: float = 1e-4, high: float = 1e3, per_decade: int = 4
) -> List[float]:
    """Log-spaced bucket upper bounds covering ``[low, high]``.

    The defaults span 100 microseconds to ~17 minutes of simulated time
    with four buckets per decade -- wide enough for message latencies and
    repair times alike at ~28 counters.
    """
    if low <= 0 or high <= low:
        raise ValueError(f"need 0 < low < high, got low={low} high={high}")
    if per_decade < 1:
        raise ValueError("per_decade must be >= 1")
    n = int(math.ceil(math.log10(high / low) * per_decade))
    return [low * 10 ** (i / per_decade) for i in range(n + 1)]


class StreamingHistogram:
    """Fixed-bucket histogram: O(log buckets) observe, O(buckets) memory.

    ``bounds`` are the inclusive upper edges of the finite buckets, in
    strictly increasing order; values above the last bound land in an
    implicit overflow bucket (counted, and bounded above by ``max``).
    """

    __slots__ = ("bounds", "counts", "overflow", "count", "total", "_min", "_max")

    def __init__(self, bounds: Optional[Sequence[float]] = None) -> None:
        edges = list(bounds) if bounds is not None else log_bounds()
        if not edges:
            raise ValueError("histogram needs at least one bucket bound")
        if any(nxt <= prev for prev, nxt in zip(edges, edges[1:])):
            raise ValueError("bucket bounds must be strictly increasing")
        self.bounds: List[float] = edges
        self.counts: List[int] = [0] * len(edges)
        self.overflow = 0
        self.count = 0
        self.total = 0.0
        self._min = math.inf
        self._max = -math.inf

    # -- accumulation ---------------------------------------------------- #
    def observe(self, value: float, weight: int = 1) -> None:
        """Fold one observation (``weight`` identical observations) in."""
        if weight <= 0:
            raise ValueError("weight must be positive")
        value = float(value)
        idx = bisect.bisect_left(self.bounds, value)
        if idx < len(self.bounds):
            self.counts[idx] += weight
        else:
            self.overflow += weight
        self.count += weight
        self.total += value * weight
        self._min = min(self._min, value)
        self._max = max(self._max, value)

    def merge(self, other: "StreamingHistogram") -> "StreamingHistogram":
        """Fold ``other`` into self (bounds must match); returns self."""
        if other.bounds != self.bounds:
            raise ValueError("cannot merge histograms with different bounds")
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.overflow += other.overflow
        self.count += other.count
        self.total += other.total
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)
        return self

    # -- statistics ------------------------------------------------------ #
    @property
    def min(self) -> Optional[float]:
        return self._min if self.count else None

    @property
    def max(self) -> Optional[float]:
        return self._max if self.count else None

    @property
    def mean(self) -> Optional[float]:
        return (self.total / self.count) if self.count else None

    def quantile(self, q: float) -> Optional[float]:
        """Estimated quantile ``q`` in [0, 1]; None when empty.

        Interpolates linearly within the containing bucket, clamped to
        the exact observed min/max so estimates never exceed the data.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile q={q} out of [0, 1]")
        if self.count == 0:
            return None
        target = q * self.count
        cumulative = 0.0
        for i, bucket_count in enumerate(self.counts):
            if not bucket_count:
                continue
            cumulative += bucket_count
            if cumulative >= target:
                upper = self.bounds[i]
                lower = self.bounds[i - 1] if i > 0 else min(self._min, upper)
                lower = max(lower, min(self._min, upper))
                # Position of the target rank inside this bucket.
                frac = 1.0 - (cumulative - target) / bucket_count
                estimate = lower + (upper - lower) * frac
                return max(self._min, min(self._max, estimate))
        return self._max  # target rank sits in the overflow bucket

    # -- export ----------------------------------------------------------- #
    def cumulative_counts(self) -> List[int]:
        """Prometheus-style cumulative counts per ``le`` bound (no +Inf)."""
        out, running = [], 0
        for c in self.counts:
            running += c
            out.append(running)
        return out

    def to_dict(self) -> Dict[str, object]:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "overflow": self.overflow,
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "StreamingHistogram":
        hist = cls(bounds=data["bounds"])  # type: ignore[arg-type]
        counts = list(data["counts"])  # type: ignore[arg-type]
        if len(counts) != len(hist.counts):
            raise ValueError("counts length does not match bounds")
        hist.counts = [int(c) for c in counts]
        hist.overflow = int(data.get("overflow", 0))
        hist.count = int(data["count"])
        hist.total = float(data["sum"])
        if data.get("min") is not None:
            hist._min = float(data["min"])  # type: ignore[arg-type]
        if data.get("max") is not None:
            hist._max = float(data["max"])  # type: ignore[arg-type]
        return hist

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"StreamingHistogram(count={self.count}, mean={self.mean}, "
                f"buckets={len(self.bounds)})")

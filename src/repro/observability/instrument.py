"""Kernel instrumentation: a profiler for the DES hot path.

An :class:`Instrument` attached to a :class:`~repro.simulation.kernel.Simulator`
records, per fired event, the *wall-clock* time its callback took, keyed by
the event's label.  Aggregation happens inline (a dict update per event),
so million-event runs profile in O(labels) memory; the kernel pays a single
``is None`` check per event when no instrument is attached.

Labels group naturally by subsystem because the codebase already labels
its events (``mape:edge0``, ``gossip:n3``, ``deliver:raft.append_entries``);
:meth:`Instrument.report` additionally rolls labels up by their prefix
before ``:`` so a profile reads as a per-subsystem cost table.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Dict, Optional


class LabelStats:
    """Aggregate wall-clock cost of events sharing one label."""

    __slots__ = ("count", "total_s", "max_s")

    def __init__(self) -> None:
        self.count = 0
        self.total_s = 0.0
        self.max_s = 0.0

    def add(self, seconds: float) -> None:
        self.count += 1
        self.total_s += seconds
        if seconds > self.max_s:
            self.max_s = seconds

    @property
    def mean_us(self) -> float:
        return (self.total_s / self.count) * 1e6 if self.count else 0.0

    def to_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "total_ms": self.total_s * 1e3,
            "mean_us": self.mean_us,
            "max_us": self.max_s * 1e6,
        }


class Instrument:
    """Per-event kernel profile: execution time, counts, queue depth.

    ``enabled`` can be flipped at runtime to bracket a region of interest;
    a disabled instrument costs the kernel one extra attribute check per
    event.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.events = 0
        self.total_busy_s = 0.0
        self.max_queue_depth = 0
        self._labels: Dict[str, LabelStats] = {}
        self._queue_depth_sum = 0
        self.first_event_time: Optional[float] = None
        self.last_event_time: Optional[float] = None
        # Optional OverheadMeter (repro.observability.overhead): accounts
        # the profiler's own cost when attached.
        self.meter: Optional[Any] = None

    # -- hot-path hook (called by Simulator.step) -------------------------- #
    def record(self, label: str, wall_seconds: float, queue_depth: int,
               sim_time: float) -> None:
        meter = self.meter
        started = perf_counter() if meter is not None else 0.0
        self.events += 1
        self.total_busy_s += wall_seconds
        self._queue_depth_sum += queue_depth
        if queue_depth > self.max_queue_depth:
            self.max_queue_depth = queue_depth
        stats = self._labels.get(label)
        if stats is None:
            stats = self._labels[label] = LabelStats()
        stats.add(wall_seconds)
        if self.first_event_time is None:
            self.first_event_time = sim_time
        self.last_event_time = sim_time
        if meter is not None:
            meter.instrument_count += 1
            meter.instrument_wall_s += perf_counter() - started

    # -- reporting --------------------------------------------------------- #
    @property
    def mean_queue_depth(self) -> float:
        return self._queue_depth_sum / self.events if self.events else 0.0

    def label_stats(self, label: str) -> Optional[LabelStats]:
        return self._labels.get(label)

    @property
    def labels(self) -> Dict[str, LabelStats]:
        return dict(self._labels)

    def by_subsystem(self) -> Dict[str, LabelStats]:
        """Roll label stats up by their ``prefix:`` subsystem key."""
        rolled: Dict[str, LabelStats] = {}
        for label, stats in self._labels.items():
            key = label.split(":", 1)[0] if label else "(unlabeled)"
            agg = rolled.get(key)
            if agg is None:
                agg = rolled[key] = LabelStats()
            agg.count += stats.count
            agg.total_s += stats.total_s
            agg.max_s = max(agg.max_s, stats.max_s)
        return rolled

    def report(self, top: int = 20) -> Dict[str, Any]:
        """A JSON-ready profile: totals, queue stats, hottest subsystems."""
        subsystems = sorted(
            self.by_subsystem().items(),
            key=lambda item: item[1].total_s,
            reverse=True,
        )
        hottest_labels = sorted(
            self._labels.items(), key=lambda item: item[1].total_s, reverse=True
        )[:top]
        return {
            "events": self.events,
            "busy_ms": self.total_busy_s * 1e3,
            "mean_event_us": (self.total_busy_s / self.events) * 1e6 if self.events else 0.0,
            "mean_queue_depth": self.mean_queue_depth,
            "max_queue_depth": self.max_queue_depth,
            "sim_time_span": (
                (self.last_event_time - self.first_event_time)
                if self.first_event_time is not None and self.last_event_time is not None
                else 0.0
            ),
            "subsystems": {name: stats.to_dict() for name, stats in subsystems},
            "hottest_labels": {label: stats.to_dict() for label, stats in hottest_labels},
        }

    def reset(self) -> None:
        self.events = 0
        self.total_busy_s = 0.0
        self.max_queue_depth = 0
        self._labels.clear()
        self._queue_depth_sum = 0
        self.first_event_time = None
        self.last_event_time = None

"""Kernel instrumentation: a profiler for the DES hot path.

An :class:`Instrument` attached to a :class:`~repro.simulation.kernel.Simulator`
records, per fired event, the *wall-clock* time its callback took, keyed by
the event's label.  Aggregation happens inline (a dict update per event),
so million-event runs profile in O(labels) memory; the kernel pays a single
``is None`` check per event when no instrument is attached.

Labels group naturally by subsystem because the codebase already labels
its events (``mape:edge0``, ``gossip:n3``, ``deliver:raft.append_entries``);
:meth:`Instrument.report` additionally rolls labels up by their prefix
before ``:`` so a profile reads as a per-subsystem cost table, and
:mod:`repro.observability.profile` classifies the same labels into
architectural planes (transport, coordination, mape, traffic, ...).

Distribution tracking is deliberately coarse: each label keeps a
32-bucket power-of-two histogram of event cost in microseconds, so the
hot path pays one ``bit_length`` and one list increment per event and
p50/p99 still land within a factor of ~1.4 of the truth -- plenty to
tell a 3us timer tick from a 300us MAPE iteration.

:meth:`Instrument.snapshot` captures a frozen copy of all counters;
two snapshots subtract (:meth:`InstrumentSnapshot.delta`) so a profiling
window can be bracketed mid-run -- e.g. "cost during the outage only" --
without resetting (and thereby losing) the cumulative run stats.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Dict, List, Optional

#: Power-of-two microsecond buckets: bucket ``i`` holds events costing
#: [2^(i-1), 2^i) us; bucket 0 holds sub-microsecond events.  31 buckets
#: reach ~18 minutes per event -- beyond anything a callback should do.
_N_BUCKETS = 32


class LabelStats:
    """Aggregate wall-clock cost of events sharing one label."""

    __slots__ = ("count", "total_s", "max_s", "queue_s", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total_s = 0.0
        self.max_s = 0.0
        # Simulated seconds events of this label waited in the kernel
        # queue between scheduling and firing (scheduling latency).
        self.queue_s = 0.0
        self.buckets: List[int] = [0] * _N_BUCKETS

    def add(self, seconds: float, queue_s: float = 0.0) -> None:
        self.count += 1
        self.total_s += seconds
        self.queue_s += queue_s
        if seconds > self.max_s:
            self.max_s = seconds
        index = int(seconds * 1e6).bit_length()
        self.buckets[index if index < _N_BUCKETS else _N_BUCKETS - 1] += 1

    @property
    def mean_us(self) -> float:
        return (self.total_s / self.count) * 1e6 if self.count else 0.0

    def quantile_us(self, q: float) -> float:
        """Approximate q-quantile of per-event cost in microseconds.

        Resolved to the geometric midpoint of the power-of-two bucket the
        rank falls in, so the estimate is within sqrt(2) of the true
        value -- the resolution a subsystem cost ranking needs, at O(1)
        record cost.
        """
        if not self.count:
            return 0.0
        rank = max(1, int(q * self.count + 0.999999))
        seen = 0
        for index, bucket in enumerate(self.buckets):
            seen += bucket
            if seen >= rank:
                if index == 0:
                    return 0.5
                return 2.0 ** (index - 0.5)
        return self.max_s * 1e6  # pragma: no cover - rank <= count

    @property
    def p50_us(self) -> float:
        return self.quantile_us(0.50)

    @property
    def p99_us(self) -> float:
        return self.quantile_us(0.99)

    def merge(self, other: "LabelStats") -> None:
        """Fold ``other`` into this aggregate (subsystem rollups)."""
        self.count += other.count
        self.total_s += other.total_s
        self.queue_s += other.queue_s
        if other.max_s > self.max_s:
            self.max_s = other.max_s
        for index, bucket in enumerate(other.buckets):
            if bucket:
                self.buckets[index] += bucket

    def copy(self) -> "LabelStats":
        clone = LabelStats()
        clone.count = self.count
        clone.total_s = self.total_s
        clone.max_s = self.max_s
        clone.queue_s = self.queue_s
        clone.buckets = list(self.buckets)
        return clone

    def minus(self, earlier: "LabelStats") -> "LabelStats":
        """Counter-wise difference (for window bracketing).

        ``max_s`` cannot be un-merged and is reported as the cumulative
        max -- an upper bound for the window, exact whenever the maximum
        fell inside it.
        """
        diff = LabelStats()
        diff.count = self.count - earlier.count
        diff.total_s = self.total_s - earlier.total_s
        diff.queue_s = self.queue_s - earlier.queue_s
        diff.max_s = self.max_s
        diff.buckets = [a - b for a, b in zip(self.buckets, earlier.buckets)]
        return diff

    def to_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "total_ms": self.total_s * 1e3,
            "mean_us": self.mean_us,
            "p50_us": self.p50_us,
            "p99_us": self.p99_us,
            "max_us": self.max_s * 1e6,
            "queue_s": self.queue_s,
        }


class InstrumentSnapshot:
    """A frozen copy of an :class:`Instrument`'s counters.

    Two snapshots bracket a profiling window: ``end.delta(start)`` is a
    new snapshot holding only the in-window costs, while the live
    instrument keeps accumulating -- nothing is reset, so whole-run and
    windowed views coexist.
    """

    __slots__ = ("events", "total_busy_s", "max_queue_depth",
                 "queue_depth_sum", "first_event_time", "last_event_time",
                 "labels")

    def __init__(self, events: int, total_busy_s: float,
                 max_queue_depth: int, queue_depth_sum: int,
                 first_event_time: Optional[float],
                 last_event_time: Optional[float],
                 labels: Dict[str, LabelStats]) -> None:
        self.events = events
        self.total_busy_s = total_busy_s
        self.max_queue_depth = max_queue_depth
        self.queue_depth_sum = queue_depth_sum
        self.first_event_time = first_event_time
        self.last_event_time = last_event_time
        self.labels = labels

    def delta(self, earlier: "InstrumentSnapshot") -> "InstrumentSnapshot":
        """Costs accrued between ``earlier`` and this snapshot."""
        labels: Dict[str, LabelStats] = {}
        for label, stats in self.labels.items():
            before = earlier.labels.get(label)
            window = stats.minus(before) if before is not None else stats.copy()
            if window.count:
                labels[label] = window
        return InstrumentSnapshot(
            events=self.events - earlier.events,
            total_busy_s=self.total_busy_s - earlier.total_busy_s,
            max_queue_depth=self.max_queue_depth,
            queue_depth_sum=self.queue_depth_sum - earlier.queue_depth_sum,
            first_event_time=earlier.last_event_time,
            last_event_time=self.last_event_time,
            labels=labels,
        )

    @property
    def mean_queue_depth(self) -> float:
        return self.queue_depth_sum / self.events if self.events else 0.0

    @property
    def sim_time_span(self) -> float:
        if self.first_event_time is None or self.last_event_time is None:
            return 0.0
        return self.last_event_time - self.first_event_time


class Instrument:
    """Per-event kernel profile: execution time, counts, queue depth.

    ``enabled`` can be flipped at runtime to bracket a region of interest;
    a disabled instrument costs the kernel one extra attribute check per
    event.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.events = 0
        self.total_busy_s = 0.0
        self.max_queue_depth = 0
        self._labels: Dict[str, LabelStats] = {}
        self._queue_depth_sum = 0
        self.first_event_time: Optional[float] = None
        self.last_event_time: Optional[float] = None
        # Optional OverheadMeter (repro.observability.overhead): accounts
        # the profiler's own cost when attached.
        self.meter: Optional[Any] = None

    # -- hot-path hook (called by Simulator.step) -------------------------- #
    def record(self, label: str, wall_seconds: float, queue_depth: int,
               sim_time: float, queue_lag_s: float = 0.0) -> None:
        meter = self.meter
        started = perf_counter() if meter is not None else 0.0
        self.events += 1
        self.total_busy_s += wall_seconds
        self._queue_depth_sum += queue_depth
        if queue_depth > self.max_queue_depth:
            self.max_queue_depth = queue_depth
        stats = self._labels.get(label)
        if stats is None:
            stats = self._labels[label] = LabelStats()
        stats.add(wall_seconds, queue_lag_s)
        if self.first_event_time is None:
            self.first_event_time = sim_time
        self.last_event_time = sim_time
        if meter is not None:
            meter.instrument_count += 1
            meter.instrument_wall_s += perf_counter() - started

    # -- reporting --------------------------------------------------------- #
    @property
    def mean_queue_depth(self) -> float:
        return self._queue_depth_sum / self.events if self.events else 0.0

    def label_stats(self, label: str) -> Optional[LabelStats]:
        return self._labels.get(label)

    @property
    def labels(self) -> Dict[str, LabelStats]:
        return dict(self._labels)

    def by_subsystem(self) -> Dict[str, LabelStats]:
        """Roll label stats up by their ``prefix:`` subsystem key."""
        rolled: Dict[str, LabelStats] = {}
        for label, stats in self._labels.items():
            key = label.split(":", 1)[0] if label else "(unlabeled)"
            agg = rolled.get(key)
            if agg is None:
                agg = rolled[key] = LabelStats()
            agg.merge(stats)
        return rolled

    def snapshot(self) -> InstrumentSnapshot:
        """Frozen copy of every counter; see :class:`InstrumentSnapshot`."""
        return InstrumentSnapshot(
            events=self.events,
            total_busy_s=self.total_busy_s,
            max_queue_depth=self.max_queue_depth,
            queue_depth_sum=self._queue_depth_sum,
            first_event_time=self.first_event_time,
            last_event_time=self.last_event_time,
            labels={label: stats.copy()
                    for label, stats in self._labels.items()},
        )

    def report(self, top: int = 20) -> Dict[str, Any]:
        """A JSON-ready profile: totals, queue stats, hottest subsystems."""
        subsystems = sorted(
            self.by_subsystem().items(),
            key=lambda item: item[1].total_s,
            reverse=True,
        )
        hottest_labels = sorted(
            self._labels.items(), key=lambda item: item[1].total_s, reverse=True
        )[:top]
        return {
            "events": self.events,
            "busy_ms": self.total_busy_s * 1e3,
            "mean_event_us": (self.total_busy_s / self.events) * 1e6 if self.events else 0.0,
            "mean_queue_depth": self.mean_queue_depth,
            "max_queue_depth": self.max_queue_depth,
            "sim_time_span": (
                (self.last_event_time - self.first_event_time)
                if self.first_event_time is not None and self.last_event_time is not None
                else 0.0
            ),
            "subsystems": {name: stats.to_dict() for name, stats in subsystems},
            "hottest_labels": {label: stats.to_dict() for label, stats in hottest_labels},
        }

    def reset(self) -> None:
        """Zero every counter (prefer :meth:`snapshot` + ``delta`` for
        windows -- reset discards the cumulative run stats)."""
        self.events = 0
        self.total_busy_s = 0.0
        self.max_queue_depth = 0
        self._labels.clear()
        self._queue_depth_sum = 0
        self.first_event_time = None
        self.last_event_time = None

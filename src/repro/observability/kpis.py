"""Resilience KPIs derived from recorded telemetry.

PR 1 produced the raw signals -- causal spans, trace events, metric
series.  This module turns them into the paper's missing *quantitative*
layer: per-disruption MTTD/MTTR from the injection→recovery span arcs,
fleet availability and degraded time from the ``up:*`` level series,
protocol convergence times from coordination spans, and message overhead
per disruption -- broken down by the roadmap's five disruption vectors
(Tables 1-2 rows), so "how resilient is the system" becomes a table of
numbers instead of an intuition.

Everything here is a pure function of recorder state: no simulator
access, no wall clock, so KPI reports are reproducible bit-for-bit like
the runs they describe.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, Iterable, List, Optional

from repro.observability.histogram import StreamingHistogram
from repro.observability.spans import Span, SpanRecorder
from repro.simulation.metrics import MetricsRecorder
from repro.simulation.trace import TraceLog

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.vectors import DisruptionVector

#: Fault class name -> roadmap disruption vector value (Tables 1-2 rows).
#: Infrastructure faults disrupt *pervasiveness*; software failures the
#: *services* dimension; device lifecycle/energy faults are *operations*
#: disruptions; domain transfer and trust changes hit the *data* vector.
#: The *verification* vector has no injectable fault -- it is scored from
#: runtime-monitor violation events instead.  (Values are the enum's
#: strings; the enum itself is imported lazily to avoid the
#: observability <-> core import cycle.)
VECTOR_BY_FAULT_TYPE: Dict[str, str] = {
    "PartitionFault": "pervasiveness",
    "LinkFailureFault": "pervasiveness",
    "LatencySpikeFault": "pervasiveness",
    "ServiceFailureFault": "services",
    "CrashFault": "operations",
    "CrashRecoveryFault": "operations",
    "BatteryDepletionFault": "operations",
    "DomainTransferFault": "data",
    "AdversarialEnvironmentFault": "data",
    "NodeCompromiseFault": "data",
}


def _vectors() -> type:
    from repro.core.vectors import DisruptionVector

    return DisruptionVector


def classify_fault_vector(fault_type: str) -> "DisruptionVector":
    """Map a fault class name to its disruption vector (OPERATIONS default)."""
    enum_cls = _vectors()
    return enum_cls(VECTOR_BY_FAULT_TYPE.get(fault_type, "operations"))


@dataclass
class DisruptionArc:
    """One injection→recovery arc, reduced to its resilience numbers."""

    fault: str
    fault_type: str
    vector: DisruptionVector
    injected_at: float
    detected_at: Optional[float] = None   # first causally-linked recovery start
    recovered_at: Optional[float] = None  # last causally-linked recovery end
    messages: int = 0                     # descendant message spans
    repairs: int = 0                      # recovery spans on the arc
    resolved: bool = False

    @property
    def mttd(self) -> Optional[float]:
        """Time from injection to the first recovery activity."""
        if self.detected_at is None:
            return None
        return self.detected_at - self.injected_at

    @property
    def mttr(self) -> Optional[float]:
        """Time from injection to full recovery (unresolved arcs: None)."""
        if not self.resolved or self.recovered_at is None:
            return None
        return self.recovered_at - self.injected_at

    def to_dict(self) -> Dict[str, Any]:
        return {
            "fault": self.fault,
            "fault_type": self.fault_type,
            "vector": self.vector.value,
            "injected_at": self.injected_at,
            "mttd": self.mttd,
            "mttr": self.mttr,
            "messages": self.messages,
            "repairs": self.repairs,
            "resolved": self.resolved,
        }


def disruption_arcs(spans: SpanRecorder) -> List[DisruptionArc]:
    """Reduce every injection span to a :class:`DisruptionArc`.

    Walks each injection span's descendant tree once (via the recorder's
    children index): recovery descendants give detection and recovery
    times, message descendants give the repair's communication overhead.
    """
    children = spans.children_index()
    arcs: List[DisruptionArc] = []
    for root in spans.select(category="injection"):
        arc = DisruptionArc(
            fault=root.name.removeprefix("fault:"),
            fault_type=str(root.attrs.get("fault_type", "")),
            vector=classify_fault_vector(str(root.attrs.get("fault_type", ""))),
            injected_at=root.start,
        )
        stack = list(children.get(root.span_id, ()))
        while stack:
            span = stack.pop()
            stack.extend(children.get(span.span_id, ()))
            if span.category == "message":
                arc.messages += 1
            elif span.category == "recovery":
                arc.repairs += 1
                if arc.detected_at is None or span.start < arc.detected_at:
                    arc.detected_at = span.start
                end = span.end if span.end is not None else span.start
                if arc.recovered_at is None or end > arc.recovered_at:
                    arc.recovered_at = end
        # An arc is resolved when its injection span closed normally
        # ("reverted") or some recovery completed; "truncated" roots with
        # no recovery ran past the end of the run still disrupted.
        arc.resolved = root.status == "reverted" or arc.repairs > 0
        if arc.resolved and arc.recovered_at is None and root.end is not None:
            arc.recovered_at = root.end
        arcs.append(arc)
    return arcs


@dataclass
class VectorKpis:
    """Aggregated resilience KPIs for one disruption vector."""

    vector: DisruptionVector
    faults: int = 0
    resolved: int = 0
    mttd_mean: Optional[float] = None
    mttd_max: Optional[float] = None
    mttr_mean: Optional[float] = None
    mttr_max: Optional[float] = None
    messages_per_disruption: Optional[float] = None
    disrupted_time: float = 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "vector": self.vector.value,
            "faults": self.faults,
            "resolved": self.resolved,
            "mttd_mean": self.mttd_mean,
            "mttd_max": self.mttd_max,
            "mttr_mean": self.mttr_mean,
            "mttr_max": self.mttr_max,
            "messages_per_disruption": self.messages_per_disruption,
            "disrupted_time": self.disrupted_time,
        }


@dataclass
class KpiReport:
    """The full quantitative-resilience view of one run."""

    horizon: float
    availability: Optional[float] = None        # fleet mean of up:* means
    worst_availability: Optional[float] = None  # weakest device
    degraded_time: float = 0.0                  # summed device downtime (s)
    violations: int = 0                         # runtime-monitor violations
    alerts: int = 0                             # SLO breach alerts fired
    arcs: List[DisruptionArc] = field(default_factory=list)
    vectors: Dict[DisruptionVector, VectorKpis] = field(default_factory=dict)
    convergence: Dict[str, Dict[str, float]] = field(default_factory=dict)
    repair_latency: Optional[StreamingHistogram] = None
    traffic: Optional[Dict[str, Any]] = None    # TrafficRegistry.kpis()
    security: Optional[Dict[str, Any]] = None   # SecurityPlane.kpis()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "horizon": self.horizon,
            "availability": self.availability,
            "worst_availability": self.worst_availability,
            "degraded_time": self.degraded_time,
            "violations": self.violations,
            "alerts": self.alerts,
            "traffic": self.traffic,
            "security": self.security,
            "vectors": {v.value: k.to_dict() for v, k in sorted(
                self.vectors.items(), key=lambda item: item[0].value)},
            "convergence": self.convergence,
            "arcs": [arc.to_dict() for arc in self.arcs],
            "repair_latency": (self.repair_latency.to_dict()
                               if self.repair_latency is not None else None),
        }

    def vector_rows(self) -> List[List[object]]:
        """Table rows for CLI output, one per disruption vector."""
        rows: List[List[object]] = []
        for vector in _vectors():
            kpis = self.vectors.get(vector)
            if kpis is None:
                rows.append([vector.value, 0, 0, "-", "-", "-", "-"])
                continue
            rows.append([
                vector.value,
                kpis.faults,
                kpis.resolved,
                _fmt(kpis.mttd_mean),
                _fmt(kpis.mttr_mean),
                _fmt(kpis.messages_per_disruption),
                _fmt(kpis.disrupted_time),
            ])
        return rows


def _fmt(value: Optional[float]) -> object:
    return "-" if value is None else round(float(value), 4)


def _mean(values: List[float]) -> Optional[float]:
    return sum(values) / len(values) if values else None


def aggregate_vectors(arcs: Iterable[DisruptionArc]) -> Dict[DisruptionVector, VectorKpis]:
    grouped: Dict[DisruptionVector, List[DisruptionArc]] = {}
    for arc in arcs:
        grouped.setdefault(arc.vector, []).append(arc)
    out: Dict[DisruptionVector, VectorKpis] = {}
    for vector, members in grouped.items():
        mttds = [a.mttd for a in members if a.mttd is not None]
        mttrs = [a.mttr for a in members if a.mttr is not None]
        out[vector] = VectorKpis(
            vector=vector,
            faults=len(members),
            resolved=sum(1 for a in members if a.resolved),
            mttd_mean=_mean(mttds),
            mttd_max=max(mttds) if mttds else None,
            mttr_mean=_mean(mttrs),
            mttr_max=max(mttrs) if mttrs else None,
            messages_per_disruption=_mean([float(a.messages) for a in members]),
            disrupted_time=sum(mttrs),
        )
    return out


def availability_kpis(metrics: MetricsRecorder, horizon: float) -> Dict[str, Any]:
    """Fleet availability from the ``up:<device>`` level series.

    Returns mean and worst per-device availability over ``[0, horizon)``
    plus total degraded (down) device-seconds.
    """
    per_device: Dict[str, float] = {}
    for name in metrics.series_names:
        if not name.startswith("up:"):
            continue
        series = metrics.series(name)
        if series.kind != "level" or len(series) == 0:
            continue
        value = series.time_weighted_mean(0.0, horizon)
        if value is not None:
            per_device[name[len("up:"):]] = value
    if not per_device:
        return {"availability": None, "worst_availability": None,
                "degraded_time": 0.0, "per_device": {}}
    availabilities = list(per_device.values())
    return {
        "availability": sum(availabilities) / len(availabilities),
        "worst_availability": min(availabilities),
        "degraded_time": sum((1.0 - a) * horizon for a in availabilities),
        "per_device": per_device,
    }


#: Coordination span name prefix -> reported protocol bucket.
_PROTOCOL_PREFIXES = (
    ("gossip:", "gossip"),
    ("election:", "election"),
    ("fd:", "failure-detector"),
    ("phi:", "failure-detector"),
)


def convergence_kpis(spans: SpanRecorder) -> Dict[str, Dict[str, float]]:
    """Per-protocol convergence stats from coordination spans.

    A gossip/failure-detector round span covers one full round
    (request→acks); an election span covers candidacy→leadership.  The
    span durations therefore *are* the convergence times, and their
    distribution is the protocol's responsiveness under disruption.
    """
    buckets: Dict[str, List[float]] = {}
    for span in spans.select(category="coordination"):
        duration = span.duration
        if duration is None:
            continue
        for prefix, protocol in _PROTOCOL_PREFIXES:
            if span.name.startswith(prefix):
                buckets.setdefault(protocol, []).append(duration)
                break
    out: Dict[str, Dict[str, float]] = {}
    for protocol, durations in sorted(buckets.items()):
        durations.sort()
        out[protocol] = {
            "rounds": float(len(durations)),
            "mean": sum(durations) / len(durations),
            "p95": durations[min(len(durations) - 1,
                                 int(0.95 * len(durations)))],
            "max": durations[-1],
        }
    return out


def compute_kpi_report(
    spans: Optional[SpanRecorder],
    trace: Optional[TraceLog],
    metrics: MetricsRecorder,
    horizon: float,
) -> KpiReport:
    """Derive the full KPI report from one run's recorders.

    ``spans`` may be None (observability disabled): availability and
    violation KPIs still compute from metrics/trace; arc and convergence
    KPIs are empty.
    """
    report = KpiReport(horizon=float(horizon))
    availability = availability_kpis(metrics, horizon)
    report.availability = availability["availability"]
    report.worst_availability = availability["worst_availability"]
    report.degraded_time = availability["degraded_time"]
    if trace is not None:
        report.violations = trace.count(category="violation")
        report.alerts = trace.count(category="alert", name="slo-breach")
    if spans is not None:
        report.arcs = disruption_arcs(spans)
        report.vectors = aggregate_vectors(report.arcs)
        report.convergence = convergence_kpis(spans)
        histogram = StreamingHistogram()
        for arc in report.arcs:
            if arc.mttr is not None:
                histogram.observe(arc.mttr)
        report.repair_latency = histogram
    return report


def kpi_report_for_system(system: Any, horizon: Optional[float] = None) -> KpiReport:
    """Convenience wrapper over an :class:`~repro.core.system.IoTSystem`."""
    horizon = horizon if horizon is not None else system.sim.now
    report = compute_kpi_report(
        spans=getattr(system, "spans", None),
        trace=getattr(system, "trace", None),
        metrics=system.metrics,
        horizon=horizon,
    )
    registry = system.sim.context.get("traffic")
    if registry is not None:
        report.traffic = registry.kpis(horizon)
    plane = system.sim.context.get("security")
    if plane is not None:
        report.security = plane.kpis(horizon)
    return report

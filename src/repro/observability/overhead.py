"""The telemetry budget: span sampling and self-metered recording cost.

Observability is not free -- every span, metric sample and trace event
costs wall-clock time on the kernel hot path and bytes of retained
state.  The ROADMAP's hot-path campaign asks for "cheaper span/metric
recording when sampling", which requires two things this module
provides:

* :class:`SpanSampler` -- head-based probabilistic span sampling whose
  keep/drop decision is a pure function of ``(seed, root index)``.  No
  wall clock, no ambient RNG: the same run config samples the same
  traces on every machine, so checkpoint/resume/replay stay
  byte-identical with sampling on (spans never feed the system digest,
  and the decision stream is deterministic anyway).
* :class:`OverheadMeter` -- per-component counters and wall-clock
  accumulators that :class:`~repro.observability.spans.SpanRecorder`,
  :class:`~repro.simulation.metrics.MetricsRecorder`,
  :class:`~repro.simulation.trace.TraceLog` and
  :class:`~repro.observability.instrument.Instrument` update inline when
  a meter is attached (one ``is None`` check each when it is not).

:func:`telemetry_health` rolls both into one exportable dict -- spans
retained, ring-buffer drops, bytes held, recording fraction -- which the
HTML report renders as "Telemetry health" and the Prometheus exposition
exports under ``repro_observability_overhead_*``.

Like the persistence runner's save telemetry, nothing here emits trace
events or counters: the meter must be attachable to a journaled run
without perturbing its digest chain.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Dict, List, Optional

_MASK64 = (1 << 64) - 1

#: Span categories the sampler never drops.  Injection/recovery spans
#: root the fault index the diagnosis engine walks, and persistence
#: spans audit checkpoint cost; losing them to sampling would blind the
#: exact consumers sampling exists to keep cheap.
ALWAYS_SAMPLE_CATEGORIES = frozenset({"injection", "recovery", "persistence"})

#: Sentinel trace id carried by spans whose root lost the sampling coin
#: flip.  Children see it in the propagated context and drop themselves
#: without a second sampler consultation, so whole traces are kept or
#: dropped atomically (head-based sampling).
DROPPED_TRACE_ID = "t!"


def _mix64(value: int) -> int:
    """SplitMix64 finalizer: a cheap, well-distributed 64-bit mix.

    Chosen over a cryptographic hash because this runs once per root
    span on the kernel hot path; three multiplies and shifts keep the
    sampled fast path far below the cost of recording the span it
    elides.
    """
    value = (value + 0x9E3779B97F4A7C15) & _MASK64
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _MASK64
    return value ^ (value >> 31)


class SpanSampler:
    """Deterministic head-based sampling decisions for root spans.

    ``keep(index)`` hashes the run seed with the root's trace ordinal
    and keeps the trace when the hash falls below ``rate`` of the 64-bit
    space.  Decisions are independent per trace and reproducible across
    processes -- the property replay and resume rely on.
    """

    def __init__(self, rate: float, seed: int = 0) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"sampling rate {rate} outside [0, 1]")
        self.rate = float(rate)
        self.seed = int(seed)
        self._threshold = int(self.rate * float(1 << 64))
        self._base = _mix64(self.seed & _MASK64)
        self.decisions = 0
        self.kept = 0

    def keep(self, index: int) -> bool:
        """Deterministic keep/drop for the root span with ordinal ``index``.

        The SplitMix64 finalizer is inlined (not a ``_mix64`` call): this
        runs once per root span on the kernel hot path, where one Python
        call frame is comparable to the whole hash.
        """
        self.decisions += 1
        value = ((self._base ^ (index & _MASK64))
                 + 0x9E3779B97F4A7C15) & _MASK64
        value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
        value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _MASK64
        if (value ^ (value >> 31)) < self._threshold:
            self.kept += 1
            return True
        return False

    @property
    def dropped(self) -> int:
        return self.decisions - self.kept

    def to_dict(self) -> Dict[str, Any]:
        return {"rate": self.rate, "seed": self.seed,
                "decisions": self.decisions, "kept": self.kept,
                "dropped": self.dropped}


class OverheadMeter:
    """Accumulates what telemetry recording itself costs.

    Components update the public attributes inline (no method-call
    overhead on hot paths); :meth:`snapshot` derives rates and the
    wall-clock fraction spent recording.
    """

    __slots__ = ("spans_count", "spans_wall_s", "metrics_count",
                 "metrics_wall_s", "trace_count", "trace_wall_s",
                 "instrument_count", "instrument_wall_s", "_started")

    def __init__(self) -> None:
        self.spans_count = 0
        self.spans_wall_s = 0.0
        self.metrics_count = 0
        self.metrics_wall_s = 0.0
        self.trace_count = 0
        self.trace_wall_s = 0.0
        self.instrument_count = 0
        self.instrument_wall_s = 0.0
        self._started = perf_counter()

    @property
    def records(self) -> int:
        """Total telemetry records across every metered component."""
        return (self.spans_count + self.metrics_count + self.trace_count
                + self.instrument_count)

    @property
    def recording_wall_s(self) -> float:
        """Total wall-clock seconds spent inside recording calls."""
        return (self.spans_wall_s + self.metrics_wall_s + self.trace_wall_s
                + self.instrument_wall_s)

    def snapshot(self, run_wall_s: Optional[float] = None) -> Dict[str, Any]:
        """Exportable cost breakdown.

        ``run_wall_s`` defaults to the meter's own lifetime, which for a
        meter attached just before a run approximates the run's wall
        time; pass an exact measurement when one exists.
        """
        elapsed = (run_wall_s if run_wall_s is not None
                   else perf_counter() - self._started)
        recording = self.recording_wall_s
        return {
            "spans": {"records": self.spans_count,
                      "wall_s": self.spans_wall_s},
            "metrics": {"records": self.metrics_count,
                        "wall_s": self.metrics_wall_s},
            "trace": {"records": self.trace_count,
                      "wall_s": self.trace_wall_s},
            "instrument": {"records": self.instrument_count,
                           "wall_s": self.instrument_wall_s},
            "records": self.records,
            "recording_wall_s": recording,
            "run_wall_s": elapsed,
            "records_per_s": self.records / elapsed if elapsed > 0 else 0.0,
            "recording_fraction": recording / elapsed if elapsed > 0 else 0.0,
        }


def attach_meter(system: Any, meter: Optional[OverheadMeter] = None) -> OverheadMeter:
    """Wire one meter into every telemetry component of ``system``."""
    if meter is None:
        meter = OverheadMeter()
    system.metrics.meter = meter
    system.trace.meter = meter
    if system.spans is not None:
        system.spans.meter = meter
    if system.sim.instrument is not None:
        system.sim.instrument.meter = meter
    return meter


def _approx_span_bytes(spans: Any) -> int:
    """Estimated bytes retained by the span list (JSONL encoding).

    Sized from a bounded sample so the estimate stays O(1) on
    million-span runs; good to a few percent, which is all a budget
    dashboard needs.
    """
    import json

    all_spans = spans.spans
    if not all_spans:
        return 0
    sample = all_spans[:32]
    sampled_bytes = sum(len(json.dumps(s.to_dict(), default=repr)) + 1
                       for s in sample)
    return int(sampled_bytes / len(sample) * len(all_spans))


def telemetry_health(system: Any,
                     run_wall_s: Optional[float] = None) -> Dict[str, Any]:
    """One dict describing what telemetry the run holds and what it cost.

    Sections: ``trace`` (ring-buffer length/drops/subscriber errors),
    ``spans`` (retention, sampling counters, byte estimate), ``series``
    (count and total points), and ``overhead`` (the meter snapshot, when
    one is attached anywhere).
    """
    trace = system.trace
    health: Dict[str, Any] = {
        "trace": {
            "events": len(trace),
            "maxlen": trace.maxlen or 0,
            "dropped": trace.dropped,
            "subscriber_errors": trace.subscriber_errors,
        },
    }
    spans = system.spans
    if spans is not None:
        sampler = getattr(spans, "sampler", None)
        health["spans"] = {
            "recorded": len(spans),
            "open": len(spans.open_spans),
            "sampled_out": getattr(spans, "sampled_out", 0),
            "approx_bytes": _approx_span_bytes(spans),
            "sampling": sampler.to_dict() if sampler is not None else None,
        }
    series_points = 0
    for name in system.metrics.series_names:
        series_points += len(system.metrics.series(name))
    health["series"] = {
        "count": len(system.metrics.series_names),
        "points": series_points,
        "counters": len(system.metrics.counter_names),
    }
    meter = getattr(system.metrics, "meter", None) or getattr(
        system.trace, "meter", None)
    if meter is None and spans is not None:
        meter = getattr(spans, "meter", None)
    health["overhead"] = (meter.snapshot(run_wall_s=run_wall_s)
                          if meter is not None else None)
    return health


def telemetry_prom_lines(health: Dict[str, Any],
                         prefix: str = "repro_") -> List[str]:
    """Prometheus exposition lines for a :func:`telemetry_health` dict.

    Telemetry-loss signals (``trace_dropped_events_total``, span
    retention) are always present; ``observability_overhead_*`` lines
    appear when a meter was attached.
    """
    lines: List[str] = []

    def gauge(name: str, value: float) -> None:
        metric = prefix + name
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {float(value)!r}")

    def counter(name: str, value: float) -> None:
        metric = prefix + name
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {float(value)!r}")

    trace = health.get("trace", {})
    counter("trace_dropped_events_total", trace.get("dropped", 0))
    counter("trace_subscriber_errors_total", trace.get("subscriber_errors", 0))
    gauge("trace_buffered_events", trace.get("events", 0))
    spans = health.get("spans")
    if spans is not None:
        gauge("spans_retained", spans.get("recorded", 0))
        gauge("spans_retained_bytes", spans.get("approx_bytes", 0))
        gauge("spans_open", spans.get("open", 0))
        counter("spans_sampled_out_total", spans.get("sampled_out", 0))
        sampling = spans.get("sampling")
        if sampling:
            gauge("spans_sampling_rate", sampling.get("rate", 1.0))
    series = health.get("series", {})
    gauge("series_retained_points", series.get("points", 0))
    overhead = health.get("overhead")
    if overhead:
        for component in ("spans", "metrics", "trace", "instrument"):
            entry = overhead.get(component, {})
            counter(f"observability_overhead_{component}_records_total",
                    entry.get("records", 0))
            counter(f"observability_overhead_{component}_wall_seconds_total",
                    entry.get("wall_s", 0.0))
        counter("observability_overhead_records_total",
                overhead.get("records", 0))
        counter("observability_overhead_recording_wall_seconds_total",
                overhead.get("recording_wall_s", 0.0))
        gauge("observability_overhead_records_per_second",
              overhead.get("records_per_s", 0.0))
        gauge("observability_overhead_recording_fraction",
              overhead.get("recording_fraction", 0.0))
    return lines

"""The profiling plane: subsystem cost attribution and differential profiling.

The kernel :class:`~repro.observability.instrument.Instrument` answers
"which event label was expensive"; this module answers the questions the
speed campaign and regression triage actually ask:

* **Which architectural plane pays?**  Every kernel event label and span
  category is classified into a plane -- transport, coordination, mape,
  traffic, security, persistence, telemetry, faults, workload, kernel --
  and wall-time / event-count / queue-lag roll up per plane and per label
  (:func:`capture_profile`).
* **Where does a request's latency live?**  Traffic request spans carry
  queue/service/network/retry segments (stamped by
  :class:`~repro.traffic.client.TrafficClient`); the critical-path
  analysis sums them per segment and reports the top-K slowest traces
  (:func:`request_critical_paths`).
* **What changed between two runs?**  :func:`diff_profiles` attributes
  the delta between two profile snapshots to planes and labels, ranked
  by absolute wall-time delta -- ``benchmarks/regress.py`` calls it so a
  tripped bench tripwire names the responsible subsystem, and
  ``python -m repro profile diff`` exposes it directly.

Export surfaces: collapsed-stack flamegraphs in Brendan Gregg's
``frame;frame value`` format (:func:`collapsed_kernel_stacks`,
:func:`collapsed_span_stacks` -- feed to ``flamegraph.pl`` or
https://www.speedscope.app), a per-plane Chrome-trace view
(:func:`write_profile_chrome_trace`), Prometheus ``repro_profile_*``
families (:func:`profile_prom_lines`), and the HTML report's "Profile"
section (rendered by :mod:`repro.observability.export`).

Everything here is *read-only over telemetry already collected*: capture
consumes the instrument and span recorder after (or between) events, never
schedules work, never touches an RNG -- so an armed profile leaves
journals, digests and replay byte-identical, and its cost falls under the
PR-6 telemetry budget (the instrument's own recording is metered by the
:class:`~repro.observability.overhead.OverheadMeter`).
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

from repro.observability.instrument import Instrument, InstrumentSnapshot

PROFILE_SCHEMA = 1

#: The architectural planes cost is attributed to, in report order.
PLANES = (
    "transport", "coordination", "mape", "traffic", "security",
    "persistence", "telemetry", "faults", "workload", "kernel",
)

#: Kernel event-label prefix (the part before ``:``, or the whole label)
#: -> plane.  Unlisted prefixes fall through to prefix-dot rules
#: (``traffic.*``, ``security.*``) and then to "workload" -- an unknown
#: label is most likely scenario-specific application work.
_LABEL_PLANES: Dict[str, str] = {
    # transport: message delivery and link-state churn
    "deliver": "transport", "partition": "transport", "heal": "transport",
    "causal-retransmit": "transport",
    # coordination: membership, consensus, failure detection, leases
    "gossip": "coordination", "swim": "coordination",
    "swim-timeout": "coordination", "swim-suspicion": "coordination",
    "swim-indirect-timeout": "coordination", "raft-timer": "coordination",
    "fd": "coordination", "phi": "coordination",
    "bully-timeout": "coordination", "lease-keeper": "coordination",
    "quorum-timeout": "coordination", "sync": "coordination",
    "share": "coordination",
    # mape: the adaptation control loop and orchestration
    "mape": "mape", "orchestrator-reconcile": "mape",
    "regional-planning": "mape", "revert": "mape", "balance-probe": "mape",
    # telemetry: monitors, probes, meters -- observability's own cost
    "slo-monitor": "telemetry", "probe": "telemetry",
    "probe-timeout": "telemetry", "meter": "telemetry",
    "telemetry": "telemetry",
    # faults: the injector's own scheduling
    "inject": "faults",
    # workload: device/application behavior.  Bare "traffic:" is the
    # smart-city road-traffic sensor tick; the serving plane's labels are
    # dotted ("traffic.timeout:...") and classify via the dot rule below.
    "sense": "workload", "vitals": "workload", "roam": "workload",
    "sample": "workload", "aggregate-push": "workload",
    "demand-surge": "workload", "stream-epoch": "workload",
    "technician": "workload", "traffic": "workload",
    # kernel: process-layer plumbing (timeouts, joins, generator starts)
    "timeout": "kernel", "waiter-immediate": "kernel",
    "allof-empty": "kernel", "start": "kernel", "intr": "kernel",
    "join-immediate": "kernel",
}

#: Span category -> plane (spans carry simulated-time cost; kernel labels
#: carry wall-clock cost -- both attribute to the same plane vocabulary).
_CATEGORY_PLANES: Dict[str, str] = {
    "message": "transport",
    "coordination": "coordination",
    "adaptation": "mape",
    "governance": "mape",
    "injection": "faults",
    "fault": "faults",
    "recovery": "faults",
    "persistence": "persistence",
    "traffic": "traffic",
    "request": "traffic",
    "alert": "telemetry",
    "violation": "telemetry",
}


def plane_of_label(label: str) -> str:
    """Classify a kernel event label into an architectural plane."""
    if not label:
        return "kernel"
    prefix = label.split(":", 1)[0]
    plane = _LABEL_PLANES.get(prefix)
    if plane is not None:
        return plane
    if "." in prefix:
        head = prefix.split(".", 1)[0]
        if head == "traffic":
            return "traffic"
        if head == "security":
            return "security"
    return "workload"


def plane_of_category(category: str) -> str:
    """Classify a span category into an architectural plane."""
    return _CATEGORY_PLANES.get(category, "workload")


# --------------------------------------------------------------------------- #
# Capture
# --------------------------------------------------------------------------- #
def _span_self_times(recorder: Any, now: float) -> List[Tuple[Any, float]]:
    """``(span, self_seconds)`` for every sampled span.

    Self time is the span's duration minus the summed durations of its
    direct children (clamped at zero: concurrent children can overlap
    their parent in simulated time).
    """
    children = recorder.children_index()
    out: List[Tuple[Any, float]] = []
    for span in recorder:
        total = span.duration_or(now)
        child_s = sum(c.duration_or(now) for c in children.get(span.span_id, ()))
        out.append((span, max(0.0, total - child_s)))
    return out


def capture_profile(
    instrument: Optional[Union[Instrument, InstrumentSnapshot]] = None,
    spans: Optional[Any] = None,
    meta: Optional[Dict[str, Any]] = None,
    now: Optional[float] = None,
    top_labels: int = 40,
    top_traces: int = 5,
) -> Dict[str, Any]:
    """Build a JSON-ready profile snapshot.

    ``instrument`` may be a live :class:`Instrument`, an
    :class:`InstrumentSnapshot` (e.g. a ``delta`` bracketing one window),
    or None.  ``spans`` is a :class:`~repro.observability.spans.SpanRecorder`
    (or None); ``now`` the simulated clock used to value still-open spans.
    Pure function of telemetry already collected -- calling it perturbs
    nothing the digest or journal sees.
    """
    profile: Dict[str, Any] = {
        "schema": PROFILE_SCHEMA,
        "meta": dict(meta or {}),
        "planes": {},
        "labels": {},
    }

    if instrument is not None:
        labels = instrument.labels  # dict on both Instrument and snapshot
        plane_stats: Dict[str, Dict[str, float]] = {}
        label_rows: Dict[str, Dict[str, Any]] = {}
        for label, stats in labels.items():
            plane = plane_of_label(label)
            agg = plane_stats.setdefault(plane, {
                "count": 0, "total_ms": 0.0, "queue_s": 0.0, "max_us": 0.0,
            })
            agg["count"] += stats.count
            agg["total_ms"] += stats.total_s * 1e3
            agg["queue_s"] += stats.queue_s
            agg["max_us"] = max(agg["max_us"], stats.max_s * 1e6)
            row = stats.to_dict()
            row["plane"] = plane
            label_rows[label] = row
        for agg in plane_stats.values():
            agg["mean_us"] = (agg["total_ms"] * 1e3 / agg["count"]
                              if agg["count"] else 0.0)
        profile["planes"] = {
            plane: plane_stats[plane]
            for plane in sorted(plane_stats,
                                key=lambda p: -plane_stats[p]["total_ms"])
        }
        hottest = sorted(label_rows.items(),
                         key=lambda kv: -kv[1]["total_ms"])[:top_labels]
        profile["labels"] = dict(hottest)
        profile["kernel"] = {
            "events": instrument.events,
            "busy_ms": instrument.total_busy_s * 1e3,
            "mean_event_us": (instrument.total_busy_s / instrument.events * 1e6
                              if instrument.events else 0.0),
            "mean_queue_depth": instrument.mean_queue_depth,
            "max_queue_depth": instrument.max_queue_depth,
        }

    if spans is not None:
        clock = float(now) if now is not None else _latest_span_time(spans)
        span_planes: Dict[str, Dict[str, float]] = {}
        for span, self_s in _span_self_times(spans, clock):
            plane = plane_of_category(span.category)
            agg = span_planes.setdefault(plane, {"count": 0, "self_s": 0.0})
            agg["count"] += 1
            agg["self_s"] += self_s
        profile["span_planes"] = {
            plane: span_planes[plane]
            for plane in sorted(span_planes,
                                key=lambda p: -span_planes[p]["self_s"])
        }
        critical = request_critical_paths(spans, top_k=top_traces, now=clock)
        if critical["requests"]:
            profile["critical_path"] = critical

    return profile


def _latest_span_time(recorder: Any) -> float:
    latest = 0.0
    for span in recorder:
        if span.end is not None and span.end > latest:
            latest = span.end
        elif span.start > latest:
            latest = span.start
    return latest


def save_profile(profile: Dict[str, Any], path: Any) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(profile, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_profile(path: Any) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


# --------------------------------------------------------------------------- #
# Request critical paths
# --------------------------------------------------------------------------- #
#: Request latency segments, in lifecycle order.  ``queue`` is time spent
#: in the server's queue, ``service`` in the handler, ``network`` on the
#: wire (both directions), ``retry`` waiting between attempts (backoff +
#: failed earlier attempts).
SEGMENTS = ("queue", "service", "network", "retry")


def request_critical_paths(
    spans: Any,
    top_k: int = 5,
    now: Optional[float] = None,
) -> Dict[str, Any]:
    """Decompose traffic request spans into latency segments.

    Request spans (category ``request``) are stamped by
    :class:`~repro.traffic.client.TrafficClient` with ``queue_s`` /
    ``service_s`` / ``network_s`` / ``retry_s`` attrs that sum to the
    span's end-to-end duration by construction.  Returns totals per
    segment, the dominant segment, and the ``top_k`` slowest traces.
    """
    clock = float(now) if now is not None else _latest_span_time(spans)
    # Truncated spans (in flight when the run ended) have no e2e latency
    # to decompose; only completed requests (ok or failed) count.
    requests = [s for s in spans if s.category == "request"
                and s.end is not None and s.status != "truncated"]
    totals = {segment: 0.0 for segment in SEGMENTS}
    latency_sum = 0.0
    failed = 0
    rows: List[Dict[str, Any]] = []
    for span in requests:
        latency = span.duration_or(clock)
        latency_sum += latency
        if span.status != "ok":
            failed += 1
        segments = {segment: float(span.attrs.get(f"{segment}_s", 0.0))
                    for segment in SEGMENTS}
        for segment, value in segments.items():
            totals[segment] += value
        rows.append({
            "trace_id": span.trace_id,
            "name": span.name,
            "status": span.status,
            "latency_s": latency,
            "segments": segments,
            "attempts": int(span.attrs.get("attempts", 1)),
        })
    rows.sort(key=lambda r: -r["latency_s"])
    count = len(requests)
    dominant = max(totals, key=lambda s: totals[s]) if count else None
    return {
        "requests": count,
        "failed": failed,
        "mean_latency_s": latency_sum / count if count else 0.0,
        "segments": totals,
        "dominant_segment": dominant,
        "top": rows[:top_k],
    }


# --------------------------------------------------------------------------- #
# Flamegraphs (Brendan Gregg collapsed-stack format)
# --------------------------------------------------------------------------- #
def collapsed_kernel_stacks(profile: Dict[str, Any]) -> List[str]:
    """``plane;subsystem;label <wall_us>`` lines from a profile snapshot.

    The synthetic three-frame stack (plane -> label prefix -> full label)
    makes the flamegraph's first tier the subsystem cost attribution and
    lets standard tooling (flamegraph.pl, speedscope) drill into labels.
    """
    lines: List[str] = []
    for label, row in profile.get("labels", {}).items():
        value = int(round(row["total_ms"] * 1e3))  # ms -> integer us
        if value <= 0:
            value = 1 if row.get("count") else 0
        if not value:
            continue
        plane = row.get("plane") or plane_of_label(label)
        prefix = label.split(":", 1)[0] if label else "(unlabeled)"
        frames = [plane, prefix]
        if label != prefix:
            frames.append(label)
        lines.append(f"{';'.join(frames)} {value}")
    return sorted(lines)


def collapsed_span_stacks(recorder: Any, now: Optional[float] = None) -> List[str]:
    """Collapsed stacks over the span tree, valued by *simulated* self time.

    Frames are ``plane;ancestor;...;span-name`` along each span's parent
    chain; values are integer simulated microseconds of self time, so the
    flamegraph shows where simulated time (not wall time) went -- the view
    that explains request latency rather than host CPU.
    """
    clock = float(now) if now is not None else _latest_span_time(recorder)
    merged: Dict[str, int] = {}
    for span, self_s in _span_self_times(recorder, clock):
        value = int(round(self_s * 1e6))
        if value <= 0:
            continue
        names: List[str] = [span.name]
        parent_id = span.parent_id
        depth = 0
        while parent_id is not None and depth < 64:
            parent = recorder.get(parent_id)
            if parent is None:
                break
            names.append(parent.name)
            parent_id = parent.parent_id
            depth += 1
        names.append(plane_of_category(span.category))
        stack = ";".join(reversed(names))
        merged[stack] = merged.get(stack, 0) + value
    return sorted(f"{stack} {value}" for stack, value in merged.items())


def write_flamegraph(path: Any, lines: Iterable[str]) -> int:
    """Write collapsed stacks; returns the number of lines written."""
    rows = list(lines)
    with open(path, "w", encoding="utf-8") as fh:
        for row in rows:
            fh.write(row + "\n")
    return len(rows)


def write_profile_chrome_trace(path: Any, recorder: Any,
                               now: Optional[float] = None) -> int:
    """Chrome-trace view with one thread per *plane* (not per category).

    Complements :func:`repro.observability.export.write_chrome_trace`
    (one thread per span category): here the track list *is* the
    subsystem cost attribution, so Perfetto's per-track duration
    aggregates read directly as per-plane simulated-time cost.
    """
    clock = float(now) if now is not None else _latest_span_time(recorder)
    records: List[Dict[str, Any]] = [
        {"ph": "M", "name": "process_name", "pid": 1, "tid": 0,
         "args": {"name": "repro profile (planes)"}},
    ]
    tids: Dict[str, int] = {}
    for span in recorder:
        plane = plane_of_category(span.category)
        tid = tids.get(plane)
        if tid is None:
            tid = tids[plane] = len(tids) + 1
            records.append({"ph": "M", "name": "thread_name", "pid": 1,
                            "tid": tid, "args": {"name": plane}})
        end = span.end if span.end is not None else clock
        records.append({
            "ph": "X", "name": span.name, "cat": plane,
            "ts": span.start * 1e6,
            "dur": max((end - span.start) * 1e6, 1.0),
            "pid": 1, "tid": tid,
            "args": {"trace_id": span.trace_id, "status": span.status,
                     "category": span.category},
        })
    with open(path, "w", encoding="utf-8") as fh:
        json.dump({"traceEvents": records, "displayTimeUnit": "ms"}, fh)
    return len(records)


# --------------------------------------------------------------------------- #
# Differential profiling
# --------------------------------------------------------------------------- #
def _delta_rows(before: Dict[str, Any], after: Dict[str, Any],
                key: str) -> List[Dict[str, Any]]:
    names = set(before.get(key, {})) | set(after.get(key, {}))
    rows: List[Dict[str, Any]] = []
    for name in names:
        b = before.get(key, {}).get(name, {})
        a = after.get(key, {}).get(name, {})
        b_ms = float(b.get("total_ms", 0.0))
        a_ms = float(a.get("total_ms", 0.0))
        delta = a_ms - b_ms
        rows.append({
            "name": name,
            "before_ms": b_ms,
            "after_ms": a_ms,
            "delta_ms": delta,
            "ratio": (a_ms / b_ms) if b_ms > 0 else None,
            "before_events": int(b.get("count", 0)),
            "after_events": int(a.get("count", 0)),
        })
    rows.sort(key=lambda r: -abs(r["delta_ms"]))
    return rows


def diff_profiles(before: Dict[str, Any],
                  after: Dict[str, Any],
                  top_labels: int = 15) -> Dict[str, Any]:
    """Attribute the wall-time delta between two profiles.

    Returns plane rows (every plane, ranked by absolute delta) and the
    ``top_labels`` most-moved labels; ``top_plane`` names the subsystem
    responsible for the largest absolute delta -- the answer regression
    triage wants first.
    """
    plane_rows = _delta_rows(before, after, "planes")
    label_rows = _delta_rows(before, after, "labels")[:top_labels]
    top = plane_rows[0] if plane_rows else None
    diff: Dict[str, Any] = {
        "schema": PROFILE_SCHEMA,
        "before": before.get("meta", {}),
        "after": after.get("meta", {}),
        "planes": plane_rows,
        "labels": label_rows,
        "top_plane": top["name"] if top else None,
        "top_plane_delta_ms": top["delta_ms"] if top else 0.0,
    }
    cp_before = before.get("critical_path")
    cp_after = after.get("critical_path")
    if cp_before and cp_after:
        segments = {}
        for segment in SEGMENTS:
            b = float(cp_before["segments"].get(segment, 0.0))
            a = float(cp_after["segments"].get(segment, 0.0))
            segments[segment] = {"before_s": b, "after_s": a,
                                 "delta_s": a - b}
        diff["critical_path"] = {
            "segments": segments,
            "top_segment": max(segments,
                               key=lambda s: abs(segments[s]["delta_s"])),
        }
    return diff


def render_profile_diff(diff: Dict[str, Any], limit: int = 10) -> str:
    """Human-readable diff table (used by the CLI and regress.py)."""
    lines: List[str] = []
    top = diff.get("top_plane")
    if top is not None:
        delta = diff.get("top_plane_delta_ms", 0.0)
        direction = "slower" if delta >= 0 else "faster"
        lines.append(f"top mover: {top} ({delta:+.2f} ms wall, {direction})")
    header = f"{'plane':<14} {'before ms':>10} {'after ms':>10} {'delta ms':>10} {'ratio':>7}"
    lines.append(header)
    lines.append("-" * len(header))
    for row in diff.get("planes", [])[:limit]:
        ratio = f"{row['ratio']:.2f}x" if row["ratio"] is not None else "new"
        lines.append(
            f"{row['name']:<14} {row['before_ms']:>10.2f} {row['after_ms']:>10.2f} "
            f"{row['delta_ms']:>+10.2f} {ratio:>7}")
    labels = diff.get("labels", [])
    if labels:
        lines.append("")
        lines.append(f"{'label':<32} {'delta ms':>10} {'events':>14}")
        for row in labels[:limit]:
            events = f"{row['before_events']}->{row['after_events']}"
            lines.append(
                f"{row['name']:<32} {row['delta_ms']:>+10.2f} {events:>14}")
    critical = diff.get("critical_path")
    if critical:
        lines.append("")
        lines.append("request critical path (summed seconds per segment):")
        for segment in SEGMENTS:
            row = critical["segments"][segment]
            lines.append(
                f"  {segment:<8} {row['before_s']:>9.3f} -> {row['after_s']:>9.3f} "
                f"({row['delta_s']:+.3f})")
        lines.append(f"  top segment: {critical['top_segment']}")
    return "\n".join(lines)


def profiles_from_bench(snapshot: Dict[str, Any]) -> Dict[str, Dict[str, Any]]:
    """The ``profiles`` section of a BENCH snapshot (empty for old ones).

    BENCH_*.json gained a top-level ``profiles`` key alongside
    ``benches``; ``compare_snapshots`` ignores it, so old baselines stay
    comparable and new ones carry the attribution data ``profile diff``
    reads.
    """
    profiles = snapshot.get("profiles")
    return dict(profiles) if isinstance(profiles, dict) else {}


def diff_bench_profiles(before: Dict[str, Any],
                        after: Dict[str, Any]) -> Dict[str, Dict[str, Any]]:
    """Per-scenario profile diffs between two BENCH snapshots."""
    b_profiles = profiles_from_bench(before)
    a_profiles = profiles_from_bench(after)
    out: Dict[str, Dict[str, Any]] = {}
    for name in sorted(set(b_profiles) & set(a_profiles)):
        out[name] = diff_profiles(b_profiles[name], a_profiles[name])
    return out


#: Bench name -> plane, for regressions on snapshots that predate profile
#: capture: the bench's own subject is the best available attribution.
BENCH_PLANES: Dict[str, str] = {
    "kernel": "kernel",
    "traffic": "traffic",
    "security": "security",
    "persistence": "persistence",
    "observability": "telemetry",
    "histogram": "telemetry",
    "smart_city": "workload",
    "mape_outage": "mape",
}


def attribute_regressions(
    regressions: Iterable[str],
    before: Dict[str, Any],
    after: Dict[str, Any],
) -> List[str]:
    """Name the plane responsible for each regressed bench metric.

    ``regressions`` are ``"bench.metric: ..."`` strings from
    ``compare_snapshots``.  With profiles on both snapshots the diff's
    top plane is reported; otherwise the bench-name heuristic
    (:data:`BENCH_PLANES`) attributes by subject.
    """
    diffs = {name: diff for name, diff in diff_bench_profiles(before, after).items()
             if diff.get("top_plane")}
    fallback = next(iter(diffs.values()), None)
    lines: List[str] = []
    for regression in regressions:
        bench = regression.split(".", 1)[0]
        diff = diffs.get(bench, fallback)
        if diff is not None:
            source = "" if bench in diffs else " (nearest profiled scenario)"
            lines.append(
                f"{bench}: profile diff attributes the delta to plane "
                f"'{diff['top_plane']}' ({diff['top_plane_delta_ms']:+.2f} ms)"
                f"{source}")
        else:
            plane = BENCH_PLANES.get(bench)
            if plane:
                lines.append(f"{bench}: no profile data; bench subject maps "
                             f"to plane '{plane}'")
    # Dedup while preserving order: several regressed metrics of one bench
    # produce the same attribution line.
    unique: List[str] = []
    for line in lines:
        if line not in unique:
            unique.append(line)
    return unique


# --------------------------------------------------------------------------- #
# Prometheus / HTML surfaces
# --------------------------------------------------------------------------- #
def profile_prom_lines(profile: Dict[str, Any],
                       prefix: str = "repro_") -> List[str]:
    """``repro_profile_*`` families from a profile snapshot."""
    lines: List[str] = []
    planes = profile.get("planes", {})
    if planes:
        busy = prefix + "profile_plane_busy_seconds"
        events = prefix + "profile_plane_events_total"
        queue = prefix + "profile_plane_queue_seconds"
        lines.append(f"# TYPE {busy} gauge")
        for plane in sorted(planes):
            lines.append(
                f'{busy}{{plane="{plane}"}} {planes[plane]["total_ms"] / 1e3!r}')
        lines.append(f"# TYPE {events} counter")
        for plane in sorted(planes):
            lines.append(f'{events}{{plane="{plane}"}} {planes[plane]["count"]}')
        lines.append(f"# TYPE {queue} gauge")
        for plane in sorted(planes):
            lines.append(
                f'{queue}{{plane="{plane}"}} {planes[plane]["queue_s"]!r}')
    kernel = profile.get("kernel")
    if kernel:
        metric = prefix + "profile_kernel_events_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {kernel['events']}")
        metric = prefix + "profile_kernel_busy_seconds"
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {kernel['busy_ms'] / 1e3!r}")
    critical = profile.get("critical_path")
    if critical:
        metric = prefix + "profile_request_segment_seconds"
        lines.append(f"# TYPE {metric} gauge")
        for segment in SEGMENTS:
            lines.append(
                f'{metric}{{segment="{segment}"}} '
                f'{float(critical["segments"].get(segment, 0.0))!r}')
        metric = prefix + "profile_request_mean_latency_seconds"
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {float(critical['mean_latency_s'])!r}")
    return lines


def profile_plane_rows(profile: Dict[str, Any]) -> List[List[Any]]:
    """HTML "Profile" table rows: per-plane cost attribution."""
    total_ms = sum(p["total_ms"] for p in profile.get("planes", {}).values()) or 1.0
    rows: List[List[Any]] = []
    for plane, stats in profile.get("planes", {}).items():
        rows.append([
            plane, stats["count"], stats["total_ms"],
            f"{stats['total_ms'] / total_ms:.1%}",
            stats.get("mean_us", 0.0), stats.get("queue_s", 0.0),
        ])
    return rows


def profile_segment_rows(profile: Dict[str, Any]) -> List[List[Any]]:
    """HTML rows for the request critical-path segment breakdown."""
    critical = profile.get("critical_path")
    if not critical:
        return []
    total = sum(critical["segments"].values()) or 1.0
    return [[segment, critical["segments"][segment],
             f"{critical['segments'][segment] / total:.1%}"]
            for segment in SEGMENTS]

"""Prepared (not-yet-run) observability scenarios.

The flight recorder can only make an incident *replayable* if the run it
observed is rebuildable from a declarative
:class:`~repro.persistence.scenarios.ScenarioSpec`.  The CLI's monitored
runs historically wired their systems inline; this module factors that
wiring into prepare-style builders so the persistence registry can
rebuild them:

* :func:`prepare_smart_city_partition` -- the canonical observed run (a
  smart city losing its cloud mid-run), optionally with the full SLO
  monitoring stack attached.
* :func:`monitored_setup` -- the reusable monitoring harness (probe,
  default SLOs, monitor attached to every MAPE loop, gossip liveness
  mesh); also used by the ``mape-outage`` builder via its ``monitored``
  param.

Builders are deterministic functions of ``(seed, params)``; they wire in
exactly the order the CLI always did, so journals and digests of the
factored runs are bit-identical to the historical inline wiring.
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.persistence.scenarios import PreparedRun

SMART_CITY_HORIZON = 60.0


def monitored_setup(system: Any, loops: List[Any], strict: bool = False,
                    city: bool = False) -> Any:
    """Attach the full SLO monitoring stack; returns the monitor.

    The monitor evaluates inside the simulation (period 2s) so breaches
    land causally among the faults and repairs they concern, and every
    MAPE loop subscribes to alerts -- SLO burn can trigger adaptation.
    Edge nodes additionally run a small gossip mesh sharing liveness
    heartbeats, giving the convergence KPIs a live protocol to measure.
    """
    from repro.coordination.gossip import GossipNode
    from repro.observability.slo import (
        ReachabilityProbe,
        SloMonitor,
        default_slos,
    )

    # Cloud reachability is probed actively: partitions leave the cloud
    # "up" but unreachable, and only the probe sees that.
    if system.cloud_node and system.edge_nodes:
        ReachabilityProbe(system.sim, system.network, system.metrics,
                          source=system.edge_nodes[0],
                          target=system.cloud_node,
                          period=2.0, timeout=1.5).start()
    specs = default_slos(system, strict=strict, city=city)
    monitor = SloMonitor(system.sim, system.metrics, specs,
                         trace=system.trace, period=2.0)
    for loop in loops:
        monitor.attach(loop)
    monitor.start()
    edges = system.edge_nodes
    if len(edges) > 1:
        for edge in edges:
            gossip = GossipNode(
                system.sim, system.network, edge,
                [e for e in edges if e != edge],
                system.rngs.stream(f"monitor-gossip:{edge}"),
                period=2.0)
            gossip.set(f"alive:{edge}", 1)
            gossip.start()
    return monitor


def prepare_smart_city_partition(seed: Optional[int] = None,
                                 quick: bool = False,
                                 monitored: bool = False,
                                 strict: bool = False) -> PreparedRun:
    """The canonical observed run, wired but not run: a smart city losing
    its cloud.

    Per-district MAPE loops keep managing through the outage; a service
    failure injected mid-run is repaired by the local loop, and the whole
    disruption→recovery arc is captured as one span trace.  With
    ``monitored`` the SLO stack from :func:`monitored_setup` is attached
    last (the position the CLI's setup hook always held), and ``aux``
    carries the monitor.
    """
    from repro.adaptation import (
        DeviceLivenessAnalyzer,
        Executor,
        MapeLoop,
        RuleBasedPlanner,
        ServiceHealthAnalyzer,
        SloAlertAnalyzer,
    )
    from repro.faults.models import PartitionFault, ServiceFailureFault
    from repro.workloads.smart_city import SmartCityWorkload

    districts = 2 if quick else 3
    workload = SmartCityWorkload(n_districts=districts,
                                 sensors_per_district=3 if quick else 4,
                                 seed=7 if seed is None else seed)
    system = workload.system
    system.enable_observability()
    loops = []
    for district in range(districts):
        edge = f"edge{district}"
        scope = [edge] + list(system.sites[edge])
        loop = MapeLoop(
            system.sim, system.network, system.fleet, edge, scope,
            analyzers=[ServiceHealthAnalyzer(), DeviceLivenessAnalyzer(),
                       SloAlertAnalyzer()],
            planner=RuleBasedPlanner(),
            executor=Executor(system.sim, system.network, system.fleet, edge,
                              system.rngs.stream(f"exec:{edge}"),
                              trace=system.trace),
            period=1.0, metrics=system.metrics, trace=system.trace,
        )
        loop.start()
        loops.append(loop)
    system.injector.inject_at(10.0, ServiceFailureFault(
        name="svcfail:analytics0", device_id="edge0",
        service_name="traffic-analytics0"))
    system.injector.inject_at(20.0, PartitionFault(
        name="cloud-outage", duration=20.0, isolate_node="cloud"))
    aux = {"loops": loops, "workload": workload}
    if monitored:
        aux["monitor"] = monitored_setup(system, loops, strict=strict,
                                         city=True)
    return PreparedRun(system=system, horizon=SMART_CITY_HORIZON, aux=aux)

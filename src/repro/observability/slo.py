"""SLOs: quantitative goals monitored *inside* the simulation.

Fig. 5's MAPE loop monitors "the environment for changes"; the paper's
Section VII insists those models be checked against *goals* at runtime.
An :class:`SloSpec` is such a goal made quantitative -- an objective over
a recorded metric, evaluated on a trailing window -- and the
:class:`SloMonitor` is a periodic in-simulation process that evaluates
every spec, tracks error-budget burn, and on breach:

* emits an ``alert`` event into the :class:`~repro.simulation.trace.TraceLog`
  (so alerts are ordinary, exportable telemetry), and
* pushes the alert into subscribed MAPE knowledge bases, where
  :class:`~repro.adaptation.analyzer.SloAlertAnalyzer` turns it into an
  issue the planner can act on -- closing the loop from quantitative goal
  to adaptation.

Three objective kinds cover the experiments:

``availability``
    time-weighted mean of a *level* series over the window must be
    ``>= objective`` (objective in [0, 1]).
``latency``
    the ``percentile``-th percentile of a *sample* series over the window
    must be ``<= objective`` (seconds).
``rate``
    sample count per second over the window must be ``>= objective``.

Burn rate is normalized so 1.0 always means "exactly on objective":
for availability it is the classic error-budget burn
``(1 - measured) / (1 - objective)``; for latency and rate it is the
ratio of measured to allowed.  ``burn >= 1`` is a breach.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.simulation.kernel import Simulator
from repro.simulation.metrics import MetricsRecorder
from repro.simulation.trace import TraceLog

_KINDS = ("availability", "latency", "rate")


@dataclass(frozen=True)
class SloSpec:
    """One service-level objective over a recorded metric series."""

    name: str
    kind: str                      # "availability" | "latency" | "rate"
    series: str                    # metric series the objective reads
    objective: float               # target: fraction, seconds, or events/s
    window: float                  # trailing evaluation window (sim seconds)
    percentile: float = 95.0       # latency only
    subject: str = ""              # entity alerts concern (device id, ...)
    service: Optional[str] = None  # escalation detail for service SLOs
    escalation: str = "slo-breach"  # issue kind opened in MAPE knowledge
    severity: int = 3

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown SLO kind {self.kind!r}; one of {_KINDS}")
        if self.window <= 0:
            raise ValueError("window must be positive")
        if self.kind == "availability" and not 0.0 <= self.objective < 1.0:
            raise ValueError("availability objective must be in [0, 1)")
        if self.kind in ("latency", "rate") and self.objective <= 0:
            raise ValueError(f"{self.kind} objective must be positive")


@dataclass
class SloStatus:
    """One evaluation of one spec."""

    spec: SloSpec
    time: float
    measured: Optional[float]
    burn_rate: Optional[float]
    breached: bool

    def to_dict(self) -> Dict[str, Any]:
        return {
            "slo": self.spec.name,
            "kind": self.spec.kind,
            "series": self.spec.series,
            "objective": self.spec.objective,
            "window": self.spec.window,
            "time": self.time,
            "measured": self.measured,
            "burn_rate": self.burn_rate,
            "breached": self.breached,
        }


class SloMonitor:
    """Periodic in-simulation SLO evaluation with alert-driven adaptation.

    The monitor is itself a simulated process: evaluations happen at
    simulated times, so alerts land in causal order with the faults and
    repairs they concern.  Subscribe MAPE loops (or bare knowledge bases)
    with :meth:`attach` to let breaches drive adaptation.
    """

    def __init__(
        self,
        sim: Simulator,
        metrics: MetricsRecorder,
        specs: List[SloSpec],
        trace: Optional[TraceLog] = None,
        period: float = 5.0,
    ) -> None:
        if period <= 0:
            raise ValueError("period must be positive")
        names = [spec.name for spec in specs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate SLO names in {names}")
        self.sim = sim
        self.metrics = metrics
        self.specs = list(specs)
        self.trace = trace
        self.period = period
        self.evaluations = 0
        self.breach_events = 0          # breach *transitions* (ok -> breached)
        self.history: List[SloStatus] = []
        self._breached: Dict[str, bool] = {spec.name: False for spec in specs}
        self._latest: Dict[str, SloStatus] = {}
        self._sinks: List[Any] = []     # KnowledgeBase-like alert sinks
        self._listeners: List[Callable[[SloStatus], None]] = []
        self._running = False

    # -- wiring ------------------------------------------------------------ #
    def attach(self, sink: Any) -> None:
        """Subscribe a MAPE loop (or KnowledgeBase) to breach alerts.

        Accepts anything with a ``knowledge`` attribute (a MapeLoop) or a
        ``facts`` dict (a KnowledgeBase); alerts are appended to the
        knowledge base's ``facts["slo_alerts"]`` list, where the
        SloAlertAnalyzer picks them up in the next Monitor phase.
        """
        knowledge = getattr(sink, "knowledge", sink)
        if not hasattr(knowledge, "facts"):
            raise TypeError(f"cannot attach {sink!r}: no knowledge base")
        self._sinks.append(knowledge)

    def on_breach(self, listener: Callable[[SloStatus], None]) -> None:
        """Register a callback fired on every breach transition."""
        self._listeners.append(listener)

    # -- lifecycle --------------------------------------------------------- #
    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self.sim.schedule(self.period, self._tick, label="slo-monitor")

    def stop(self) -> None:
        self._running = False

    def _tick(self, sim: Simulator) -> None:
        if not self._running:
            return
        self.evaluate_now()
        sim.schedule(self.period, self._tick, label="slo-monitor")

    # -- evaluation -------------------------------------------------------- #
    def evaluate_now(self) -> List[SloStatus]:
        """Evaluate every spec at the current simulated time."""
        now = self.sim.now
        statuses = []
        for spec in self.specs:
            status = self._evaluate(spec, now)
            statuses.append(status)
            self.history.append(status)
            self._latest[spec.name] = status
            self._transition(status)
        self.evaluations += 1
        return statuses

    def _evaluate(self, spec: SloSpec, now: float) -> SloStatus:
        start = max(0.0, now - spec.window)
        measured: Optional[float] = None
        burn: Optional[float] = None
        if self.metrics.has_series(spec.series):
            series = self.metrics.series(spec.series)
            if spec.kind == "availability":
                measured = series.time_weighted_mean(start, now)
                if measured is not None:
                    burn = (1.0 - measured) / (1.0 - spec.objective)
            elif spec.kind == "latency":
                measured = series.percentile(spec.percentile, start, now)
                if measured is not None:
                    burn = measured / spec.objective
            else:  # rate
                span = now - start
                if span > 0:
                    measured = len(series.window(start, now)) / span
                    burn = (spec.objective / measured if measured > 0
                            else float("inf"))
        breached = burn is not None and burn >= 1.0 and self._violates(
            spec, measured)
        status = SloStatus(spec=spec, time=now, measured=measured,
                           burn_rate=burn, breached=breached)
        # The burn series makes SLO health itself observable telemetry.
        if burn is not None and burn != float("inf"):
            self.metrics.record(f"slo.burn:{spec.name}", now, burn)
        self.metrics.set_level(f"slo.ok:{spec.name}", now,
                               0.0 if breached else 1.0)
        return status

    @staticmethod
    def _violates(spec: SloSpec, measured: Optional[float]) -> bool:
        if measured is None:
            return False
        if spec.kind == "availability":
            return measured < spec.objective
        if spec.kind == "latency":
            return measured > spec.objective
        return measured < spec.objective  # rate

    def _transition(self, status: SloStatus) -> None:
        spec = status.spec
        was_breached = self._breached[spec.name]
        self._breached[spec.name] = status.breached
        if status.breached:
            # Alerts repeat into the MAPE knowledge on *every* breached
            # evaluation, not just the first: a countermeasure that
            # failed (or helped only partially) must be retried while
            # the error budget keeps burning.  Trace events and counters
            # record transitions only, so exports stay readable.
            alert = {
                "slo": spec.name,
                "time": status.time,
                "subject": spec.subject or spec.series,
                "service": spec.service,
                "escalation": spec.escalation,
                "severity": spec.severity,
                "measured": status.measured,
                "burn_rate": status.burn_rate,
            }
            for knowledge in self._sinks:
                knowledge.facts.setdefault("slo_alerts", []).append(dict(alert))
            for listener in self._listeners:
                listener(status)
        if status.breached and not was_breached:
            self.breach_events += 1
            self.metrics.increment("slo.breaches")
            if self.trace is not None:
                self.trace.emit(
                    status.time, "alert", "slo-breach",
                    subject=spec.subject or spec.series,
                    slo=spec.name, measured=status.measured,
                    burn_rate=status.burn_rate, objective=spec.objective,
                )
        elif was_breached and not status.breached:
            if self.trace is not None:
                self.trace.emit(
                    status.time, "alert", "slo-recovered",
                    subject=spec.subject or spec.series,
                    slo=spec.name, measured=status.measured,
                )

    # -- reporting ---------------------------------------------------------- #
    @property
    def breached_now(self) -> List[SloStatus]:
        """Specs whose latest evaluation breached."""
        return [s for s in self._latest.values() if s.breached]

    @property
    def ever_breached(self) -> bool:
        return self.breach_events > 0

    def latest(self) -> List[SloStatus]:
        return [self._latest[spec.name] for spec in self.specs
                if spec.name in self._latest]

    def table_rows(self) -> List[List[object]]:
        rows: List[List[object]] = []
        for status in self.latest():
            rows.append([
                status.spec.name,
                status.spec.kind,
                status.spec.objective,
                "-" if status.measured is None else round(status.measured, 4),
                "-" if status.burn_rate is None else round(status.burn_rate, 3),
                "BREACH" if status.breached else "ok",
            ])
        return rows

    def to_dict(self) -> Dict[str, Any]:
        return {
            "period": self.period,
            "evaluations": self.evaluations,
            "breach_events": self.breach_events,
            "slos": [s.to_dict() for s in self.latest()],
        }


class ReachabilityProbe:
    """Active request/response probe feeding a ``reach:<target>`` level series.

    The fleet's ``up:<device>`` series capture crashes but not
    *partitions*: an isolated cloud is still up, just unreachable.  The
    probe measures what availability SLOs actually promise -- can the
    service be reached -- by pinging ``target`` from ``source`` every
    ``period`` seconds and driving the level series to 0 whenever the
    reply misses ``timeout``.  Point an availability :class:`SloSpec` at
    :attr:`series` to turn unreachability into error-budget burn.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Any,
        metrics: MetricsRecorder,
        source: str,
        target: str,
        period: float = 2.0,
        timeout: float = 1.5,
    ) -> None:
        if timeout >= period:
            raise ValueError("timeout must be shorter than the probe period")
        self.sim = sim
        self.network = network
        self.metrics = metrics
        self.source = source
        self.target = target
        self.period = period
        self.timeout = timeout
        self.series = f"reach:{target}"
        self.sent = 0
        self.lost = 0
        self._pending: Dict[int, bool] = {}
        self._running = False
        network.register(target, "probe.ping", self._on_ping)
        network.register(source, "probe.pong", self._on_pong)

    def _on_ping(self, message: Any) -> None:
        self.network.send(self.target, message.src, "probe.pong",
                          payload=message.payload, size_bytes=16)

    def _on_pong(self, message: Any) -> None:
        # A pong that arrives after its timeout already marked the target
        # unreachable; only a still-pending probe counts as success.
        if self._pending.pop(message.payload["seq"], None):
            self.metrics.set_level(self.series, self.sim.now, 1.0)

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self.metrics.set_level(self.series, self.sim.now, 1.0)
        self.sim.schedule(0.0, self._probe, label=f"probe:{self.target}")

    def stop(self) -> None:
        self._running = False

    def _probe(self, sim: Simulator) -> None:
        if not self._running:
            return
        self.sent += 1
        seq = self.sent
        self._pending[seq] = True
        self.network.send(self.source, self.target, "probe.ping",
                          payload={"seq": seq}, size_bytes=16)

        def check(s: Simulator) -> None:
            if self._pending.pop(seq, None):
                self.lost += 1
                self.metrics.set_level(self.series, s.now, 0.0)

        sim.schedule(self.timeout, check, label=f"probe-timeout:{self.target}")
        sim.schedule(self.period, self._probe, label=f"probe:{self.target}")


def default_slos(system: Any, strict: bool = False,
                 city: bool = False) -> List[SloSpec]:
    """Resilience SLOs for an edge/cloud landscape system.

    Per-edge availability objectives, plus (with ``city``) the smart-city
    workload's end-to-end ingest latency and throughput objectives.
    ``strict`` adds a cloud *reachability* objective fed by a
    :class:`ReachabilityProbe` (series ``reach:<cloud>``) that a
    sustained cloud partition *will* breach -- the CI smoke gate runs
    non-strict (edge resilience must hold through disruption), tests and
    the strict gate exercise the breach path.
    """
    specs: List[SloSpec] = []
    for edge in getattr(system, "edge_nodes", []):
        specs.append(SloSpec(
            name=f"availability:{edge}", kind="availability",
            series=f"up:{edge}", objective=0.95, window=30.0,
            subject=edge, escalation="device-down", severity=4,
        ))
    if city:
        specs.append(SloSpec(
            name="ingest-latency-p95", kind="latency",
            series="city.latency", objective=1.0, window=20.0,
            percentile=95.0, subject="city",
        ))
        specs.append(SloSpec(
            name="ingest-rate", kind="rate",
            series="city.ingest", objective=1.0, window=20.0,
            subject="city",
        ))
    if strict and getattr(system, "cloud_node", None):
        specs.append(SloSpec(
            name="cloud-reachability", kind="availability",
            series=f"reach:{system.cloud_node}", objective=0.99, window=30.0,
            subject=str(system.cloud_node),
        ))
    return specs

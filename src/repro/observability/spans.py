"""Causal spans over simulated time.

A :class:`Span` is an interval of *simulated* time attributed to one
operation -- a message in flight, a MAPE iteration, a gossip round, a
fault's disruption→recovery arc.  Spans carry parent links and trace ids,
so a single disruption can be followed end-to-end: the fault-injection
span roots a trace, and every message, protocol round and repair that the
disruption causes is recorded as a descendant.

This is the "model kept alive at runtime" of the paper's Section VII made
navigable: where :class:`~repro.simulation.trace.TraceLog` answers *what
happened when*, the span tree answers *what caused what*.

Ids are deterministic (monotonic counters, no wall clock, no randomness)
so traces are reproducible bit-for-bit from the simulation seed, exactly
like the simulation itself.
"""

from __future__ import annotations

import itertools
from contextlib import contextmanager
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Dict, Iterator, List, Optional, Union

from repro.observability.overhead import (
    ALWAYS_SAMPLE_CATEGORIES,
    DROPPED_TRACE_ID,
)


@dataclass(frozen=True)
class SpanContext:
    """The propagatable identity of a span.

    Contexts are what crosses component boundaries (e.g. rides on a
    :class:`~repro.network.transport.Message`): enough to parent a child
    span in another subsystem without holding the span object itself.
    """

    trace_id: str
    span_id: str
    parent_id: Optional[str] = None

    def child_of(self) -> "SpanContext":  # pragma: no cover - debugging aid
        return self


@dataclass
class Span:
    """One named interval of simulated time within a trace."""

    name: str
    category: str
    context: SpanContext
    start: float
    end: Optional[float] = None
    status: str = "ok"
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def trace_id(self) -> str:
        return self.context.trace_id

    @property
    def span_id(self) -> str:
        return self.context.span_id

    @property
    def parent_id(self) -> Optional[str]:
        return self.context.parent_id

    @property
    def finished(self) -> bool:
        return self.end is not None

    @property
    def sampled(self) -> bool:
        """False for spans elided by head-based sampling.

        Unsampled spans are returned from ``start`` so call sites stay
        branch-free (they can attach attrs and finish as usual), but the
        recorder neither stores nor indexes them.
        """
        return self.context.trace_id != DROPPED_TRACE_ID

    @property
    def duration(self) -> Optional[float]:
        """Elapsed simulated time, or None while the span is still open.

        None (rather than 0.0) keeps half-finished work out of latency
        and MTTR aggregates: summing durations of a span set silently
        treated every open span as free.  Callers that want a value for
        in-flight spans should use ``duration_or(now)``.
        """
        return (self.end - self.start) if self.end is not None else None

    def duration_or(self, now: float) -> float:
        """Duration for finished spans; elapsed-so-far against ``now`` otherwise."""
        return (self.end if self.end is not None else float(now)) - self.start

    def to_dict(self) -> Dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "category": self.category,
            "start": self.start,
            "end": self.end,
            "status": self.status,
            "attrs": self.attrs,
        }


ParentLike = Union[Span, SpanContext, None]

#: Shared context for unsampled spans.  One frozen instance suffices --
#: nothing stores or indexes a dropped span, so identity never matters;
#: children recognize the sentinel trace id and drop themselves.
_DROPPED_CONTEXT = SpanContext(trace_id=DROPPED_TRACE_ID, span_id="s!")

#: The one throwaway span every sampled-out ``start`` returns.  It is
#: pre-finished so ``finish`` no-ops on it, and shared so the drop fast
#: path allocates nothing: the whole point of sampling is that eliding a
#: span must cost far less than recording it, and a fresh Span + dict
#: per drop was the dominant cost.  Nothing stores or reads dropped
#: spans (``sampled`` is False), so shared mutable state is harmless.
_DROPPED_SPAN = Span(name="sampled-out", category="sampled-out",
                     context=_DROPPED_CONTEXT, start=0.0, end=0.0,
                     status="sampled-out")


class SpanRecorder:
    """Creates, finishes and indexes spans.

    The recorder keeps a *current-context stack*: components push the span
    they are working under (an executing MAPE iteration, a delivering
    message), and any span started without an explicit parent inherits the
    top of the stack.  The simulation is single-threaded, so a plain stack
    gives correct causal attribution across arbitrarily nested callbacks.

    A small *fault index* maps subjects (device ids, fault names) to their
    currently-active injection span, so that a repair performed far from
    the injector -- e.g. by a MAPE loop -- can still join the disruption's
    trace.
    """

    def __init__(self, sampler: Optional[Any] = None,
                 always_sample: Any = ALWAYS_SAMPLE_CATEGORIES) -> None:
        self._trace_ids = itertools.count(1)
        self._span_ids = itertools.count(1)
        self._spans: List[Span] = []
        self._by_id: Dict[str, Span] = {}
        self._open: Dict[str, Span] = {}
        self._stack: List[SpanContext] = []
        self._fault_index: Dict[str, Span] = {}
        # Head-based sampling (repro.observability.overhead.SpanSampler):
        # the keep/drop decision is made once at the trace root and
        # inherited by every descendant via the sentinel context.  Fault
        # arcs (``always_sample`` categories) always root kept traces.
        self.sampler = sampler
        self.always_sample = frozenset(always_sample)
        self.sampled_out = 0
        # Optional OverheadMeter: accounts the wall-clock cost of span
        # recording itself.  One ``is None`` check per call when off.
        self.meter: Optional[Any] = None

    # -- creation --------------------------------------------------------- #
    def start(
        self,
        name: str,
        category: str,
        time: float,
        parent: ParentLike = None,
        **attrs: Any,
    ) -> Span:
        """Open a span at simulated ``time``.

        Without an explicit ``parent`` the span is parented to the current
        context (if any); a parentless span roots a fresh trace.

        With a sampler attached, a parentless span may lose the keep/drop
        coin flip: the returned span then carries the sentinel dropped
        context and is not stored, and descendants (which inherit the
        sentinel through propagation) are elided without re-consulting
        the sampler.  Root trace ordinals are consumed either way, so the
        kept traces keep the exact ids an unsampled run would give them.
        """
        meter = self.meter
        started = perf_counter() if meter is not None else 0.0
        # Parent resolution and the drop exits are inlined rather than
        # factored into helpers: with sampling on this is the kernel hot
        # path, and eliding a span must cost a fraction of recording one
        # -- each avoided Python call is a measurable slice of that
        # budget (see benchmarks/regress.py bench_observability).
        if parent is None:
            stack = self._stack
            parent_ctx = stack[-1] if stack else None
        else:
            parent_ctx = parent.context if isinstance(parent, Span) else parent
        if parent_ctx is not None:
            if parent_ctx.trace_id == DROPPED_TRACE_ID:
                self.sampled_out += 1
                if meter is not None:
                    meter.spans_count += 1
                    meter.spans_wall_s += perf_counter() - started
                return _DROPPED_SPAN
            context = SpanContext(
                trace_id=parent_ctx.trace_id,
                span_id=f"s{next(self._span_ids):06d}",
                parent_id=parent_ctx.span_id,
            )
        else:
            trace_seq = next(self._trace_ids)
            sampler = self.sampler
            if (sampler is not None and category not in self.always_sample
                    and not sampler.keep(trace_seq)):
                self.sampled_out += 1
                if meter is not None:
                    meter.spans_count += 1
                    meter.spans_wall_s += perf_counter() - started
                return _DROPPED_SPAN
            context = SpanContext(
                trace_id=f"t{trace_seq:04d}",
                span_id=f"s{next(self._span_ids):06d}",
            )
        span = Span(name=name, category=category, context=context,
                    start=float(time), attrs=dict(attrs))
        self._spans.append(span)
        self._by_id[span.span_id] = span
        self._open[span.span_id] = span
        if meter is not None:
            meter.spans_count += 1
            meter.spans_wall_s += perf_counter() - started
        return span

    def finish(self, span: Span, time: float, status: str = "ok", **attrs: Any) -> Span:
        """Close ``span`` at simulated ``time`` (idempotent).

        Safe on sampled-out spans: they are the shared pre-finished
        throwaway, recognized by identity and returned untouched (their
        recording cost was already accounted at ``start``).
        """
        if span is _DROPPED_SPAN:
            return span
        meter = self.meter
        started = perf_counter() if meter is not None else 0.0
        if span.end is None:
            span.end = float(time)
            span.status = status
            if attrs:
                span.attrs.update(attrs)
            self._open.pop(span.span_id, None)
        if meter is not None:
            meter.spans_count += 1
            meter.spans_wall_s += perf_counter() - started
        return span

    def record(
        self,
        name: str,
        category: str,
        time: float,
        parent: ParentLike = None,
        status: str = "ok",
        **attrs: Any,
    ) -> Span:
        """Start and immediately finish an instantaneous span."""
        span = self.start(name, category, time, parent=parent, **attrs)
        return self.finish(span, time, status=status)

    # -- current-context stack -------------------------------------------- #
    @property
    def current(self) -> Optional[SpanContext]:
        return self._stack[-1] if self._stack else None

    @contextmanager
    def use(self, context: ParentLike) -> Iterator[None]:
        """Make ``context`` the implicit parent for the enclosed block.

        Accepts a span, a bare context, or None (no-op), so call sites can
        pass through whatever they hold without case analysis.
        """
        if context is None:
            yield
            return
        ctx = context.context if isinstance(context, Span) else context
        self._stack.append(ctx)
        try:
            yield
        finally:
            self._stack.pop()

    # -- fault index ------------------------------------------------------- #
    def open_fault(self, subject: str, span: Span) -> None:
        """Register ``span`` as the active injection span for ``subject``."""
        self._fault_index[subject] = span

    def close_fault(self, subject: str) -> None:
        self._fault_index.pop(subject, None)

    def active_fault(self, subject: str) -> Optional[Span]:
        """The injection span currently disrupting ``subject``, if any."""
        return self._fault_index.get(subject)

    # -- queries ----------------------------------------------------------- #
    def __len__(self) -> int:
        return len(self._spans)

    def __iter__(self) -> Iterator[Span]:
        return iter(self._spans)

    @property
    def spans(self) -> List[Span]:
        return list(self._spans)

    @property
    def open_spans(self) -> List[Span]:
        return list(self._open.values())

    def select(
        self,
        category: Optional[str] = None,
        name: Optional[str] = None,
        trace_id: Optional[str] = None,
    ) -> List[Span]:
        return [
            s
            for s in self._spans
            if (category is None or s.category == category)
            and (name is None or s.name == name)
            and (trace_id is None or s.trace_id == trace_id)
        ]

    def get(self, span_id: str) -> Optional[Span]:
        return self._by_id.get(span_id)

    def is_descendant(self, span: Span, ancestor: Span) -> bool:
        """True if ``ancestor`` is on ``span``'s parent chain."""
        current: Optional[str] = span.parent_id
        while current is not None:
            if current == ancestor.span_id:
                return True
            parent = self._by_id.get(current)
            current = parent.parent_id if parent is not None else None
        return False

    def children_index(self) -> Dict[str, List[Span]]:
        """``parent span_id -> direct children``, in recording order.

        Built fresh per call (the KPI derivation walks it once per
        report); root spans are not keys.
        """
        children: Dict[str, List[Span]] = {}
        for span in self._spans:
            if span.parent_id is not None:
                children.setdefault(span.parent_id, []).append(span)
        return children

    def finish_open(self, time: float, status: str = "truncated") -> int:
        """Close every still-open span (end of run); returns how many."""
        still_open = list(self._open.values())
        for span in still_open:
            self.finish(span, time, status=status)
        return len(still_open)

"""Deviceless service orchestration (paper §III.B, Table 2 row 2).

ML4's service vector: "Deviceless -- business logic fully managed and
abstracted from the infrastructure capabilities."  Developers submit
:class:`~repro.devices.software.Service` specs with constraints; the
orchestrator decides placement (latency-, resource- and locality-aware),
deploys, and -- paired with a MAPE loop -- re-places on failure.
"""

from repro.orchestration.placement import (
    PlacementConstraints,
    PlacementDecision,
    PlacementError,
    best_fit_placement,
    first_fit_decreasing,
    latency_aware_placement,
)
from repro.orchestration.scheduler import DevicelessScheduler, Deployment

__all__ = [
    "Deployment",
    "DevicelessScheduler",
    "PlacementConstraints",
    "PlacementDecision",
    "PlacementError",
    "best_fit_placement",
    "first_fit_decreasing",
    "latency_aware_placement",
]

"""Service placement solvers.

Placement is where "novel (resource) features ... such as device location
and IoT cloud resources' heterogeneity" (§III.A) become decisions.  Three
solvers, all deterministic:

* :func:`best_fit_placement` -- minimize leftover capacity (consolidation);
* :func:`latency_aware_placement` -- minimize expected latency to a set of
  client devices, subject to fit (the edge-vs-cloud tradeoff quantified);
* :func:`first_fit_decreasing` -- batch placement of many services, FFD
  bin-packing by CPU demand.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.devices.base import Device
from repro.devices.software import Service
from repro.network.topology import Topology


class PlacementError(RuntimeError):
    """No feasible placement exists for the request."""


@dataclass(frozen=True)
class PlacementConstraints:
    """Optional restrictions on where a service may run.

    ``allowed_domains``/``allowed_locations`` empty means unconstrained;
    ``required_tier`` restricts by device class name (e.g. {"edge",
    "gateway"}); ``anti_affinity`` lists services that must not share a
    host (replica spreading).
    """

    allowed_domains: frozenset = frozenset()
    allowed_locations: frozenset = frozenset()
    required_tiers: frozenset = frozenset()
    anti_affinity: frozenset = frozenset()


@dataclass(frozen=True)
class PlacementDecision:
    service_name: str
    device_id: str
    score: float
    detail: str = ""


def _admissible(device: Device, service: Service,
                constraints: PlacementConstraints) -> bool:
    if not device.up:
        return False
    if constraints.allowed_domains and device.domain not in constraints.allowed_domains:
        return False
    if constraints.allowed_locations and device.location not in constraints.allowed_locations:
        return False
    if constraints.required_tiers and device.device_class.value not in constraints.required_tiers:
        return False
    for rival in constraints.anti_affinity:
        if device.hosts(rival):
            return False
    return device.can_host(service)


def best_fit_placement(
    service: Service,
    candidates: Sequence[Device],
    constraints: PlacementConstraints = PlacementConstraints(),
) -> PlacementDecision:
    """Place on the admissible device with least leftover CPU after fit."""
    best: Optional[Tuple[float, str]] = None
    for device in candidates:
        if not _admissible(device, service, constraints):
            continue
        leftover = device.resources.available("cpu") - service.cpu
        key = (leftover, device.device_id)
        if best is None or key < best:
            best = key
    if best is None:
        raise PlacementError(
            f"no admissible host for service {service.name!r} among "
            f"{len(candidates)} candidates"
        )
    return PlacementDecision(service.name, best[1], score=best[0],
                             detail="best-fit by leftover cpu")


def latency_aware_placement(
    service: Service,
    candidates: Sequence[Device],
    topology: Topology,
    clients: Sequence[str],
    constraints: PlacementConstraints = PlacementConstraints(),
) -> PlacementDecision:
    """Place minimizing mean expected latency to ``clients``.

    Unreachable clients contribute a large penalty rather than excluding
    the host outright, so a partially partitioned system still gets the
    least-bad placement.
    """
    unreachable_penalty = 10.0  # seconds; dwarfs any real path latency
    best: Optional[Tuple[float, str]] = None
    for device in candidates:
        if not _admissible(device, service, constraints):
            continue
        total = 0.0
        for client in clients:
            latency = topology.expected_latency(device.device_id, client)
            total += latency if latency is not None else unreachable_penalty
        mean = total / len(clients) if clients else 0.0
        key = (mean, device.device_id)
        if best is None or key < best:
            best = key
    if best is None:
        raise PlacementError(
            f"no admissible host for service {service.name!r}"
        )
    return PlacementDecision(service.name, best[1], score=best[0],
                             detail="latency-aware placement")


def first_fit_decreasing(
    services: Sequence[Service],
    candidates: Sequence[Device],
    constraints: Optional[Dict[str, PlacementConstraints]] = None,
) -> List[PlacementDecision]:
    """Batch-place by FFD on CPU demand; actually deploys onto devices.

    Raises :class:`PlacementError` (after rolling back nothing -- services
    placed so far stay placed, mirroring real orchestrators' partial
    progress) if any service cannot fit.
    """
    constraints = constraints or {}
    decisions = []
    ordered = sorted(services, key=lambda s: (-s.cpu, s.name))
    for service in ordered:
        service_constraints = constraints.get(service.name, PlacementConstraints())
        placed = False
        for device in candidates:
            if _admissible(device, service, service_constraints):
                device.host(service)
                decisions.append(PlacementDecision(
                    service.name, device.device_id,
                    score=device.resources.utilization("cpu"),
                    detail="first-fit-decreasing",
                ))
                placed = True
                break
        if not placed:
            raise PlacementError(f"FFD could not place service {service.name!r}")
    return decisions

"""The deviceless scheduler.

The developer-facing surface of ML4's service vector: submit a service
spec plus intent (who its clients are, what constraints apply) and the
scheduler owns placement, deployment, registry advertisement, and
failure-driven re-placement.  "Eliminating the need for manual service
management" (§III.B) is exactly this loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.coordination.registry import ServiceRecord, ServiceRegistry
from repro.devices.fleet import DeviceFleet
from repro.devices.software import Service, ServiceState
from repro.network.topology import Topology
from repro.orchestration.placement import (
    PlacementConstraints,
    PlacementDecision,
    PlacementError,
    best_fit_placement,
    latency_aware_placement,
)
from repro.simulation.kernel import Simulator
from repro.simulation.trace import TraceLog


@dataclass
class Deployment:
    """Bookkeeping for one scheduled service."""

    service: Service
    device_id: str
    constraints: PlacementConstraints
    clients: List[str] = field(default_factory=list)
    replacements: int = 0


class DevicelessScheduler:
    """Places, tracks and re-places services across a fleet."""

    def __init__(
        self,
        sim: Simulator,
        fleet: DeviceFleet,
        topology: Topology,
        registry: Optional[ServiceRegistry] = None,
        candidate_tiers: Sequence[str] = ("edge", "gateway", "cloud"),
        trace: Optional[TraceLog] = None,
    ) -> None:
        self.sim = sim
        self.fleet = fleet
        self.topology = topology
        self.registry = registry
        self.candidate_tiers = tuple(candidate_tiers)
        self.trace = trace
        self._deployments: Dict[str, Deployment] = {}
        self.reschedules = 0

    # -- submission ------------------------------------------------------------#
    def submit(
        self,
        service: Service,
        clients: Optional[List[str]] = None,
        constraints: PlacementConstraints = PlacementConstraints(),
    ) -> PlacementDecision:
        """Schedule a service: latency-aware when clients are given,
        best-fit otherwise.  Deploys onto the chosen device."""
        if service.name in self._deployments:
            raise ValueError(f"service {service.name!r} already scheduled")
        candidates = self._candidates()
        if clients:
            decision = latency_aware_placement(
                service, candidates, self.topology, clients, constraints
            )
        else:
            decision = best_fit_placement(service, candidates, constraints)
        self._deploy(service, decision.device_id)
        self._deployments[service.name] = Deployment(
            service=service, device_id=decision.device_id,
            constraints=constraints, clients=list(clients or ()),
        )
        return decision

    def _candidates(self):
        return [
            d for d in self.fleet.devices
            if d.device_class.value in self.candidate_tiers
        ]

    def _deploy(self, service: Service, device_id: str) -> None:
        device = self.fleet.get(device_id)
        device.host(service)
        if self.registry is not None:
            self.registry.advertise(ServiceRecord(
                service_name=service.name, device_id=device_id,
                capabilities=tuple(sorted(service.provides)),
                version=service.version,
            ))
        if self.trace is not None:
            self.trace.emit(self.sim.now, "orchestration", "deployed",
                            subject=service.name, device=device_id)

    # -- introspection ------------------------------------------------------- #
    def placement_of(self, service_name: str) -> Optional[str]:
        deployment = self._deployments.get(service_name)
        return deployment.device_id if deployment else None

    def deployments(self) -> List[Deployment]:
        return [self._deployments[k] for k in sorted(self._deployments)]

    def healthy(self, service_name: str) -> bool:
        """Is the service deployed on an up device and running?"""
        deployment = self._deployments.get(service_name)
        if deployment is None:
            return False
        try:
            device = self.fleet.get(deployment.device_id)
        except KeyError:
            return False
        if not device.up:
            return False
        service = device.stack.service(service_name)
        return service is not None and service.state == ServiceState.RUNNING

    # -- failure-driven rescheduling --------------------------------------------#
    def reconcile(self) -> List[PlacementDecision]:
        """Re-place every unhealthy service; call from a MAPE loop or a
        periodic tick.  Returns the decisions made."""
        decisions = []
        for name in sorted(self._deployments):
            if self.healthy(name):
                continue
            decision = self._replace(name)
            if decision is not None:
                decisions.append(decision)
        return decisions

    def _replace(self, service_name: str) -> Optional[PlacementDecision]:
        deployment = self._deployments[service_name]
        old_device_id = deployment.device_id
        # Retrieve (or reconstruct) the service object.
        service = deployment.service
        try:
            old_device = self.fleet.get(old_device_id)
            if old_device.hosts(service_name):
                service = old_device.evict(service_name)
        except KeyError:
            pass
        candidates = [
            d for d in self._candidates() if d.device_id != old_device_id
        ]
        try:
            if deployment.clients:
                decision = latency_aware_placement(
                    service, candidates, self.topology,
                    deployment.clients, deployment.constraints,
                )
            else:
                decision = best_fit_placement(service, candidates, deployment.constraints)
        except PlacementError:
            # Nowhere to go: leave it where it was (still unhealthy) so a
            # later reconcile can retry when capacity returns.
            try:
                old_device = self.fleet.get(old_device_id)
                if not old_device.hosts(service_name) and old_device.can_host(service):
                    old_device.host(service)
            except KeyError:
                pass
            return None
        if self.registry is not None:
            self.registry.withdraw(service_name, old_device_id)
        self._deploy(service, decision.device_id)
        deployment.device_id = decision.device_id
        deployment.replacements += 1
        self.reschedules += 1
        return decision

"""Checkpoint, journal and deterministic replay.

The persistence subsystem makes experiments resumable and auditable:

* :mod:`~repro.persistence.snapshot` -- the ``Snapshottable`` protocol,
  canonical-JSON digests and whole-system fingerprints.
* :mod:`~repro.persistence.journal` -- the append-only JSONL event
  journal (write-ahead log) with crash-tolerant reading and WAL-style
  truncation.
* :mod:`~repro.persistence.checkpoint` -- versioned, integrity-hashed
  checkpoint files.
* :mod:`~repro.persistence.scenarios` -- the declarative scenario
  registry that makes checkpoints rebuildable.
* :mod:`~repro.persistence.runner` -- journaled run / run-to-checkpoint /
  resume drivers.
* :mod:`~repro.persistence.replay` -- re-run a journal and report the
  first divergence.
"""

from repro.persistence.checkpoint import (
    CHECKPOINT_VERSION,
    Checkpoint,
    CheckpointError,
    default_paths,
)
from repro.persistence.journal import (
    JOURNAL_VERSION,
    JournalError,
    JournalRecords,
    JournalWriter,
    read_journal,
    truncate,
)
from repro.persistence.replay import (
    Divergence,
    ReplayReport,
    replay_journal,
    replay_records,
    write_divergence_report,
)
from repro.persistence.runner import (
    RunRecorder,
    RunResult,
    fast_forward,
    resume_run,
    run_scenario,
    run_to_checkpoint,
    save_checkpoint,
)
from repro.persistence.scenarios import (
    PreparedRun,
    ScenarioSpec,
    UnknownScenarioError,
    prepare,
    register_scenario,
    scenario_builders,
    scenario_names,
)
from repro.persistence.snapshot import (
    Snapshottable,
    canonical_json,
    state_digest,
    system_digest,
    system_digest_state,
    system_snapshot,
)

__all__ = [
    "CHECKPOINT_VERSION",
    "Checkpoint",
    "CheckpointError",
    "Divergence",
    "JOURNAL_VERSION",
    "JournalError",
    "JournalRecords",
    "JournalWriter",
    "PreparedRun",
    "ReplayReport",
    "RunRecorder",
    "RunResult",
    "ScenarioSpec",
    "Snapshottable",
    "UnknownScenarioError",
    "canonical_json",
    "default_paths",
    "fast_forward",
    "prepare",
    "read_journal",
    "register_scenario",
    "replay_journal",
    "replay_records",
    "resume_run",
    "run_scenario",
    "run_to_checkpoint",
    "save_checkpoint",
    "scenario_builders",
    "scenario_names",
    "state_digest",
    "system_digest",
    "system_digest_state",
    "system_snapshot",
    "truncate",
    "write_divergence_report",
]

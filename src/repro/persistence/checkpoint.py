"""Versioned, integrity-hashed checkpoint files.

A checkpoint captures everything needed to resume a run: the scenario
spec (how to rebuild the system), the barrier (simulated time + fired
event count), the whole-system digest at the barrier (how to *verify* the
rebuild), and the full auditable component state.  The file is JSON with
a SHA-256 integrity hash over the canonical encoding of the payload, so
bit rot, truncation and hand-editing are all detected at load time.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.persistence.snapshot import canonical_json, state_digest

CHECKPOINT_VERSION = 1


class CheckpointError(ValueError):
    """Raised for corrupt, incompatible or mismatched checkpoints."""


@dataclass
class Checkpoint:
    """One saved barrier of a run.

    Attributes
    ----------
    scenario:
        Serialized :class:`~repro.persistence.scenarios.ScenarioSpec`.
    time / fired:
        The barrier: simulated clock and kernel fired-event count.
    digest:
        Whole-system digest at the barrier; a resume *must* reproduce it.
    digest_every:
        Journal digest cadence the run was recorded with (a resumed run
        must keep the cadence or its digest chain would not line up).
    state:
        Full component snapshot (kernel, RNG streams, fleet, ...) for
        offline audit and direct component restoration.
    """

    scenario: Dict[str, Any]
    time: float
    fired: int
    digest: str
    digest_every: int = 25
    state: Dict[str, Any] = field(default_factory=dict)
    version: int = CHECKPOINT_VERSION

    # -- persistence -------------------------------------------------------- #
    def to_payload(self) -> Dict[str, Any]:
        return {
            "version": self.version,
            "scenario": self.scenario,
            "time": self.time,
            "fired": self.fired,
            "digest": self.digest,
            "digest_every": self.digest_every,
            "state": self.state,
        }

    def save(self, path: str) -> int:
        """Write atomically; returns the file size in bytes."""
        payload = self.to_payload()
        document = {"payload": payload,
                    "integrity": state_digest(payload)}
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(document, fh, indent=2, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, path)
        return os.path.getsize(path)

    @classmethod
    def load(cls, path: str) -> "Checkpoint":
        try:
            with open(path, encoding="utf-8") as fh:
                document = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            raise CheckpointError(f"{path}: unreadable checkpoint: {exc}") from exc
        payload = document.get("payload")
        if payload is None or "integrity" not in document:
            raise CheckpointError(f"{path}: not a checkpoint file")
        expected = document["integrity"]
        actual = state_digest(_normalize(payload))
        if actual != expected:
            raise CheckpointError(
                f"{path}: integrity hash mismatch (file corrupted or edited): "
                f"recorded {expected[:12]}..., computed {actual[:12]}...")
        if payload.get("version") != CHECKPOINT_VERSION:
            raise CheckpointError(
                f"{path}: unsupported checkpoint version "
                f"{payload.get('version')!r} (want {CHECKPOINT_VERSION})")
        return cls(
            scenario=payload["scenario"],
            time=float(payload["time"]),
            fired=int(payload["fired"]),
            digest=payload["digest"],
            digest_every=int(payload.get("digest_every", 25)),
            state=payload.get("state", {}),
            version=payload["version"],
        )


def _normalize(payload: Any) -> Any:
    """Round-trip through canonical JSON so the integrity hash computed at
    load time sees exactly what was hashed at save time (e.g. tuples that
    became lists)."""
    return json.loads(canonical_json(payload))


def default_paths(directory: str) -> Dict[str, str]:
    """The canonical file layout inside a checkpoint directory."""
    return {
        "checkpoint": os.path.join(directory, "checkpoint.json"),
        "journal": os.path.join(directory, "journal.jsonl"),
        "divergence": os.path.join(directory, "divergence.json"),
    }

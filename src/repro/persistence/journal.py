"""Append-only JSONL event journal (write-ahead log).

One line per record, flushed as written so a crashed run leaves a valid
prefix on disk.  Record shapes:

* ``{"type": "header", "version": 1, "scenario": {...}, "digest_every": N}``
  -- exactly one, first line.
* ``{"type": "event", "i": <fired index>, "t": <sim time>, "label": ...}``
  -- one per fired kernel event.
* ``{"type": "digest", "i": ..., "t": ..., "digest": "<sha256>"}``
  -- the whole-system digest, every ``digest_every`` events.
* ``{"type": "reconfig", "i": ..., "t": ..., "payload": {...}}`` -- a
  reconfiguration hot-loaded into a live run at fired-count barrier
  ``i`` (between events ``i`` and ``i+1``).  Replay re-applies it at
  the same barrier; it is an instruction, not a compared record.
* ``{"type": "end", "i": ..., "t": ..., "digest": ...}`` -- written by a
  clean close; its absence marks an interrupted run.

The journal is both the recovery log (``truncate`` drops records past a
checkpoint barrier so a resumed run appends from exactly there) and the
replay oracle (:mod:`repro.persistence.replay` re-runs the scenario and
compares record-by-record).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

JOURNAL_VERSION = 1


class JournalError(ValueError):
    """Raised for malformed, incompatible or misused journals."""


@dataclass
class JournalRecords:
    """A fully parsed journal."""

    header: Dict[str, Any]
    records: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        """True when the run closed cleanly (trailing ``end`` record)."""
        return bool(self.records) and self.records[-1].get("type") == "end"

    @property
    def scenario(self) -> Dict[str, Any]:
        return self.header.get("scenario", {})

    @property
    def digest_every(self) -> int:
        return int(self.header.get("digest_every", 0))

    def digests(self) -> List[Dict[str, Any]]:
        return [r for r in self.records if r.get("type") in ("digest", "end")]

    def events(self) -> List[Dict[str, Any]]:
        return [r for r in self.records if r.get("type") == "event"]

    def reconfigs(self) -> List[Dict[str, Any]]:
        """Hot-loaded reconfiguration records, in application order."""
        return [r for r in self.records if r.get("type") == "reconfig"]


class JournalWriter:
    """Flushing JSONL writer bound to one run.

    ``append=True`` (the resume path) expects the header to already be on
    disk and continues after the existing records; use :func:`truncate`
    first to drop any records written past the checkpoint barrier by the
    crashed run.
    """

    def __init__(self, path: str, scenario: Optional[Dict[str, Any]] = None,
                 digest_every: int = 25, append: bool = False) -> None:
        self.path = path
        self.digest_every = digest_every
        self.records_written = 0
        if append:
            existing = read_journal(path)
            self.digest_every = existing.digest_every
            self.records_written = len(existing.records)
            self._fh = open(path, "a", encoding="utf-8")
        else:
            self._fh = open(path, "w", encoding="utf-8")
            self._write({"type": "header", "version": JOURNAL_VERSION,
                         "scenario": scenario or {},
                         "digest_every": digest_every})

    def _write(self, record: Dict[str, Any]) -> None:
        self._fh.write(json.dumps(record, sort_keys=True,
                                  separators=(",", ":")) + "\n")
        self._fh.flush()

    # -- records ------------------------------------------------------------ #
    def append_event(self, index: int, time: float, label: str) -> None:
        self._write({"type": "event", "i": index, "t": time, "label": label})
        self.records_written += 1

    def append_digest(self, index: int, time: float, digest: str) -> None:
        self._write({"type": "digest", "i": index, "t": time, "digest": digest})
        self.records_written += 1

    def append_reconfig(self, index: int, time: float,
                        payload: Dict[str, Any]) -> None:
        """Journal a live hot-load applied at fired-count barrier ``index``.

        Written *before* the payload is applied (WAL discipline): a crash
        between the write and the next checkpoint truncates the record
        away together with any events it influenced.
        """
        self._write({"type": "reconfig", "i": index, "t": time,
                     "payload": payload})
        self.records_written += 1

    def close(self, index: int, time: float, digest: str) -> None:
        """Mark a clean end of run and close the file."""
        self._write({"type": "end", "i": index, "t": time, "digest": digest})
        self._fh.close()

    def abandon(self) -> None:
        """Close the file handle without an ``end`` record (crash path)."""
        if not self._fh.closed:
            self._fh.close()


# --------------------------------------------------------------------------- #
# Reading and recovery
# --------------------------------------------------------------------------- #
def read_journal(path: str) -> JournalRecords:
    """Parse a journal file; tolerates a torn final line (crash artifact)."""
    header: Optional[Dict[str, Any]] = None
    records: List[Dict[str, Any]] = []
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                # A torn trailing line is the signature of a mid-write
                # crash: everything before it is a valid prefix.
                break
            if lineno == 0:
                if record.get("type") != "header":
                    raise JournalError(f"{path}: first record is not a header")
                if record.get("version") != JOURNAL_VERSION:
                    raise JournalError(
                        f"{path}: unsupported journal version "
                        f"{record.get('version')!r} (want {JOURNAL_VERSION})")
                header = record
            else:
                records.append(record)
    if header is None:
        raise JournalError(f"{path}: empty or headerless journal")
    return JournalRecords(header=header, records=records)


def truncate(path: str, fired: int) -> int:
    """Drop records past the checkpoint barrier ``fired``; returns kept count.

    Classic WAL recovery: a crashed run may have journaled events beyond
    the last durable checkpoint, and the resumed run will re-produce them.
    Also drops any ``end`` record -- a truncated run is by definition not
    cleanly closed.
    """
    journal = read_journal(path)
    kept = [r for r in journal.records
            if r.get("type") != "end" and int(r.get("i", 0)) <= fired]
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(json.dumps(journal.header, sort_keys=True,
                            separators=(",", ":")) + "\n")
        for record in kept:
            fh.write(json.dumps(record, sort_keys=True,
                                separators=(",", ":")) + "\n")
    os.replace(tmp, path)
    return len(kept)
